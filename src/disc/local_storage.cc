#include "disc/local_storage.h"

#include "common/strings.h"
#include "crypto/sha256.h"
#include "disc/disc_image.h"

namespace discsec {
namespace disc {

Status LocalStorage::Write(const std::string& path, Bytes data) {
  if (path.empty()) return Status::InvalidArgument("empty storage path");
  if (quota_ != 0) {
    size_t current = UsedBytes();
    auto it = entries_.find(path);
    size_t existing = it != entries_.end() ? it->second.data.size() : 0;
    if (current - existing + data.size() > quota_) {
      return Status::ResourceExhausted("local storage quota exceeded");
    }
  }
  // The checksum is over what the caller meant to store; a data fault below
  // then models a torn write whose damage Read() can prove.
  Bytes sum = crypto::Sha256::Hash(data);
  fault::FaultInjector* injector = fault::Effective(fault_);
  uint64_t fires_before = injector->fires(fault::kStorageWrite);
  Status fault = injector->HitData(fault::kStorageWrite, &data, path);
  if (!fault.ok()) return fault.WithContext("local storage");
  bool torn = injector->fires(fault::kStorageWrite) != fires_before;
  entries_[path] = Entry{std::move(data), std::move(sum)};
  if (torn) {
    return Status::Unavailable("partial write of '" + path + "'")
        .WithContext("local storage");
  }
  return Status::OK();
}

Status LocalStorage::WriteText(const std::string& path,
                               std::string_view text) {
  return Write(path, ToBytes(text));
}

Result<Bytes> LocalStorage::Read(const std::string& path) const {
  auto it = entries_.find(path);
  if (it == entries_.end()) {
    return Status::NotFound("no entry '" + path + "' in local storage");
  }
  Bytes data = it->second.data;
  DISCSEC_RETURN_IF_ERROR(fault::Effective(fault_)
                              ->HitData(fault::kStorageRead, &data, path)
                              .WithContext("local storage"));
  if (!ConstantTimeEquals(crypto::Sha256::Hash(data), it->second.sum)) {
    return Status::Corruption("checksum mismatch for entry '" + path +
                              "' in local storage");
  }
  return data;
}

Result<std::string> LocalStorage::ReadText(const std::string& path) const {
  DISCSEC_ASSIGN_OR_RETURN(Bytes data, Read(path));
  return ToString(data);
}

bool LocalStorage::Exists(const std::string& path) const {
  return entries_.count(path) > 0;
}

Status LocalStorage::Remove(const std::string& path) {
  if (entries_.erase(path) == 0) {
    return Status::NotFound("no entry '" + path + "'");
  }
  return Status::OK();
}

std::vector<std::string> LocalStorage::ListPrefix(
    const std::string& prefix) const {
  std::vector<std::string> out;
  for (const auto& [path, entry] : entries_) {
    if (StartsWith(path, prefix)) out.push_back(path);
  }
  return out;
}

size_t LocalStorage::UsedBytes() const {
  size_t total = 0;
  for (const auto& [path, entry] : entries_) total += entry.data.size();
  return total;
}

Status LocalStorage::SaveToFile(const std::string& fs_path) const {
  // Reuse the disc image's integrity-checked container as the on-disk
  // format: same framing, same SHA-256 trailer.
  DiscImage container;
  for (const auto& [path, entry] : entries_) {
    container.Put(path, entry.data);
  }
  return container.SaveToFile(fs_path);
}

Status LocalStorage::LoadFromFile(const std::string& fs_path) {
  DISCSEC_ASSIGN_OR_RETURN(DiscImage container,
                           DiscImage::LoadFromFile(fs_path));
  size_t total = container.TotalBytes();
  if (quota_ != 0 && total > quota_) {
    return Status::ResourceExhausted(
        "persisted storage exceeds this player's quota");
  }
  // Bypass injected disc.read faults: the container is in memory and its
  // trailer already proved integrity; checksums are rebuilt fresh.
  fault::FaultInjector disarmed;
  container.set_fault_injector(&disarmed);
  std::map<std::string, Entry> loaded;
  for (const std::string& path : container.List()) {
    DISCSEC_ASSIGN_OR_RETURN(Bytes data, container.Get(path));
    Bytes sum = crypto::Sha256::Hash(data);
    loaded[path] = Entry{std::move(data), std::move(sum)};
  }
  entries_ = std::move(loaded);
  return Status::OK();
}

}  // namespace disc
}  // namespace discsec
