#ifndef DISCSEC_DISC_DISC_IMAGE_H_
#define DISCSEC_DISC_DISC_IMAGE_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/fault.h"
#include "common/result.h"

namespace discsec {
namespace disc {

/// Conventional paths inside a disc image (BDMV-inspired layout).
inline constexpr char kClusterPath[] = "BDMV/cluster.xml";
inline constexpr char kStreamDir[] = "BDMV/STREAM/";
inline constexpr char kCertDir[] = "CERTIFICATE/";

/// A virtual optical disc image: an immutable-once-mastered file tree with a
/// binary pack format, standing in for the physical medium. Integrity of
/// the container itself is protected with a SHA-256 trailer (detecting
/// mastering/transport corruption; *security* comes from the XML-DSig layer
/// above).
class DiscImage {
 public:
  /// Adds or replaces a file (authoring side; a player treats images as
  /// read-only by convention).
  void Put(const std::string& path, Bytes data);
  void PutText(const std::string& path, std::string_view text);

  Result<Bytes> Get(const std::string& path) const;
  Result<std::string> GetText(const std::string& path) const;
  bool Exists(const std::string& path) const;
  std::vector<std::string> List() const;
  size_t FileCount() const { return files_.size(); }
  /// Sum of payload sizes (the "mastered" size).
  size_t TotalBytes() const;

  /// Serializes to the binary image format:
  ///   "DSCIMG01" | u32 count | count x (u32 path_len, path, u64 data_len,
  ///   data) | 32-byte SHA-256 of everything before the trailer.
  Bytes Pack() const;

  /// Parses and integrity-checks a packed image.
  static Result<DiscImage> Unpack(const Bytes& packed);

  /// Filesystem round-trip for the pack format.
  Status SaveToFile(const std::string& fs_path) const;
  static Result<DiscImage> LoadFromFile(const std::string& fs_path);

  /// Attaches a fault injector consulted on every Get (fault point
  /// fault::kDiscRead, detail = file path): injected errors model transient
  /// pickup failures, corrupt/truncate model scratched-media bit-rot on the
  /// *read copy* (the mastered bytes stay intact, like a marginal sector
  /// that reads differently per pass). Null reverts to the global injector.
  void set_fault_injector(fault::FaultInjector* injector) {
    fault_ = injector;
  }

 private:
  std::map<std::string, Bytes> files_;
  fault::FaultInjector* fault_ = nullptr;
};

/// Resolver mapping "disc://<path>" URIs to files of `image` (which must
/// outlive the resolver). This is how XML-DSig external References address
/// AV essence on the disc (§5.3); the signature layer and the player both
/// use it.
std::function<Result<Bytes>(const std::string&)> MakeDiscResolver(
    const DiscImage* image);

}  // namespace disc
}  // namespace discsec

#endif  // DISCSEC_DISC_DISC_IMAGE_H_
