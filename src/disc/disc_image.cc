#include "disc/disc_image.h"

#include <cstdio>

#include "crypto/sha256.h"

namespace discsec {
namespace disc {

namespace {
constexpr char kMagic[] = "DSCIMG01";
constexpr size_t kMagicLen = 8;
constexpr size_t kTrailerLen = 32;
}  // namespace

void DiscImage::Put(const std::string& path, Bytes data) {
  files_[path] = std::move(data);
}

void DiscImage::PutText(const std::string& path, std::string_view text) {
  files_[path] = ToBytes(text);
}

Result<Bytes> DiscImage::Get(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound("no file '" + path + "' on disc image");
  }
  Bytes data = it->second;
  DISCSEC_RETURN_IF_ERROR(fault::Effective(fault_)
                              ->HitData(fault::kDiscRead, &data, path)
                              .WithContext("disc image"));
  return data;
}

Result<std::string> DiscImage::GetText(const std::string& path) const {
  DISCSEC_ASSIGN_OR_RETURN(Bytes data, Get(path));
  return ToString(data);
}

bool DiscImage::Exists(const std::string& path) const {
  return files_.count(path) > 0;
}

std::vector<std::string> DiscImage::List() const {
  std::vector<std::string> out;
  out.reserve(files_.size());
  for (const auto& [path, data] : files_) out.push_back(path);
  return out;
}

size_t DiscImage::TotalBytes() const {
  size_t total = 0;
  for (const auto& [path, data] : files_) total += data.size();
  return total;
}

Bytes DiscImage::Pack() const {
  Bytes out;
  Append(&out, std::string_view(kMagic, kMagicLen));
  AppendUint32BE(&out, static_cast<uint32_t>(files_.size()));
  for (const auto& [path, data] : files_) {
    AppendUint32BE(&out, static_cast<uint32_t>(path.size()));
    Append(&out, path);
    AppendUint64BE(&out, data.size());
    Append(&out, data);
  }
  Bytes digest = crypto::Sha256::Hash(out);
  Append(&out, digest);
  return out;
}

Result<DiscImage> DiscImage::Unpack(const Bytes& packed) {
  if (packed.size() < kMagicLen + 4 + kTrailerLen) {
    return Status::Corruption("disc image too short");
  }
  if (ToString(Bytes(packed.begin(), packed.begin() + kMagicLen)) !=
      std::string(kMagic, kMagicLen)) {
    return Status::Corruption("disc image magic mismatch");
  }
  size_t body_len = packed.size() - kTrailerLen;
  Bytes body(packed.begin(), packed.begin() + body_len);
  Bytes trailer(packed.begin() + body_len, packed.end());
  if (!ConstantTimeEquals(crypto::Sha256::Hash(body), trailer)) {
    return Status::Corruption("disc image integrity digest mismatch");
  }
  DiscImage image;
  size_t pos = kMagicLen;
  uint32_t count = ReadUint32BE(packed.data() + pos);
  pos += 4;
  for (uint32_t i = 0; i < count; ++i) {
    if (pos + 4 > body_len) return Status::Corruption("truncated entry");
    uint32_t path_len = ReadUint32BE(packed.data() + pos);
    pos += 4;
    if (pos + path_len + 8 > body_len) {
      return Status::Corruption("truncated path");
    }
    std::string path(packed.begin() + pos, packed.begin() + pos + path_len);
    pos += path_len;
    uint64_t data_len = ReadUint64BE(packed.data() + pos);
    pos += 8;
    if (pos + data_len > body_len) {
      return Status::Corruption("truncated data");
    }
    image.files_[path] =
        Bytes(packed.begin() + pos, packed.begin() + pos + data_len);
    pos += data_len;
  }
  if (pos != body_len) {
    return Status::Corruption("trailing garbage in disc image");
  }
  return image;
}

Status DiscImage::SaveToFile(const std::string& fs_path) const {
  Bytes packed = Pack();
  std::FILE* f = std::fopen(fs_path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open " + fs_path);
  size_t written = std::fwrite(packed.data(), 1, packed.size(), f);
  std::fclose(f);
  if (written != packed.size()) {
    return Status::IOError("short write to " + fs_path);
  }
  return Status::OK();
}

Result<DiscImage> DiscImage::LoadFromFile(const std::string& fs_path) {
  std::FILE* f = std::fopen(fs_path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + fs_path);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (size < 0) {
    std::fclose(f);
    return Status::IOError("cannot stat " + fs_path);
  }
  Bytes data(static_cast<size_t>(size));
  size_t read = std::fread(data.data(), 1, data.size(), f);
  std::fclose(f);
  if (read != data.size()) return Status::IOError("short read " + fs_path);
  return Unpack(data);
}

std::function<Result<Bytes>(const std::string&)> MakeDiscResolver(
    const DiscImage* image) {
  return [image](const std::string& uri) -> Result<Bytes> {
    constexpr char kScheme[] = "disc://";
    if (uri.rfind(kScheme, 0) != 0) {
      return Status::NotFound("not a disc URI: " + uri);
    }
    return image->Get(uri.substr(sizeof(kScheme) - 1));
  };
}

}  // namespace disc
}  // namespace discsec
