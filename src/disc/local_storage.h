#ifndef DISCSEC_DISC_LOCAL_STORAGE_H_
#define DISCSEC_DISC_LOCAL_STORAGE_H_

#include <map>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/fault.h"
#include "common/result.h"

namespace discsec {
namespace disc {

/// The player's persistent local storage — the target of the paper's §1
/// threat ("a malicious application ... could corrupt the local storage of
/// the player") and of its §4 partial-encryption example (encrypted game
/// high scores). Quota-bounded key/value octet store; access control is
/// enforced above by the PEP, confidentiality by XML-Enc.
///
/// Every entry carries a SHA-256 checksum computed over the bytes the
/// writer *intended* to store, verified on each Read. A write interrupted
/// mid-flight (torn write, injected via fault::kStorageWrite) therefore
/// leaves a detectably-corrupt entry rather than silently wrong data.
class LocalStorage {
 public:
  /// `quota_bytes` bounds the sum of stored values (0 = unlimited).
  explicit LocalStorage(size_t quota_bytes = 0) : quota_(quota_bytes) {}

  /// Stores `data` under `path`; fails with ResourceExhausted when the
  /// write would exceed the quota. Under an injected storage.write fault an
  /// error-kind fault is fail-stop (nothing written, status returned) while
  /// a data-kind fault models a torn write: the mangled bytes are stored
  /// against the intended checksum and kUnavailable is returned, so a later
  /// Read reports Corruption instead of returning the mangled bytes.
  Status Write(const std::string& path, Bytes data);
  Status WriteText(const std::string& path, std::string_view text);

  /// Returns the entry, verifying its checksum (Corruption on mismatch).
  Result<Bytes> Read(const std::string& path) const;
  Result<std::string> ReadText(const std::string& path) const;

  bool Exists(const std::string& path) const;
  Status Remove(const std::string& path);

  /// All paths with the given prefix.
  std::vector<std::string> ListPrefix(const std::string& prefix) const;

  size_t UsedBytes() const;
  size_t quota() const { return quota_; }

  /// Persists all entries to `fs_path` (binary format with a SHA-256
  /// integrity trailer, shared with the disc image's framing) — the player
  /// writes this at power-off so scores survive power cycles.
  Status SaveToFile(const std::string& fs_path) const;

  /// Replaces the current entries with those from `fs_path`. Entries that
  /// exceed the quota are refused wholesale (the file is inconsistent with
  /// this player's provisioning). Checksums are recomputed on load; the
  /// container's own SHA-256 trailer vouches for the file contents.
  Status LoadFromFile(const std::string& fs_path);

  /// Attaches a fault injector consulted on Read (fault::kStorageRead,
  /// modelling at-rest bit-rot and transient flash errors) and Write
  /// (fault::kStorageWrite, modelling torn writes and write failures);
  /// detail = entry path. Null reverts to the global injector.
  void set_fault_injector(fault::FaultInjector* injector) {
    fault_ = injector;
  }

 private:
  struct Entry {
    Bytes data;
    Bytes sum;  ///< SHA-256 over the bytes the writer intended to store.
  };

  size_t quota_;
  std::map<std::string, Entry> entries_;
  fault::FaultInjector* fault_ = nullptr;
};

}  // namespace disc
}  // namespace discsec

#endif  // DISCSEC_DISC_LOCAL_STORAGE_H_
