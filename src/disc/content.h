#ifndef DISCSEC_DISC_CONTENT_H_
#define DISCSEC_DISC_CONTENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "xml/dom.h"

namespace discsec {
namespace disc {

/// The paper's Fig. 2 content hierarchy, top to bottom:
/// InteractiveCluster -> Track -> (Playlist -> ClipInfo -> transport
/// stream) | (ApplicationManifest -> Markup part + Code part).

/// Clip information: the link from playlists to the MPEG-2 transport
/// stream file on the disc.
struct ClipInfo {
  std::string id;
  std::string ts_path;       ///< disc path of the .m2ts file
  uint32_t duration_ms = 0;
};

/// One play item of a playlist (a chapter segment of a clip).
struct PlayItem {
  std::string clip_id;
  uint32_t in_ms = 0;
  uint32_t out_ms = 0;
};

/// An audio/video playlist (BD "Movie PlayList").
struct Playlist {
  std::string id;
  std::vector<PlayItem> items;
};

/// A SubMarkup of the manifest's Markup part — the paper's separation of
/// application characteristics ("the layout can be captured in one SubMarkup
/// and the timing issues in another").
struct SubMarkup {
  std::string name;
  std::string role;     ///< "layout", "timing", ... (author's choice)
  std::string content;  ///< XML text (e.g. a SMIL document)
};

/// One script of the Code part (ECMAScript source).
struct ScriptPart {
  std::string name;
  std::string source;
};

/// The Application Manifest: Markup part + Code part (+ the attached
/// permission request file, per §7).
struct ApplicationManifest {
  std::string id;
  std::vector<SubMarkup> markups;
  std::vector<ScriptPart> scripts;
  std::string permission_request_xml;  ///< empty = no permissions requested

  /// The SubMarkup with the given role, or null.
  const SubMarkup* FindMarkupByRole(std::string_view role) const;
};

/// A Track: either an AV chapter (playlist reference) or an interactive
/// application (manifest).
struct Track {
  enum class Kind { kAudioVideo, kApplication };
  std::string id;
  Kind kind = Kind::kAudioVideo;
  std::string playlist_id;          ///< kAudioVideo
  ApplicationManifest manifest;     ///< kApplication
};

/// The Interactive Cluster: "the generic representation of packaged
/// content, including Video, Audio and markup Application".
struct InteractiveCluster {
  std::string id;
  std::string title;
  std::vector<Track> tracks;
  std::vector<Playlist> playlists;
  std::vector<ClipInfo> clips;

  const Track* FindTrack(std::string_view id) const;
  Track* FindTrack(std::string_view id);
  const Playlist* FindPlaylist(std::string_view id) const;
  const ClipInfo* FindClip(std::string_view id) const;

  /// First application track, or null — what the player launches.
  const Track* FirstApplicationTrack() const;

  /// Serializes the whole cluster as one XML document whose elements carry
  /// Id attributes at every level (cluster, track, manifest, markup part,
  /// code part, individual SubMarkups/scripts) so XML-DSig references can
  /// target any granularity of §5.
  xml::Document ToXml() const;
  std::string ToXmlString() const;

  static Result<InteractiveCluster> FromXml(const xml::Document& doc);
  static Result<InteractiveCluster> FromXmlString(std::string_view text);

  /// Structural invariants: unique ids, AV tracks reference existing
  /// playlists, playlists reference existing clips.
  Status Validate() const;
};

/// Generates a synthetic MPEG-2 transport stream: `packets` 188-byte
/// packets with 0x47 sync bytes, a PID derived from `seed`, continuity
/// counters and pseudo-random payload. Stands in for real AV essence —
/// byte-identical behaviour for hashing/encryption purposes.
Bytes GenerateTransportStream(uint32_t seed, size_t packets);

/// Checks TS structure (length multiple of 188, sync bytes present).
Status ValidateTransportStream(const Bytes& ts);

}  // namespace disc
}  // namespace discsec

#endif  // DISCSEC_DISC_CONTENT_H_
