#ifndef DISCSEC_SVG_SVG_H_
#define DISCSEC_SVG_SVG_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "xml/dom.h"

namespace discsec {
namespace svg {

/// The SVG 1.1 namespace.
inline constexpr char kSvgNamespace[] = "http://www.w3.org/2000/svg";

/// A subset of SVG 1.1 — the second markup language of the paper's §2
/// candidate list ("SMIL, SVG, XHTML and XSL"). Enough for disc-menu
/// graphics: rect / circle / line / text, nested <g> groups with
/// translate() transforms and inheritable fill/stroke.

/// One resolved shape with absolute (transform-applied) coordinates.
struct Shape {
  enum class Kind { kRect, kCircle, kLine, kText };
  Kind kind = Kind::kRect;
  // kRect: x, y, width, height. kCircle: cx, cy, r.
  // kLine: x1=x, y1=y, x2, y2. kText: anchor x, y + text.
  double x = 0;
  double y = 0;
  double width = 0;
  double height = 0;
  double cx = 0;
  double cy = 0;
  double r = 0;
  double x2 = 0;
  double y2 = 0;
  std::string text;
  std::string fill;
  std::string stroke;
};

const char* ShapeKindName(Shape::Kind kind);

/// A parsed SVG document: viewport plus flattened shape list in paint
/// order.
struct Scene {
  double width = 0;
  double height = 0;
  std::vector<Shape> shapes;

  /// Structural checks: positive viewport, circles with r > 0, rects with
  /// non-negative sizes, every shape's bounding box inside the viewport.
  Status Validate() const;
};

/// Parses an <svg> document. Unknown elements are rejected (the player
/// profile is strict, like the SMIL engine).
Result<Scene> ParseSvg(const xml::Document& doc);
Result<Scene> ParseSvg(std::string_view text);

}  // namespace svg
}  // namespace discsec

#endif  // DISCSEC_SVG_SVG_H_
