#include "svg/svg.h"

#include <algorithm>
#include <cstdlib>

#include "common/strings.h"
#include "xml/parser.h"

namespace discsec {
namespace svg {

const char* ShapeKindName(Shape::Kind kind) {
  switch (kind) {
    case Shape::Kind::kRect:
      return "rect";
    case Shape::Kind::kCircle:
      return "circle";
    case Shape::Kind::kLine:
      return "line";
    case Shape::Kind::kText:
      return "text";
  }
  return "?";
}

namespace {

Result<double> NumberAttr(const xml::Element& e, const char* name,
                          double fallback) {
  const std::string* v = e.GetAttribute(name);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  double value = std::strtod(v->c_str(), &end);
  if (end == v->c_str() || (*end != '\0' && std::string(end) != "px")) {
    return Status::ParseError(std::string("bad numeric attribute ") + name +
                              "=\"" + *v + "\"");
  }
  return value;
}

struct Inherited {
  double dx = 0;
  double dy = 0;
  std::string fill;
  std::string stroke;
};

/// Parses "translate(x[,y])"; other transform functions are unsupported by
/// design (the player profile keeps layout static).
Result<std::pair<double, double>> ParseTranslate(const std::string& text) {
  std::string_view t = TrimWhitespace(text);
  if (!StartsWith(t, "translate(") || !EndsWith(t, ")")) {
    return Status::ParseError("unsupported transform: " + text);
  }
  std::string inner(t.substr(10, t.size() - 11));
  for (char& c : inner) {
    if (c == ',') c = ' ';
  }
  char* end = nullptr;
  double dx = std::strtod(inner.c_str(), &end);
  if (end == inner.c_str()) {
    return Status::ParseError("bad translate: " + text);
  }
  double dy = std::strtod(end, nullptr);
  return std::make_pair(dx, dy);
}

Status ParseChildren(const xml::Element& parent, const Inherited& inherited,
                     Scene* scene);

Status ParseShapeElement(const xml::Element& e, const Inherited& inherited,
                         Scene* scene) {
  std::string local(e.LocalName());
  Inherited style = inherited;
  if (const std::string* fill = e.GetAttribute("fill")) style.fill = *fill;
  if (const std::string* stroke = e.GetAttribute("stroke")) {
    style.stroke = *stroke;
  }

  if (local == "g") {
    Inherited next = style;
    if (const std::string* transform = e.GetAttribute("transform")) {
      DISCSEC_ASSIGN_OR_RETURN(auto offset, ParseTranslate(*transform));
      next.dx += offset.first;
      next.dy += offset.second;
    }
    return ParseChildren(e, next, scene);
  }

  Shape shape;
  shape.fill = style.fill;
  shape.stroke = style.stroke;
  if (local == "rect") {
    shape.kind = Shape::Kind::kRect;
    DISCSEC_ASSIGN_OR_RETURN(shape.x, NumberAttr(e, "x", 0));
    DISCSEC_ASSIGN_OR_RETURN(shape.y, NumberAttr(e, "y", 0));
    DISCSEC_ASSIGN_OR_RETURN(shape.width, NumberAttr(e, "width", 0));
    DISCSEC_ASSIGN_OR_RETURN(shape.height, NumberAttr(e, "height", 0));
    shape.x += style.dx;
    shape.y += style.dy;
  } else if (local == "circle") {
    shape.kind = Shape::Kind::kCircle;
    DISCSEC_ASSIGN_OR_RETURN(shape.cx, NumberAttr(e, "cx", 0));
    DISCSEC_ASSIGN_OR_RETURN(shape.cy, NumberAttr(e, "cy", 0));
    DISCSEC_ASSIGN_OR_RETURN(shape.r, NumberAttr(e, "r", 0));
    shape.cx += style.dx;
    shape.cy += style.dy;
  } else if (local == "line") {
    shape.kind = Shape::Kind::kLine;
    DISCSEC_ASSIGN_OR_RETURN(shape.x, NumberAttr(e, "x1", 0));
    DISCSEC_ASSIGN_OR_RETURN(shape.y, NumberAttr(e, "y1", 0));
    DISCSEC_ASSIGN_OR_RETURN(shape.x2, NumberAttr(e, "x2", 0));
    DISCSEC_ASSIGN_OR_RETURN(shape.y2, NumberAttr(e, "y2", 0));
    shape.x += style.dx;
    shape.y += style.dy;
    shape.x2 += style.dx;
    shape.y2 += style.dy;
  } else if (local == "text") {
    shape.kind = Shape::Kind::kText;
    DISCSEC_ASSIGN_OR_RETURN(shape.x, NumberAttr(e, "x", 0));
    DISCSEC_ASSIGN_OR_RETURN(shape.y, NumberAttr(e, "y", 0));
    shape.x += style.dx;
    shape.y += style.dy;
    shape.text = e.TextContent();
  } else if (local == "title" || local == "desc" || local == "defs") {
    return Status::OK();  // metadata containers: skipped
  } else {
    return Status::ParseError("unsupported SVG element <" + local + ">");
  }
  scene->shapes.push_back(std::move(shape));
  return Status::OK();
}

Status ParseChildren(const xml::Element& parent, const Inherited& inherited,
                     Scene* scene) {
  for (const xml::Element* child : parent.ChildElements()) {
    DISCSEC_RETURN_IF_ERROR(ParseShapeElement(*child, inherited, scene));
  }
  return Status::OK();
}

}  // namespace

Status Scene::Validate() const {
  if (width <= 0 || height <= 0) {
    return Status::InvalidArgument("SVG viewport must be positive");
  }
  for (const Shape& shape : shapes) {
    double min_x = 0, min_y = 0, max_x = 0, max_y = 0;
    switch (shape.kind) {
      case Shape::Kind::kRect:
        if (shape.width < 0 || shape.height < 0) {
          return Status::InvalidArgument("rect with negative size");
        }
        min_x = shape.x;
        min_y = shape.y;
        max_x = shape.x + shape.width;
        max_y = shape.y + shape.height;
        break;
      case Shape::Kind::kCircle:
        if (shape.r <= 0) {
          return Status::InvalidArgument("circle needs r > 0");
        }
        min_x = shape.cx - shape.r;
        min_y = shape.cy - shape.r;
        max_x = shape.cx + shape.r;
        max_y = shape.cy + shape.r;
        break;
      case Shape::Kind::kLine:
        min_x = std::min(shape.x, shape.x2);
        min_y = std::min(shape.y, shape.y2);
        max_x = std::max(shape.x, shape.x2);
        max_y = std::max(shape.y, shape.y2);
        break;
      case Shape::Kind::kText:
        // Text extent is renderer-dependent; only the anchor is checked.
        min_x = max_x = shape.x;
        min_y = max_y = shape.y;
        break;
    }
    if (min_x < 0 || min_y < 0 || max_x > width || max_y > height) {
      return Status::InvalidArgument(
          std::string(ShapeKindName(shape.kind)) +
          " extends outside the viewport");
    }
  }
  return Status::OK();
}

Result<Scene> ParseSvg(const xml::Document& doc) {
  const xml::Element* root = doc.root();
  if (root == nullptr || root->LocalName() != "svg") {
    return Status::ParseError("not an SVG document");
  }
  Scene scene;
  DISCSEC_ASSIGN_OR_RETURN(scene.width, NumberAttr(*root, "width", 0));
  DISCSEC_ASSIGN_OR_RETURN(scene.height, NumberAttr(*root, "height", 0));
  DISCSEC_RETURN_IF_ERROR(ParseChildren(*root, Inherited(), &scene));
  return scene;
}

Result<Scene> ParseSvg(std::string_view text) {
  DISCSEC_ASSIGN_OR_RETURN(xml::Document doc, xml::Parse(text));
  return ParseSvg(doc);
}

}  // namespace svg
}  // namespace discsec
