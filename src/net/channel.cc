#include "net/channel.h"

#include "crypto/aes.h"
#include "crypto/hmac.h"

namespace discsec {
namespace net {

ChannelEndpoint::ChannelEndpoint(Bytes send_key, Bytes recv_key,
                                 Bytes send_mac, Bytes recv_mac, Rng* rng)
    : send_key_(std::move(send_key)),
      recv_key_(std::move(recv_key)),
      send_mac_(std::move(send_mac)),
      recv_mac_(std::move(recv_mac)),
      rng_(rng) {}

Result<Bytes> ChannelEndpoint::Seal(const Bytes& plaintext) {
  if (rng_ == nullptr) return Status::InvalidArgument("endpoint not connected");
  Bytes iv = rng_->NextBytes(crypto::Aes::kBlockSize);
  DISCSEC_ASSIGN_OR_RETURN(Bytes ciphertext,
                           crypto::AesCbcEncrypt(send_key_, iv, plaintext));
  Bytes record;
  AppendUint64BE(&record, send_seq_++);
  AppendUint32BE(&record, static_cast<uint32_t>(ciphertext.size()));
  Append(&record, ciphertext);
  Bytes mac = crypto::Hmac::Sha256Mac(send_mac_, record);
  Append(&record, mac);
  DISCSEC_RETURN_IF_ERROR(fault::Effective(fault_)
                              ->HitData(fault::kNetSeal, &record, "seal")
                              .WithContext("secure channel"));
  return record;
}

Result<Bytes> ChannelEndpoint::Open(const Bytes& record) {
  if (rng_ == nullptr) return Status::InvalidArgument("endpoint not connected");
  Bytes damaged = record;
  DISCSEC_RETURN_IF_ERROR(fault::Effective(fault_)
                              ->HitData(fault::kNetOpen, &damaged, "open")
                              .WithContext("secure channel"));
  constexpr size_t kMacLen = 32;
  if (damaged.size() < 12 + kMacLen) {
    return Status::Corruption("record too short");
  }
  size_t body_len = damaged.size() - kMacLen;
  Bytes body(damaged.begin(), damaged.begin() + body_len);
  Bytes mac(damaged.begin() + body_len, damaged.end());
  if (!ConstantTimeEquals(crypto::Hmac::Sha256Mac(recv_mac_, body), mac)) {
    return Status::VerificationFailed("record MAC mismatch (tampered?)");
  }
  uint64_t seq = ReadUint64BE(damaged.data());
  if (seq != recv_seq_) {
    return Status::VerificationFailed("record sequence mismatch (replay?)");
  }
  ++recv_seq_;
  uint32_t len = ReadUint32BE(damaged.data() + 8);
  if (12 + len != body_len) {
    return Status::Corruption("record length mismatch");
  }
  Bytes ciphertext(damaged.begin() + 12, damaged.begin() + body_len);
  return crypto::AesCbcDecrypt(recv_key_, ciphertext);
}

Result<SecureChannel> EstablishSecureChannel(
    const pki::CertStore& client_trust,
    const std::vector<pki::Certificate>& server_chain,
    const crypto::RsaPrivateKey& server_key, int64_t now, Rng* rng) {
  // 1-2. Nonce exchange + server certificate presentation.
  Bytes client_nonce = rng->NextBytes(32);
  Bytes server_nonce = rng->NextBytes(32);
  if (server_chain.empty()) {
    return Status::InvalidArgument("server presented no certificates");
  }
  DISCSEC_RETURN_IF_ERROR(client_trust.ValidateChain(server_chain, now)
                              .WithContext("secure channel handshake"));
  const pki::Certificate& leaf = server_chain.front();

  // 3. Premaster transport.
  Bytes premaster = rng->NextBytes(48);
  DISCSEC_ASSIGN_OR_RETURN(
      Bytes encrypted_premaster,
      crypto::RsaEncrypt(leaf.info().public_key, premaster, rng));
  // The server decrypts with its private key — this fails (and so does the
  // whole handshake) when the server does not actually own the key its
  // certificate advertises.
  DISCSEC_ASSIGN_OR_RETURN(Bytes server_premaster,
                           crypto::RsaDecrypt(server_key,
                                              encrypted_premaster));
  if (!ConstantTimeEquals(premaster, server_premaster)) {
    return Status::VerificationFailed("premaster mismatch");
  }

  // 4. Key derivation: client->server and server->client AES + MAC keys.
  Bytes seed = client_nonce;
  Append(&seed, server_nonce);
  Bytes material = crypto::HkdfExpand(premaster, "disc-channel", seed,
                                      2 * 16 + 2 * 32);
  Bytes c2s_key(material.begin(), material.begin() + 16);
  Bytes s2c_key(material.begin() + 16, material.begin() + 32);
  Bytes c2s_mac(material.begin() + 32, material.begin() + 64);
  Bytes s2c_mac(material.begin() + 64, material.begin() + 96);

  SecureChannel channel;
  channel.client = ChannelEndpoint(c2s_key, s2c_key, c2s_mac, s2c_mac, rng);
  channel.server = ChannelEndpoint(s2c_key, c2s_key, s2c_mac, c2s_mac, rng);
  channel.server_subject = leaf.info().subject;
  return channel;
}

}  // namespace net
}  // namespace discsec
