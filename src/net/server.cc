#include "net/server.h"

namespace discsec {
namespace net {

void ContentServer::Host(const std::string& path, Bytes content) {
  content_[path] = std::move(content);
}

void ContentServer::HostText(const std::string& path, std::string_view text) {
  content_[path] = ToBytes(text);
}

Result<Bytes> ContentServer::HandleGet(const std::string& path) const {
  auto it = content_.find(path);
  if (it == content_.end()) {
    return Status::NotFound("server does not host '" + path + "'");
  }
  return it->second;
}

bool ContentServer::Hosts(const std::string& path) const {
  return content_.count(path) > 0;
}

Result<Bytes> Downloader::Roundtrip(const Bytes& request, bool is_xkms,
                                    bool* service_error) {
  fault::FaultInjector* injector = fault::Effective(options_.fault);
  auto tap = [this](const Bytes& wire) {
    return options_.tap ? options_.tap(wire) : wire;
  };

  // Server-side dispatch once the request plaintext is in hand. A failure
  // here is the *service* answering badly, not the network losing bytes —
  // mark it so callers can classify.
  auto dispatch = [this, is_xkms,
                   service_error](const Bytes& plain) -> Result<Bytes> {
    auto mark = [service_error] {
      if (service_error != nullptr) *service_error = true;
    };
    if (is_xkms) {
      // An attached xkmsd takes precedence over the in-line toy service:
      // the request goes through its admission front door and (blocking
      // here, as this transport is synchronous) comes back with the same
      // wire markup. Sheds are service-side answers — their kUnavailable
      // and retry-after hint survive the classification below.
      auto handle = [this](const std::string& request) {
        if (xkms::Xkmsd* xkmsd = server_->attached_xkmsd()) {
          xkms::XkmsdRequestOptions req;
          if (server_->xkmsd_budget_us() > 0) {
            req.deadline_us = xkmsd->NowUs() + server_->xkmsd_budget_us();
          }
          return xkmsd->Handle(request, req);
        }
        return server_->xkms()->HandleRequest(request);
      };
      Result<std::string> response = handle(ToString(plain));
      if (!response.ok()) {
        mark();
        return response.status();
      }
      return ToBytes(std::move(response).value());
    }
    Result<Bytes> content = server_->HandleGet(ToString(plain));
    if (!content.ok()) mark();
    return content;
  };

  if (!options_.use_secure_channel) {
    // Plain HTTP-like exchange: the tap sees (and may alter) everything.
    Bytes wire_request = tap(request);
    DISCSEC_RETURN_IF_ERROR(
        injector->HitData(fault::kNetWire, &wire_request, "request")
            .WithContext("network"));
    DISCSEC_ASSIGN_OR_RETURN(Bytes response, dispatch(wire_request));
    Bytes wire_response = tap(response);
    DISCSEC_RETURN_IF_ERROR(
        injector->HitData(fault::kNetWire, &wire_response, "response")
            .WithContext("network"));
    return wire_response;
  }

  if (options_.trust == nullptr) {
    return Status::InvalidArgument("secure channel requires a trust store");
  }
  DISCSEC_ASSIGN_OR_RETURN(
      SecureChannel channel,
      EstablishSecureChannel(*options_.trust, server_->chain(),
                             server_->key(), options_.now, rng_));
  channel.client.set_fault_injector(options_.fault);
  channel.server.set_fault_injector(options_.fault);
  // Client -> server.
  DISCSEC_ASSIGN_OR_RETURN(Bytes sealed_request,
                           channel.client.Seal(request));
  Bytes wire_request = tap(sealed_request);
  DISCSEC_RETURN_IF_ERROR(
      injector->HitData(fault::kNetWire, &wire_request, "request")
          .WithContext("network"));
  DISCSEC_ASSIGN_OR_RETURN(Bytes opened_request,
                           channel.server.Open(wire_request));
  DISCSEC_ASSIGN_OR_RETURN(Bytes response, dispatch(opened_request));
  // Server -> client.
  DISCSEC_ASSIGN_OR_RETURN(Bytes sealed_response,
                           channel.server.Seal(response));
  Bytes wire_response = tap(sealed_response);
  DISCSEC_RETURN_IF_ERROR(
      injector->HitData(fault::kNetWire, &wire_response, "response")
          .WithContext("network"));
  return channel.client.Open(wire_response);
}

Result<Bytes> Downloader::Fetch(const std::string& path) {
  return Roundtrip(ToBytes(path), /*is_xkms=*/false);
}

Result<std::string> Downloader::XkmsExchange(const std::string& request_xml) {
  bool service_error = false;
  Result<Bytes> response =
      Roundtrip(ToBytes(request_xml), /*is_xkms=*/true, &service_error);
  if (!response.ok()) {
    if (service_error) {
      return response.status().WithContext("XKMS service");
    }
    // Everything else broke in transit (handshake, torn record, injected
    // wire fault): retryable by definition, whatever the inner code was.
    return Status::Unavailable(response.status().ToString())
        .WithContext("XKMS transport");
  }
  return ToString(std::move(response).value());
}

std::function<Result<std::string>(const std::string&)>
Downloader::XkmsTransport() {
  return [this](const std::string& request_xml) {
    return XkmsExchange(request_xml);
  };
}

}  // namespace net
}  // namespace discsec
