#include "net/server.h"

namespace discsec {
namespace net {

void ContentServer::Host(const std::string& path, Bytes content) {
  content_[path] = std::move(content);
}

void ContentServer::HostText(const std::string& path, std::string_view text) {
  content_[path] = ToBytes(text);
}

Result<Bytes> ContentServer::HandleGet(const std::string& path) const {
  auto it = content_.find(path);
  if (it == content_.end()) {
    return Status::NotFound("server does not host '" + path + "'");
  }
  return it->second;
}

bool ContentServer::Hosts(const std::string& path) const {
  return content_.count(path) > 0;
}

Result<Bytes> Downloader::Roundtrip(const Bytes& request, bool is_xkms) {
  auto tap = [this](const Bytes& wire) {
    return options_.tap ? options_.tap(wire) : wire;
  };

  // Server-side dispatch once the request plaintext is in hand.
  auto dispatch = [this, is_xkms](const Bytes& plain) -> Result<Bytes> {
    if (is_xkms) {
      DISCSEC_ASSIGN_OR_RETURN(std::string response,
                               server_->xkms()->HandleRequest(
                                   ToString(plain)));
      return ToBytes(response);
    }
    return server_->HandleGet(ToString(plain));
  };

  if (!options_.use_secure_channel) {
    // Plain HTTP-like exchange: the tap sees (and may alter) everything.
    Bytes wire_request = tap(request);
    DISCSEC_ASSIGN_OR_RETURN(Bytes response, dispatch(wire_request));
    return tap(response);
  }

  if (options_.trust == nullptr) {
    return Status::InvalidArgument("secure channel requires a trust store");
  }
  DISCSEC_ASSIGN_OR_RETURN(
      SecureChannel channel,
      EstablishSecureChannel(*options_.trust, server_->chain(),
                             server_->key(), options_.now, rng_));
  // Client -> server.
  DISCSEC_ASSIGN_OR_RETURN(Bytes sealed_request,
                           channel.client.Seal(request));
  Bytes wire_request = tap(sealed_request);
  DISCSEC_ASSIGN_OR_RETURN(Bytes opened_request,
                           channel.server.Open(wire_request));
  DISCSEC_ASSIGN_OR_RETURN(Bytes response, dispatch(opened_request));
  // Server -> client.
  DISCSEC_ASSIGN_OR_RETURN(Bytes sealed_response,
                           channel.server.Seal(response));
  Bytes wire_response = tap(sealed_response);
  return channel.client.Open(wire_response);
}

Result<Bytes> Downloader::Fetch(const std::string& path) {
  return Roundtrip(ToBytes(path), /*is_xkms=*/false);
}

Result<std::string> Downloader::XkmsExchange(const std::string& request_xml) {
  DISCSEC_ASSIGN_OR_RETURN(Bytes response,
                           Roundtrip(ToBytes(request_xml), /*is_xkms=*/true));
  return ToString(response);
}

}  // namespace net
}  // namespace discsec
