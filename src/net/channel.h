#ifndef DISCSEC_NET_CHANNEL_H_
#define DISCSEC_NET_CHANNEL_H_

#include <memory>
#include <vector>

#include "common/bytes.h"
#include "common/fault.h"
#include "common/random.h"
#include "common/result.h"
#include "crypto/rsa.h"
#include "pki/cert_store.h"

namespace discsec {
namespace net {

/// One endpoint of an established secure channel. Seal() turns plaintext
/// into an authenticated record; Open() reverses it, enforcing sequencing.
///
/// Record layout: u64 seq | u32 len | AES-128-CBC ciphertext (IV prepended)
/// | HMAC-SHA256(seq || len || ciphertext). Keys are directional.
class ChannelEndpoint {
 public:
  ChannelEndpoint() = default;
  ChannelEndpoint(Bytes send_key, Bytes recv_key, Bytes send_mac,
                  Bytes recv_mac, Rng* rng);

  /// Encrypts and MACs one record.
  Result<Bytes> Seal(const Bytes& plaintext);

  /// Verifies and decrypts one record. Rejects tampered payloads and
  /// replayed/reordered sequence numbers.
  Result<Bytes> Open(const Bytes& record);

  /// Attaches a fault injector consulted on Seal (fault::kNetSeal, the
  /// outbound record) and Open (fault::kNetOpen, a local copy of the
  /// inbound record before MAC verification — modelling on-the-wire damage,
  /// which the MAC then catches). Null reverts to the global injector.
  void set_fault_injector(fault::FaultInjector* injector) {
    fault_ = injector;
  }

 private:
  Bytes send_key_, recv_key_, send_mac_, recv_mac_;
  uint64_t send_seq_ = 0;
  uint64_t recv_seq_ = 0;
  Rng* rng_ = nullptr;
  fault::FaultInjector* fault_ = nullptr;
};

/// Result of the handshake: the two connected endpoints (in-process
/// simulation of an SSL/TLS session, which the paper's §7 assigns to
/// application transport) plus the server identity the client validated.
struct SecureChannel {
  ChannelEndpoint client;
  ChannelEndpoint server;
  std::string server_subject;
};

/// Performs the handshake:
///  1. client sends a nonce;
///  2. server answers with its certificate chain and a nonce;
///  3. client validates the chain against `client_trust` (time `now`),
///     generates a premaster secret and RSA-encrypts it to the leaf key;
///  4. both sides derive directional AES/MAC keys with the HKDF expansion
///     over the nonces.
/// Mirrors RSA-key-exchange TLS closely enough to exercise the same
/// failure modes (untrusted server, expired cert, wrong private key).
Result<SecureChannel> EstablishSecureChannel(
    const pki::CertStore& client_trust,
    const std::vector<pki::Certificate>& server_chain,
    const crypto::RsaPrivateKey& server_key, int64_t now, Rng* rng);

}  // namespace net
}  // namespace discsec

#endif  // DISCSEC_NET_CHANNEL_H_
