#ifndef DISCSEC_NET_SERVER_H_
#define DISCSEC_NET_SERVER_H_

#include <functional>
#include <map>
#include <string>

#include "common/bytes.h"
#include "common/fault.h"
#include "common/result.h"
#include "net/channel.h"
#include "xkms/service.h"
#include "xkms/xkmsd.h"

namespace discsec {
namespace net {

/// The content server of the paper's Fig. 1/Fig. 3: hosts downloadable
/// interactive applications (and bonus material) by path, and exposes the
/// XKMS trust service endpoint. In-process; transport is either plain or
/// the secure channel.
class ContentServer {
 public:
  /// Publishes content at `path` (e.g. "/apps/bonus-game.xml").
  void Host(const std::string& path, Bytes content);
  void HostText(const std::string& path, std::string_view text);

  Result<Bytes> HandleGet(const std::string& path) const;
  bool Hosts(const std::string& path) const;
  size_t HostedCount() const { return content_.size(); }

  /// The trust service co-hosted at this server (paper §7).
  xkms::XkmsService* xkms() { return &xkms_; }

  /// Routes XKMS traffic through a fleet-scale responder instead of the
  /// in-line toy service: every Downloader::XkmsExchange then goes through
  /// xkmsd's admission front door (same wire markup, so clients are none
  /// the wiser — except that overload now sheds with retry-after hints
  /// instead of queueing forever). `request_budget_us` > 0 gives each
  /// dispatched request that much of the responder's clock as deadline.
  /// The responder must outlive this server; null detaches.
  void AttachXkmsd(xkms::Xkmsd* xkmsd, int64_t request_budget_us = 0) {
    xkmsd_ = xkmsd;
    xkmsd_budget_us_ = request_budget_us;
  }
  xkms::Xkmsd* attached_xkmsd() const { return xkmsd_; }
  int64_t xkmsd_budget_us() const { return xkmsd_budget_us_; }

  /// Server identity for the secure channel.
  void SetIdentity(std::vector<pki::Certificate> chain,
                   crypto::RsaPrivateKey key) {
    chain_ = std::move(chain);
    key_ = std::move(key);
  }
  const std::vector<pki::Certificate>& chain() const { return chain_; }
  const crypto::RsaPrivateKey& key() const { return key_; }

 private:
  std::map<std::string, Bytes> content_;
  xkms::XkmsService xkms_;
  xkms::Xkmsd* xkmsd_ = nullptr;
  int64_t xkmsd_budget_us_ = 0;
  std::vector<pki::Certificate> chain_;
  crypto::RsaPrivateKey key_;
};

/// Observes/modifies wire bytes in flight — the man-in-the-van of §3.1.
/// Return the (possibly altered) bytes; they then continue to the receiver.
using WireTap = std::function<Bytes(const Bytes& wire_bytes)>;

/// Client-side downloader: fetches server content over a plain or secure
/// connection, with an optional WireTap for attack simulation.
class Downloader {
 public:
  struct Options {
    bool use_secure_channel = true;
    /// Required for the secure channel: the player's trust anchors.
    const pki::CertStore* trust = nullptr;
    int64_t now = 0;
    WireTap tap;  ///< applied to every wire payload in both directions
    /// Injector for fault::kNetWire (wire bytes in both directions; detail
    /// "request"/"response") and, over the secure channel, the endpoint
    /// points fault::kNetSeal/kNetOpen. Null means the global injector.
    fault::FaultInjector* fault = nullptr;
  };

  Downloader(ContentServer* server, Options options, Rng* rng)
      : server_(server), options_(std::move(options)), rng_(rng) {}

  /// Fetches `path`. Over the secure channel the request and response are
  /// sealed records; a WireTap that alters them causes VerificationFailed.
  /// Over a plain connection the tap alters content silently — the
  /// XML-DSig layer above must catch it.
  Result<Bytes> Fetch(const std::string& path);

  /// Sends an XKMS request to the server's trust service over the same
  /// transport, returning the response markup. Failures are classified:
  /// errors raised by the trust service itself keep their code with an
  /// "XKMS service" context, while anything that broke in transit
  /// (handshake, torn records, injected wire faults) comes back as
  /// retryable kUnavailable with an "XKMS transport" context.
  Result<std::string> XkmsExchange(const std::string& request_xml);

  /// A transport closure for xkms::XkmsClient bound to XkmsExchange().
  /// This downloader must outlive the returned closure.
  std::function<Result<std::string>(const std::string&)> XkmsTransport();

 private:
  /// `service_error`, when non-null, is set to true iff the request reached
  /// the server-side handler and *it* failed — the marker XkmsExchange uses
  /// to tell terminal service errors from retryable transport errors.
  Result<Bytes> Roundtrip(const Bytes& request, bool is_xkms,
                          bool* service_error = nullptr);

  ContentServer* server_;
  Options options_;
  Rng* rng_;
};

}  // namespace net
}  // namespace discsec

#endif  // DISCSEC_NET_SERVER_H_
