#include "smil/smil.h"

#include <cstdlib>
#include <set>

#include "common/strings.h"
#include "xml/parser.h"

namespace discsec {
namespace smil {

Result<TimeMs> ParseClockValue(std::string_view text) {
  std::string_view trimmed = TrimWhitespace(text);
  if (trimmed.empty()) return Status::ParseError("empty clock value");
  if (trimmed == "indefinite") return kIndefinite;

  // mm:ss or hh:mm:ss form.
  if (trimmed.find(':') != std::string_view::npos) {
    auto parts = SplitString(trimmed, ':');
    if (parts.size() < 2 || parts.size() > 3) {
      return Status::ParseError("bad clock value: " + std::string(trimmed));
    }
    TimeMs total = 0;
    for (const std::string& part : parts) {
      char* end = nullptr;
      double v = std::strtod(part.c_str(), &end);
      if (end == part.c_str() || *end != '\0' || v < 0) {
        return Status::ParseError("bad clock value: " + std::string(trimmed));
      }
      total = total * 60 + static_cast<TimeMs>(v * 1000);
    }
    return total;
  }

  double scale = 1000.0;  // default unit: seconds
  std::string_view digits = trimmed;
  if (EndsWith(trimmed, "ms")) {
    scale = 1.0;
    digits = trimmed.substr(0, trimmed.size() - 2);
  } else if (EndsWith(trimmed, "s")) {
    digits = trimmed.substr(0, trimmed.size() - 1);
  } else if (EndsWith(trimmed, "min")) {
    scale = 60000.0;
    digits = trimmed.substr(0, trimmed.size() - 3);
  } else if (EndsWith(trimmed, "h")) {
    scale = 3600000.0;
    digits = trimmed.substr(0, trimmed.size() - 1);
  }
  std::string buffer(digits);
  char* end = nullptr;
  double v = std::strtod(buffer.c_str(), &end);
  if (end == buffer.c_str() || *end != '\0' || v < 0) {
    return Status::ParseError("bad clock value: " + std::string(trimmed));
  }
  return static_cast<TimeMs>(v * scale);
}

TimeMs TimeNode::ResolvedDuration() const {
  if (dur != kUnset) return dur;
  switch (kind) {
    case Kind::kMedia:
      return 0;
    case Kind::kSeq: {
      TimeMs total = 0;
      for (const auto& child : children) {
        TimeMs d = child->ResolvedDuration();
        if (d == kIndefinite) return kIndefinite;
        total += child->begin + d;
      }
      return total;
    }
    case Kind::kPar: {
      TimeMs max = 0;
      for (const auto& child : children) {
        TimeMs d = child->ResolvedDuration();
        if (d == kIndefinite) return kIndefinite;
        if (child->begin + d > max) max = child->begin + d;
      }
      return max;
    }
  }
  return 0;
}

const Region* Presentation::FindRegion(std::string_view id) const {
  for (const Region& r : regions) {
    if (r.id == id) return &r;
  }
  return nullptr;
}

namespace {

void Schedule(const TimeNode& node, TimeMs start,
              std::vector<ScheduledMedia>* out) {
  TimeMs self_start = start + node.begin;
  switch (node.kind) {
    case TimeNode::Kind::kMedia: {
      ScheduledMedia media;
      media.tag = node.tag;
      media.src = node.src;
      media.region = node.region;
      media.start = self_start;
      TimeMs d = node.ResolvedDuration();
      media.end = d == kIndefinite ? kIndefinite : self_start + d;
      out->push_back(std::move(media));
      return;
    }
    case TimeNode::Kind::kSeq: {
      TimeMs cursor = self_start;
      for (const auto& child : node.children) {
        Schedule(*child, cursor, out);
        TimeMs d = child->ResolvedDuration();
        if (d == kIndefinite) return;  // open-ended child blocks the rest
        cursor += child->begin + d;
      }
      return;
    }
    case TimeNode::Kind::kPar: {
      for (const auto& child : node.children) {
        Schedule(*child, self_start, out);
      }
      return;
    }
  }
}

bool IsMediaTag(std::string_view local) {
  return local == "video" || local == "audio" || local == "img" ||
         local == "text" || local == "ref" || local == "animation";
}

Result<std::unique_ptr<TimeNode>> ParseTimeNode(const xml::Element& e) {
  auto node = std::make_unique<TimeNode>();
  std::string local(e.LocalName());
  if (local == "seq") {
    node->kind = TimeNode::Kind::kSeq;
  } else if (local == "par") {
    node->kind = TimeNode::Kind::kPar;
  } else if (IsMediaTag(local)) {
    node->kind = TimeNode::Kind::kMedia;
    node->tag = local;
    const std::string* src = e.GetAttribute("src");
    if (src != nullptr) node->src = *src;
    const std::string* region = e.GetAttribute("region");
    if (region != nullptr) node->region = *region;
  } else {
    return Status::ParseError("unsupported SMIL element <" + local + ">");
  }
  if (const std::string* begin = e.GetAttribute("begin")) {
    DISCSEC_ASSIGN_OR_RETURN(node->begin, ParseClockValue(*begin));
    if (node->begin == kIndefinite) {
      return Status::ParseError("begin=\"indefinite\" is not supported");
    }
  }
  if (const std::string* dur = e.GetAttribute("dur")) {
    DISCSEC_ASSIGN_OR_RETURN(node->dur, ParseClockValue(*dur));
  }
  if (node->kind != TimeNode::Kind::kMedia) {
    for (const xml::Element* child : e.ChildElements()) {
      DISCSEC_ASSIGN_OR_RETURN(std::unique_ptr<TimeNode> child_node,
                               ParseTimeNode(*child));
      node->children.push_back(std::move(child_node));
    }
  }
  return node;
}

Result<int> ParseIntAttr(const xml::Element& e, const char* name,
                         int fallback) {
  const std::string* v = e.GetAttribute(name);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  long value = std::strtol(v->c_str(), &end, 10);
  if (end == v->c_str() || (*end != '\0' && std::string(end) != "px")) {
    return Status::ParseError(std::string("bad integer attribute ") + name);
  }
  return static_cast<int>(value);
}

}  // namespace

std::vector<ScheduledMedia> Presentation::ResolveTimeline() const {
  std::vector<ScheduledMedia> out;
  if (body != nullptr) Schedule(*body, 0, &out);
  return out;
}

TimeMs Presentation::Duration() const {
  return body != nullptr ? body->ResolvedDuration() : 0;
}

Status Presentation::Validate() const {
  std::set<std::string> ids;
  for (const Region& r : regions) {
    if (r.id.empty()) {
      return Status::InvalidArgument("region without id");
    }
    if (!ids.insert(r.id).second) {
      return Status::InvalidArgument("duplicate region id '" + r.id + "'");
    }
    if (r.width <= 0 || r.height <= 0) {
      return Status::InvalidArgument("region '" + r.id +
                                     "' has non-positive size");
    }
    if (root_width > 0 &&
        (r.left < 0 || r.top < 0 || r.left + r.width > root_width ||
         r.top + r.height > root_height)) {
      return Status::InvalidArgument("region '" + r.id +
                                     "' exceeds root layout bounds");
    }
  }
  // Every referenced region must exist.
  Status status = Status::OK();
  for (const ScheduledMedia& media : ResolveTimeline()) {
    if (!media.region.empty() && FindRegion(media.region) == nullptr) {
      return Status::InvalidArgument("media '" + media.src +
                                     "' references unknown region '" +
                                     media.region + "'");
    }
  }
  return status;
}

Result<Presentation> ParseSmil(const xml::Document& doc) {
  const xml::Element* root = doc.root();
  if (root == nullptr || root->LocalName() != "smil") {
    return Status::ParseError("not a SMIL document");
  }
  Presentation out;
  const xml::Element* head = root->FirstChildElementByLocalName("head");
  if (head != nullptr) {
    const xml::Element* layout = head->FirstChildElementByLocalName("layout");
    if (layout != nullptr) {
      const xml::Element* root_layout =
          layout->FirstChildElementByLocalName("root-layout");
      if (root_layout != nullptr) {
        DISCSEC_ASSIGN_OR_RETURN(out.root_width,
                                 ParseIntAttr(*root_layout, "width", 0));
        DISCSEC_ASSIGN_OR_RETURN(out.root_height,
                                 ParseIntAttr(*root_layout, "height", 0));
        const std::string* bg = root_layout->GetAttribute("background-color");
        if (bg != nullptr) out.root_background = *bg;
      }
      for (const xml::Element* region_elem : layout->ChildElements()) {
        if (region_elem->LocalName() != "region") continue;
        Region region;
        const std::string* id = region_elem->GetAttribute("id");
        if (id == nullptr) {
          return Status::ParseError("region without id attribute");
        }
        region.id = *id;
        DISCSEC_ASSIGN_OR_RETURN(region.left,
                                 ParseIntAttr(*region_elem, "left", 0));
        DISCSEC_ASSIGN_OR_RETURN(region.top,
                                 ParseIntAttr(*region_elem, "top", 0));
        DISCSEC_ASSIGN_OR_RETURN(region.width,
                                 ParseIntAttr(*region_elem, "width", 0));
        DISCSEC_ASSIGN_OR_RETURN(region.height,
                                 ParseIntAttr(*region_elem, "height", 0));
        DISCSEC_ASSIGN_OR_RETURN(region.z_index,
                                 ParseIntAttr(*region_elem, "z-index", 0));
        const std::string* bg = region_elem->GetAttribute("background-color");
        if (bg != nullptr) region.background_color = *bg;
        out.regions.push_back(std::move(region));
      }
    }
  }
  const xml::Element* body = root->FirstChildElementByLocalName("body");
  auto implicit_seq = std::make_unique<TimeNode>();
  implicit_seq->kind = TimeNode::Kind::kSeq;
  if (body != nullptr) {
    for (const xml::Element* child : body->ChildElements()) {
      DISCSEC_ASSIGN_OR_RETURN(std::unique_ptr<TimeNode> node,
                               ParseTimeNode(*child));
      implicit_seq->children.push_back(std::move(node));
    }
  }
  out.body = std::move(implicit_seq);
  return out;
}

Result<Presentation> ParseSmil(std::string_view text) {
  DISCSEC_ASSIGN_OR_RETURN(xml::Document doc, xml::Parse(text));
  return ParseSmil(doc);
}

}  // namespace smil
}  // namespace discsec
