#ifndef DISCSEC_SMIL_SMIL_H_
#define DISCSEC_SMIL_SMIL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "xml/dom.h"

namespace discsec {
namespace smil {

/// The SMIL 2.0 Language namespace the paper's prototype markup used.
inline constexpr char kSmilNamespace[] =
    "http://www.w3.org/2001/SMIL20/Language";

/// A layout region from <head><layout>.
struct Region {
  std::string id;
  int left = 0;
  int top = 0;
  int width = 0;
  int height = 0;
  int z_index = 0;
  std::string background_color;
};

/// Time in milliseconds; kIndefinite for unresolved/"indefinite".
using TimeMs = int64_t;
inline constexpr TimeMs kIndefinite = -1;
/// Internal sentinel: the attribute was not given (distinct from an
/// explicit "indefinite").
inline constexpr TimeMs kUnset = -2;

/// Parses a SMIL clock value: "5s", "1.5s", "500ms", "02:10" (min:sec),
/// bare seconds, or "indefinite".
Result<TimeMs> ParseClockValue(std::string_view text);

/// A node of the timing tree: a container (<seq>/<par>) or a media object
/// (<video>/<audio>/<img>/<text>/<ref>).
struct TimeNode {
  enum class Kind { kSeq, kPar, kMedia };
  Kind kind = Kind::kMedia;
  // media fields
  std::string tag;     ///< element name (video, img, ...)
  std::string src;
  std::string region;
  // timing
  TimeMs begin = 0;          ///< offset from parent-determined start
  TimeMs dur = kUnset;       ///< explicit duration (kIndefinite allowed)
  std::vector<std::unique_ptr<TimeNode>> children;

  /// Implicit duration: media defaults to 0 unless dur set; seq sums its
  /// children; par takes the max. kIndefinite propagates.
  TimeMs ResolvedDuration() const;
};

/// One media object placed on the resolved timeline.
struct ScheduledMedia {
  std::string tag;
  std::string src;
  std::string region;
  TimeMs start = 0;
  TimeMs end = kIndefinite;  ///< kIndefinite = plays to the end
};

/// A parsed SMIL presentation: layout plus timing tree.
struct Presentation {
  int root_width = 0;
  int root_height = 0;
  std::string root_background;
  std::vector<Region> regions;
  std::unique_ptr<TimeNode> body;  ///< an implicit <seq> over body children

  const Region* FindRegion(std::string_view id) const;

  /// Flattens the timing tree into absolutely scheduled media objects.
  std::vector<ScheduledMedia> ResolveTimeline() const;

  /// Total presentation duration (kIndefinite when open-ended).
  TimeMs Duration() const;

  /// Structural checks: every media region reference must name a declared
  /// region; regions must have positive size and fit the root layout.
  Status Validate() const;
};

/// Parses a SMIL document (subset: head/layout/root-layout/region,
/// body/seq/par and the media object elements with begin/dur/src/region).
Result<Presentation> ParseSmil(const xml::Document& doc);

/// Convenience: parse from text.
Result<Presentation> ParseSmil(std::string_view text);

}  // namespace smil
}  // namespace discsec

#endif  // DISCSEC_SMIL_SMIL_H_
