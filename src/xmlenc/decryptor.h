#ifndef DISCSEC_XMLENC_DECRYPTOR_H_
#define DISCSEC_XMLENC_DECRYPTOR_H_

#include <map>
#include <optional>
#include <string>

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/rsa.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "xml/dom.h"
#include "xmldsig/transforms.h"

namespace discsec {
namespace xmlenc {

/// The player's key store: named symmetric keys (content keys and KEKs) and
/// an optional RSA decryption key — the key material a disc player is
/// provisioned with (§3.1 Key Management).
class KeyRing {
 public:
  /// Registers a symmetric key reachable by <ds:KeyName>.
  void AddKey(const std::string& name, Bytes key) {
    keys_[name] = std::move(key);
  }
  /// Sets the device RSA key used for rsa-1_5 EncryptedKey payloads.
  void SetRsaKey(crypto::RsaPrivateKey key) { rsa_key_ = std::move(key); }

  Result<Bytes> FindKey(const std::string& name) const;
  const std::optional<crypto::RsaPrivateKey>& rsa_key() const {
    return rsa_key_;
  }
  bool HasKey(const std::string& name) const { return keys_.count(name) > 0; }

 private:
  std::map<std::string, Bytes> keys_;
  std::optional<crypto::RsaPrivateKey> rsa_key_;
};

/// Decrypts XML-Enc structures: the Decryptor component of the paper's
/// Fig. 11 software architecture.
class Decryptor {
 public:
  explicit Decryptor(KeyRing key_ring) : key_ring_(std::move(key_ring)) {}

  const KeyRing& key_ring() const { return key_ring_; }

  /// Limits applied when parsing decrypted plaintext back into the document
  /// — decrypted content is attacker-reachable input and gets the same
  /// input-bomb caps as the top-level parse.
  void set_parse_options(const xml::ParseOptions& options) {
    parse_options_ = options;
  }
  const xml::ParseOptions& parse_options() const { return parse_options_; }

  /// Observability (DESIGN.md §10): "xmlenc.decrypt" spans (one per
  /// EncryptedData, attributes: algorithm, bytes) and the
  /// "xmlenc.decryptions" counter. Null (the default) costs nothing.
  void set_observability(obs::Tracer* tracer, obs::MetricsRegistry* metrics) {
    tracer_ = tracer;
    metrics_ = metrics;
  }

  /// Decrypts a standalone EncryptedData element to raw octets.
  Result<Bytes> DecryptData(const xml::Element& encrypted_data) const;

  /// Replaces an in-document EncryptedData (Type Element/Content) with the
  /// decrypted nodes. For Type=Element the single decrypted element takes
  /// the EncryptedData's place; for Type=Content the decrypted nodes become
  /// children of the EncryptedData's parent at its position.
  Status DecryptInPlace(xml::Document* doc,
                        xml::Element* encrypted_data) const;

  /// Decrypts every EncryptedData under `apex` (or the whole document when
  /// apex is null) whose Id is not in `except_ids`. Nested encryption is
  /// handled by iterating until no further decryptable elements remain.
  Status DecryptAll(xml::Document* doc, xml::Element* apex,
                    const std::vector<std::string>& except_ids) const;

  /// Adapts this decryptor to the XML-DSig Decryption Transform hook.
  xmldsig::DecryptHook MakeHook() const;

 private:
  Result<Bytes> ResolveContentKey(const xml::Element& encrypted_data,
                                  size_t key_size) const;

  KeyRing key_ring_;
  xml::ParseOptions parse_options_;
  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
};

/// True when `e` is an xenc:EncryptedData element.
bool IsEncryptedData(const xml::Element& e);

}  // namespace xmlenc
}  // namespace discsec

#endif  // DISCSEC_XMLENC_DECRYPTOR_H_
