#ifndef DISCSEC_XMLENC_CONSTANTS_H_
#define DISCSEC_XMLENC_CONSTANTS_H_

namespace discsec {
namespace xmlenc {

/// The XML-Enc namespace and conventional prefix.
inline constexpr char kXencNamespace[] = "http://www.w3.org/2001/04/xmlenc#";
inline constexpr char kXencPrefix[] = "xenc";

/// EncryptedData Type URIs: what the ciphertext replaces.
inline constexpr char kTypeElement[] =
    "http://www.w3.org/2001/04/xmlenc#Element";
inline constexpr char kTypeContent[] =
    "http://www.w3.org/2001/04/xmlenc#Content";

}  // namespace xmlenc
}  // namespace discsec

#endif  // DISCSEC_XMLENC_CONSTANTS_H_
