#ifndef DISCSEC_XMLENC_ENCRYPTOR_H_
#define DISCSEC_XMLENC_ENCRYPTOR_H_

#include <memory>
#include <string>

#include "common/bytes.h"
#include "common/random.h"
#include "common/result.h"
#include "crypto/algorithms.h"
#include "crypto/rsa.h"
#include "xml/dom.h"

namespace discsec {
namespace xmlenc {

/// How the content-encryption key (CEK) travels to the recipient.
enum class KeyMode {
  /// No EncryptedKey: the recipient already holds the CEK and finds it by
  /// <ds:KeyName> (the disc-player model: a provisioned content key).
  kDirectReference,
  /// CEK wrapped with the recipient's RSA public key (xmlenc rsa-1_5).
  kRsaTransport,
  /// CEK wrapped with a shared key-encryption key (kw-aes128/kw-aes256).
  kAesKeyWrap,
};

/// Key material and algorithm choices for an Encryptor.
struct EncryptionSpec {
  /// Content-encryption algorithm (aes128-cbc default, per 2005 practice).
  std::string content_algorithm = crypto::kAlgAes128Cbc;
  /// Explicit CEK; generated fresh per Encryptor when empty.
  Bytes content_key;
  KeyMode key_mode = KeyMode::kDirectReference;
  /// KeyName emitted so the recipient can locate the CEK (direct mode) or
  /// the KEK / private key (wrap/transport modes).
  std::string key_name;
  /// Recipient public key for kRsaTransport.
  crypto::RsaPublicKey recipient_key;
  /// Shared KEK for kAesKeyWrap.
  Bytes kek;
  std::string wrap_algorithm = crypto::kAlgKwAes128;
};

/// Produces XML-Enc <xenc:EncryptedData> structures — the paper's §6
/// scenarios: encrypting a non-markup Track target (arbitrary octets,
/// embedded or detached) and encrypting a Manifest target (an XML element
/// replaced in place by its EncryptedData).
class Encryptor {
 public:
  /// Creates an Encryptor; generates a CEK when the spec has none.
  static Result<Encryptor> Create(EncryptionSpec spec, Rng* rng);

  /// The CEK in use (tests and key-provisioning flows read this).
  const Bytes& content_key() const { return spec_.content_key; }

  /// Encrypts arbitrary octets into a standalone <xenc:EncryptedData>
  /// (Type absent, optional MimeType) — the Track-target scenario (Fig. 7).
  Result<std::unique_ptr<xml::Element>> EncryptData(
      const Bytes& data, const std::string& mime_type = {},
      const std::string& id = {});

  /// Replaces `target` (inside `doc`) with an EncryptedData of
  /// Type=Element — the Manifest-target scenario (Fig. 8). Returns the new
  /// EncryptedData element.
  Result<xml::Element*> EncryptElement(xml::Document* doc,
                                       xml::Element* target,
                                       const std::string& id = {});

  /// Encrypts only the children of `target` (Type=Content), keeping the
  /// element shell visible — the paper's partial-encryption performance
  /// pattern (e.g. scores inside a visible wrapper).
  Result<xml::Element*> EncryptContent(xml::Document* doc,
                                       xml::Element* target,
                                       const std::string& id = {});

 private:
  Encryptor(EncryptionSpec spec, Rng* rng) : spec_(std::move(spec)),
                                             rng_(rng) {}

  Result<std::unique_ptr<xml::Element>> BuildEncryptedData(
      const Bytes& plaintext, const std::string& type,
      const std::string& mime_type, const std::string& id);

  EncryptionSpec spec_;
  Rng* rng_;
};

}  // namespace xmlenc
}  // namespace discsec

#endif  // DISCSEC_XMLENC_ENCRYPTOR_H_
