#include "xmlenc/decryptor.h"

#include <algorithm>

#include "common/base64.h"
#include "crypto/aes.h"
#include "crypto/algorithms.h"
#include "xml/parser.h"
#include "xmlenc/constants.h"

namespace discsec {
namespace xmlenc {

namespace {

Result<size_t> KeySizeForAlgorithm(const std::string& algorithm) {
  if (algorithm == crypto::kAlgAes128Cbc) return size_t{16};
  if (algorithm == crypto::kAlgAes192Cbc) return size_t{24};
  if (algorithm == crypto::kAlgAes256Cbc) return size_t{32};
  return Status::Unsupported("content encryption algorithm: " + algorithm);
}

Result<Bytes> CipherValueOf(const xml::Element& container) {
  const xml::Element* cipher_data =
      container.FirstChildElementByLocalName("CipherData");
  if (cipher_data == nullptr) {
    return Status::ParseError("missing CipherData");
  }
  const xml::Element* cipher_value =
      cipher_data->FirstChildElementByLocalName("CipherValue");
  if (cipher_value == nullptr) {
    return Status::ParseError("missing CipherValue");
  }
  return Base64Decode(cipher_value->TextContent());
}

}  // namespace

bool IsEncryptedData(const xml::Element& e) {
  return e.LocalName() == "EncryptedData" &&
         e.NamespaceUri() == kXencNamespace;
}

Result<Bytes> KeyRing::FindKey(const std::string& name) const {
  auto it = keys_.find(name);
  if (it == keys_.end()) {
    return Status::NotFound("key '" + name + "' not provisioned");
  }
  return it->second;
}

Result<Bytes> Decryptor::ResolveContentKey(const xml::Element& encrypted_data,
                                           size_t key_size) const {
  const xml::Element* key_info =
      encrypted_data.FirstChildElementByLocalName("KeyInfo");
  if (key_info == nullptr) {
    return Status::CryptoError("EncryptedData has no KeyInfo");
  }
  // EncryptedKey takes precedence: unwrap the CEK.
  const xml::Element* enc_key =
      key_info->FirstChildElementByLocalName("EncryptedKey");
  if (enc_key != nullptr) {
    const xml::Element* method =
        enc_key->FirstChildElementByLocalName("EncryptionMethod");
    if (method == nullptr || method->GetAttribute("Algorithm") == nullptr) {
      return Status::ParseError("EncryptedKey missing EncryptionMethod");
    }
    const std::string& alg = *method->GetAttribute("Algorithm");
    DISCSEC_ASSIGN_OR_RETURN(Bytes wrapped, CipherValueOf(*enc_key));
    if (alg == crypto::kAlgRsa15) {
      if (!key_ring_.rsa_key().has_value()) {
        return Status::CryptoError("no device RSA key for rsa-1_5");
      }
      DISCSEC_ASSIGN_OR_RETURN(
          Bytes cek, crypto::RsaDecrypt(*key_ring_.rsa_key(), wrapped));
      if (cek.size() != key_size) {
        return Status::CryptoError("unwrapped CEK has wrong size");
      }
      return cek;
    }
    if (alg == crypto::kAlgKwAes128 || alg == crypto::kAlgKwAes256) {
      const xml::Element* inner =
          enc_key->FirstChildElementByLocalName("KeyInfo");
      if (inner == nullptr) {
        return Status::CryptoError("EncryptedKey has no KeyInfo naming a KEK");
      }
      const xml::Element* name_elem =
          inner->FirstChildElementByLocalName("KeyName");
      if (name_elem == nullptr) {
        return Status::CryptoError("EncryptedKey KeyInfo has no KeyName");
      }
      DISCSEC_ASSIGN_OR_RETURN(Bytes kek,
                               key_ring_.FindKey(name_elem->TextContent()));
      DISCSEC_ASSIGN_OR_RETURN(Bytes cek, crypto::AesKeyUnwrap(kek, wrapped));
      if (cek.size() != key_size) {
        return Status::CryptoError("unwrapped CEK has wrong size");
      }
      return cek;
    }
    return Status::Unsupported("EncryptedKey algorithm: " + alg);
  }
  // Direct reference by KeyName.
  const xml::Element* name_elem =
      key_info->FirstChildElementByLocalName("KeyName");
  if (name_elem == nullptr) {
    return Status::CryptoError("KeyInfo carries neither EncryptedKey nor "
                               "KeyName");
  }
  DISCSEC_ASSIGN_OR_RETURN(Bytes cek,
                           key_ring_.FindKey(name_elem->TextContent()));
  if (cek.size() != key_size) {
    return Status::CryptoError("provisioned key has wrong size for algorithm");
  }
  return cek;
}

Result<Bytes> Decryptor::DecryptData(
    const xml::Element& encrypted_data) const {
  obs::ScopedSpan span(tracer_, "xmlenc.decrypt");
  if (metrics_ != nullptr) {
    metrics_->GetCounter("xmlenc.decryptions")->Add();
  }
  if (!IsEncryptedData(encrypted_data)) {
    return Status::InvalidArgument("element is not xenc:EncryptedData");
  }
  const xml::Element* method =
      encrypted_data.FirstChildElementByLocalName("EncryptionMethod");
  if (method == nullptr || method->GetAttribute("Algorithm") == nullptr) {
    return Status::ParseError("EncryptedData missing EncryptionMethod");
  }
  span.SetAttr("algorithm", *method->GetAttribute("Algorithm"));
  DISCSEC_ASSIGN_OR_RETURN(size_t key_size,
                           KeySizeForAlgorithm(*method->GetAttribute(
                               "Algorithm")));
  DISCSEC_ASSIGN_OR_RETURN(Bytes cek,
                           ResolveContentKey(encrypted_data, key_size));
  DISCSEC_ASSIGN_OR_RETURN(Bytes ciphertext, CipherValueOf(encrypted_data));
  Result<Bytes> plaintext = crypto::AesCbcDecrypt(cek, ciphertext);
  if (plaintext.ok()) {
    span.SetAttr("bytes", static_cast<uint64_t>(plaintext.value().size()));
  }
  return plaintext;
}

Status Decryptor::DecryptInPlace(xml::Document* doc,
                                 xml::Element* encrypted_data) const {
  if (doc == nullptr || encrypted_data == nullptr) {
    return Status::InvalidArgument("DecryptInPlace needs doc and element");
  }
  const std::string* type = encrypted_data->GetAttribute("Type");
  if (type == nullptr) {
    return Status::InvalidArgument(
        "EncryptedData without Type cannot be restored in place");
  }
  DISCSEC_ASSIGN_OR_RETURN(Bytes plaintext, DecryptData(*encrypted_data));
  xml::Element* parent = encrypted_data->parent();
  if (parent == nullptr) {
    return Status::InvalidArgument("EncryptedData is the document root");
  }
  // Parse the fragment inside a wrapper so content (multiple nodes, bare
  // text) parses as well as a single element.
  std::string wrapped = "<w>" + ToString(plaintext) + "</w>";
  auto fragment = xml::Parse(wrapped, parse_options_);
  if (!fragment.ok()) {
    return Status::Corruption("decrypted plaintext is not well-formed XML: " +
                              fragment.status().message());
  }
  xml::Element* w = fragment->root();
  size_t position = parent->IndexOfChild(encrypted_data);
  if (*type == kTypeElement) {
    xml::Element* decrypted = w->FirstChildElement();
    if (decrypted == nullptr || w->ChildCount() != 1) {
      return Status::Corruption("Type=Element plaintext is not one element");
    }
    parent->ReplaceChild(encrypted_data, w->RemoveChild(decrypted));
    return Status::OK();
  }
  if (*type == kTypeContent) {
    parent->RemoveChildAt(position);
    size_t insert_at = position;
    while (w->ChildCount() > 0) {
      parent->InsertChild(insert_at++, w->RemoveChildAt(0));
    }
    return Status::OK();
  }
  return Status::Unsupported("EncryptedData Type: " + *type);
}

Status Decryptor::DecryptAll(xml::Document* doc, xml::Element* apex,
                             const std::vector<std::string>& except_ids)
    const {
  if (doc == nullptr) return Status::InvalidArgument("DecryptAll needs a doc");
  xml::Element* scope = apex != nullptr ? apex : doc->root();
  if (scope == nullptr) return Status::OK();
  // Iterate until fixpoint (decryption can reveal nested EncryptedData).
  // The bound caps total decryptions, defending the player against
  // decompression-bomb-style nesting.
  const int kMaxDecryptions = 4096;
  for (int round = 0; round < kMaxDecryptions; ++round) {
    std::vector<xml::Element*> targets;
    scope->ForEachElement([&](xml::Element* e) {
      if (!IsEncryptedData(*e)) return;
      // Only in-place types participate; standalone EncryptedData (no Type)
      // is data, not document structure.
      if (e->GetAttribute("Type") == nullptr) return;
      const std::string* id = e->GetAttribute("Id");
      if (id != nullptr &&
          std::find(except_ids.begin(), except_ids.end(), *id) !=
              except_ids.end()) {
        return;
      }
      targets.push_back(e);
    });
    if (targets.empty()) return Status::OK();
    // Process one target per round: replacing nodes invalidates the other
    // collected pointers when nested.
    DISCSEC_RETURN_IF_ERROR(DecryptInPlace(doc, targets.front()));
  }
  return Status::ResourceExhausted("too many nested EncryptedData layers");
}

xmldsig::DecryptHook Decryptor::MakeHook() const {
  return [this](xml::Document* working, xml::Element* apex,
                const std::vector<std::string>& except_ids) {
    return DecryptAll(working, apex, except_ids);
  };
}

}  // namespace xmlenc
}  // namespace discsec
