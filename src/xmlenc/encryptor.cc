#include "xmlenc/encryptor.h"

#include "common/base64.h"
#include "common/byte_sink.h"
#include "crypto/aes.h"
#include "xml/c14n.h"
#include "xml/serializer.h"
#include "xmldsig/constants.h"
#include "xmlenc/constants.h"

namespace discsec {
namespace xmlenc {

namespace {

std::string Xenc(const std::string& local) {
  return std::string(kXencPrefix) + ":" + local;
}

Result<size_t> KeySizeForAlgorithm(const std::string& algorithm) {
  if (algorithm == crypto::kAlgAes128Cbc) return size_t{16};
  if (algorithm == crypto::kAlgAes192Cbc) return size_t{24};
  if (algorithm == crypto::kAlgAes256Cbc) return size_t{32};
  return Status::Unsupported("content encryption algorithm: " + algorithm);
}

}  // namespace

Result<Encryptor> Encryptor::Create(EncryptionSpec spec, Rng* rng) {
  DISCSEC_ASSIGN_OR_RETURN(size_t key_size,
                           KeySizeForAlgorithm(spec.content_algorithm));
  if (spec.content_key.empty()) {
    spec.content_key = rng->NextBytes(key_size);
  } else if (spec.content_key.size() != key_size) {
    return Status::InvalidArgument("content key size does not match algorithm");
  }
  if (spec.key_mode == KeyMode::kAesKeyWrap) {
    if (spec.kek.size() != 16 && spec.kek.size() != 32) {
      return Status::InvalidArgument("KEK must be 16 or 32 bytes");
    }
    if (spec.wrap_algorithm != crypto::kAlgKwAes128 &&
        spec.wrap_algorithm != crypto::kAlgKwAes256) {
      return Status::Unsupported("key wrap algorithm: " + spec.wrap_algorithm);
    }
  }
  if (spec.key_mode == KeyMode::kRsaTransport &&
      spec.recipient_key.modulus.IsZero()) {
    return Status::InvalidArgument("RSA transport needs a recipient key");
  }
  return Encryptor(std::move(spec), rng);
}

Result<std::unique_ptr<xml::Element>> Encryptor::BuildEncryptedData(
    const Bytes& plaintext, const std::string& type,
    const std::string& mime_type, const std::string& id) {
  auto enc = std::make_unique<xml::Element>(Xenc("EncryptedData"));
  enc->SetAttribute("xmlns:" + std::string(kXencPrefix), kXencNamespace);
  if (!id.empty()) enc->SetAttribute("Id", id);
  if (!type.empty()) enc->SetAttribute("Type", type);
  if (!mime_type.empty()) enc->SetAttribute("MimeType", mime_type);
  enc->AppendElement(Xenc("EncryptionMethod"))
      ->SetAttribute("Algorithm", spec_.content_algorithm);

  // KeyInfo: KeyName and/or EncryptedKey.
  xml::Element* key_info = enc->AppendElement("ds:KeyInfo");
  key_info->SetAttribute("xmlns:ds", xmldsig::kDsNamespace);
  switch (spec_.key_mode) {
    case KeyMode::kDirectReference: {
      if (spec_.key_name.empty()) {
        return Status::InvalidArgument(
            "direct key reference requires a key name");
      }
      key_info->AppendElement("ds:KeyName")->SetTextContent(spec_.key_name);
      break;
    }
    case KeyMode::kRsaTransport:
    case KeyMode::kAesKeyWrap: {
      xml::Element* enc_key = key_info->AppendElement(Xenc("EncryptedKey"));
      std::string wrap_alg = spec_.key_mode == KeyMode::kRsaTransport
                                 ? crypto::kAlgRsa15
                                 : spec_.wrap_algorithm;
      enc_key->AppendElement(Xenc("EncryptionMethod"))
          ->SetAttribute("Algorithm", wrap_alg);
      if (!spec_.key_name.empty()) {
        xml::Element* inner = enc_key->AppendElement("ds:KeyInfo");
        inner->AppendElement("ds:KeyName")->SetTextContent(spec_.key_name);
      }
      Bytes wrapped;
      if (spec_.key_mode == KeyMode::kRsaTransport) {
        DISCSEC_ASSIGN_OR_RETURN(
            wrapped, crypto::RsaEncrypt(spec_.recipient_key,
                                        spec_.content_key, rng_));
      } else {
        DISCSEC_ASSIGN_OR_RETURN(
            wrapped, crypto::AesKeyWrap(spec_.kek, spec_.content_key));
      }
      xml::Element* cipher_data = enc_key->AppendElement(Xenc("CipherData"));
      cipher_data->AppendElement(Xenc("CipherValue"))
          ->SetTextContent(Base64Encode(wrapped));
      break;
    }
  }

  Bytes iv = rng_->NextBytes(crypto::Aes::kBlockSize);
  DISCSEC_ASSIGN_OR_RETURN(
      Bytes ciphertext,
      crypto::AesCbcEncrypt(spec_.content_key, iv, plaintext));
  xml::Element* cipher_data = enc->AppendElement(Xenc("CipherData"));
  cipher_data->AppendElement(Xenc("CipherValue"))
      ->SetTextContent(Base64Encode(ciphertext));
  return enc;
}

Result<std::unique_ptr<xml::Element>> Encryptor::EncryptData(
    const Bytes& data, const std::string& mime_type, const std::string& id) {
  return BuildEncryptedData(data, /*type=*/"", mime_type, id);
}

Result<xml::Element*> Encryptor::EncryptElement(xml::Document* doc,
                                                xml::Element* target,
                                                const std::string& id) {
  if (doc == nullptr || target == nullptr || target->parent() == nullptr) {
    return Status::InvalidArgument(
        "EncryptElement needs a non-root target inside a document");
  }
  // Canonical serialization carries inherited namespace declarations into
  // the ciphertext, so the decrypted fragment parses standalone. Serialized
  // straight into the cipher-input buffer — no string intermediate.
  Bytes plaintext;
  BytesSink plaintext_sink(&plaintext);
  xml::CanonicalizeElement(*target, xml::C14NOptions(), &plaintext_sink);
  DISCSEC_ASSIGN_OR_RETURN(
      auto enc, BuildEncryptedData(plaintext, kTypeElement, "", id));
  xml::Element* parent = target->parent();
  xml::Element* raw = enc.get();
  parent->ReplaceChild(target, std::move(enc));
  return raw;
}

Result<xml::Element*> Encryptor::EncryptContent(xml::Document* doc,
                                                xml::Element* target,
                                                const std::string& id) {
  if (doc == nullptr || target == nullptr) {
    return Status::InvalidArgument("EncryptContent needs a target");
  }
  Bytes serialized;
  BytesSink sink(&serialized);
  for (const auto& child : target->children()) {
    switch (child->kind()) {
      case xml::NodeKind::kElement:
        xml::CanonicalizeElement(*static_cast<const xml::Element*>(child.get()),
                                 xml::C14NOptions(), &sink);
        break;
      case xml::NodeKind::kText:
        xml::EscapeText(static_cast<const xml::Text*>(child.get())->data(),
                        &sink);
        break;
      case xml::NodeKind::kComment:
        sink.Append("<!--");
        sink.Append(static_cast<const xml::Comment*>(child.get())->data());
        sink.Append("-->");
        break;
      case xml::NodeKind::kProcessingInstruction: {
        const auto* pi = static_cast<const xml::Pi*>(child.get());
        sink.Append("<?");
        sink.Append(pi->target());
        if (!pi->data().empty()) {
          sink.Append(' ');
          sink.Append(pi->data());
        }
        sink.Append("?>");
        break;
      }
    }
  }
  DISCSEC_ASSIGN_OR_RETURN(
      auto enc, BuildEncryptedData(serialized, kTypeContent, "", id));
  target->ClearChildren();
  return static_cast<xml::Element*>(target->AppendChild(std::move(enc)));
}

}  // namespace xmlenc
}  // namespace discsec
