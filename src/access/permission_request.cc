#include "access/permission_request.h"

#include "xml/parser.h"
#include "xml/serializer.h"

namespace discsec {
namespace access {

bool PermissionRequest::Requests(const std::string& resource) const {
  for (const Permission& p : permissions) {
    if (p.resource == resource) return true;
  }
  return false;
}

std::unique_ptr<xml::Element> PermissionRequest::ToXml() const {
  auto root = std::make_unique<xml::Element>("permissionrequestfile");
  root->SetAttribute("appid", app_id);
  root->SetAttribute("orgid", org_id);
  for (const Permission& p : permissions) {
    xml::Element* e = root->AppendElement(p.resource);
    for (const auto& [name, value] : p.attributes) {
      e->SetAttribute(name, value);
    }
  }
  return root;
}

std::string PermissionRequest::ToXmlString() const {
  xml::Document doc = xml::Document::WithRoot(ToXml());
  xml::SerializeOptions options;
  options.xml_declaration = false;
  return xml::Serialize(doc, options);
}

Result<PermissionRequest> PermissionRequest::FromXml(
    const xml::Element& element) {
  if (element.LocalName() != "permissionrequestfile") {
    return Status::ParseError("expected <permissionrequestfile>");
  }
  PermissionRequest out;
  const std::string* app_id = element.GetAttribute("appid");
  const std::string* org_id = element.GetAttribute("orgid");
  if (app_id == nullptr || org_id == nullptr) {
    return Status::ParseError("permissionrequestfile needs appid and orgid");
  }
  out.app_id = *app_id;
  out.org_id = *org_id;
  for (const auto& child : element.children()) {
    if (!child->IsElement()) continue;
    const auto* e = static_cast<const xml::Element*>(child.get());
    Permission p;
    p.resource = std::string(e->LocalName());
    for (const auto& attr : e->attributes()) {
      if (!attr.IsNamespaceDecl()) p.attributes[attr.name] = attr.value;
    }
    out.permissions.push_back(std::move(p));
  }
  return out;
}

Result<PermissionRequest> PermissionRequest::FromXmlString(
    std::string_view text) {
  DISCSEC_ASSIGN_OR_RETURN(xml::Document doc, xml::Parse(text));
  return FromXml(*doc.root());
}

}  // namespace access
}  // namespace discsec
