#ifndef DISCSEC_ACCESS_POLICY_H_
#define DISCSEC_ACCESS_POLICY_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "xml/dom.h"

namespace discsec {
namespace access {

/// Access decision, per XACML.
enum class Decision {
  kPermit,
  kDeny,
  kNotApplicable,
  kIndeterminate,
};

const char* DecisionName(Decision d);

/// An authorization request evaluated by the PDP: who (the verified signer
/// subject / organisation), what resource, which action, plus free-form
/// attributes (path, host, ...).
struct RequestContext {
  std::string subject;
  std::string resource;
  std::string action;
  std::map<std::string, std::string> attributes;
};

/// A target constrains applicability. Empty lists match anything; values in
/// one list are OR-ed; a trailing '*' in a value makes it a prefix match
/// ("CN=Acme*" matches any Acme subject).
struct Target {
  std::vector<std::string> subjects;
  std::vector<std::string> resources;
  std::vector<std::string> actions;

  bool Matches(const RequestContext& request) const;
};

/// One attribute condition on a rule; all conditions must hold.
struct Condition {
  std::string attribute;
  enum class Op { kEquals, kPrefix } op = Op::kEquals;
  std::string value;

  bool Holds(const RequestContext& request) const;
};

/// A rule: if its target matches and conditions hold, it yields its effect.
struct Rule {
  std::string id;
  Decision effect = Decision::kDeny;  ///< kPermit or kDeny
  Target target;
  std::vector<Condition> conditions;
};

/// XACML-lite rule combining algorithms.
enum class CombiningAlg {
  kDenyOverrides,
  kPermitOverrides,
  kFirstApplicable,
};

/// A policy: target + rules + combining algorithm.
struct Policy {
  std::string id;
  CombiningAlg combining = CombiningAlg::kDenyOverrides;
  Target target;
  std::vector<Rule> rules;

  Decision Evaluate(const RequestContext& request) const;

  std::unique_ptr<xml::Element> ToXml() const;
  static Result<Policy> FromXml(const xml::Element& element);
};

/// The Policy Decision Point: an ordered set of policies combined with a
/// policy-level algorithm (deny-overrides). This is the OASIS XACML role
/// the paper's §4 assigns to the player platform.
class PolicyDecisionPoint {
 public:
  void AddPolicy(Policy policy) { policies_.push_back(std::move(policy)); }
  size_t PolicyCount() const { return policies_.size(); }

  /// deny-overrides across policies: any Deny wins; else any Permit; else
  /// NotApplicable.
  Decision Evaluate(const RequestContext& request) const;

  /// Loads policies from a <PolicySet> document.
  Status LoadPolicySet(std::string_view xml_text);

  /// Serializes all policies as a <PolicySet>.
  std::string ToXmlString() const;

 private:
  std::vector<Policy> policies_;
};

}  // namespace access
}  // namespace discsec

#endif  // DISCSEC_ACCESS_POLICY_H_
