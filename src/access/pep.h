#ifndef DISCSEC_ACCESS_PEP_H_
#define DISCSEC_ACCESS_PEP_H_

#include <map>
#include <string>

#include "access/permission_request.h"
#include "access/policy.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace discsec {
namespace access {

/// The Policy Enforcement Point — the player component that combines an
/// application's permission *request* with the platform's *policy*
/// (MHP model, paper §4: "Based on the adopted policy, the platform can
/// allow or reject the rights to the resources").
///
/// A grant requires BOTH: the application asked for the resource in its
/// permission request file, AND the PDP permits it for this subject.
/// Resources never requested are denied outright (least privilege).
class PolicyEnforcementPoint {
 public:
  PolicyEnforcementPoint(const PolicyDecisionPoint* pdp,
                         PermissionRequest request, std::string subject)
      : pdp_(pdp), request_(std::move(request)), subject_(std::move(subject)) {}

  /// Checks whether the application may perform `action` on `resource`
  /// with the given attributes. Returns OK or PermissionDenied.
  Status Check(const std::string& resource, const std::string& action,
               const std::map<std::string, std::string>& attributes = {})
      const;

  /// Evaluates every permission in the request up front, returning the set
  /// of granted resource names — the launch-time grant table the engine
  /// stores. The action checked is the `access` attribute when present
  /// ("read", "write", "readwrite" expands to both), else "use".
  std::map<std::string, bool> EvaluateAll() const;

  const PermissionRequest& request() const { return request_; }
  const std::string& subject() const { return subject_; }

  /// Observability (DESIGN.md §10): "access.pep.check" spans (attributes:
  /// resource, action, decision) and "access.pep.evaluate_all" spans, plus
  /// "access.checks" / "access.denials" counters. Null = no-op.
  void set_observability(obs::Tracer* tracer, obs::MetricsRegistry* metrics) {
    tracer_ = tracer;
    metrics_ = metrics;
  }

 private:
  Status CheckImpl(const std::string& resource, const std::string& action,
                   const std::map<std::string, std::string>& attributes) const;

  const PolicyDecisionPoint* pdp_;
  PermissionRequest request_;
  std::string subject_;
  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace access
}  // namespace discsec

#endif  // DISCSEC_ACCESS_PEP_H_
