#include "access/pep.h"

namespace discsec {
namespace access {

Status PolicyEnforcementPoint::Check(
    const std::string& resource, const std::string& action,
    const std::map<std::string, std::string>& attributes) const {
  obs::ScopedSpan span(tracer_, "access.pep.check");
  span.SetAttr("resource", resource);
  span.SetAttr("action", action);
  if (metrics_ != nullptr) metrics_->GetCounter("access.checks")->Add();
  Status status = CheckImpl(resource, action, attributes);
  span.SetAttr("decision", status.ok() ? "permit" : "deny");
  if (!status.ok() && metrics_ != nullptr) {
    metrics_->GetCounter("access.denials")->Add();
  }
  return status;
}

Status PolicyEnforcementPoint::CheckImpl(
    const std::string& resource, const std::string& action,
    const std::map<std::string, std::string>& attributes) const {
  // Least privilege: the application must have requested the resource.
  const Permission* requested = nullptr;
  for (const Permission& p : request_.permissions) {
    if (p.resource == resource) {
      requested = &p;
      break;
    }
  }
  if (requested == nullptr) {
    return Status::PermissionDenied("application did not request resource '" +
                                    resource + "'");
  }
  // The request may narrow the action ("access" attribute).
  const std::string* access = requested->Attr("access");
  if (access != nullptr && *access != "readwrite" && *access != action &&
      !(action == "read" && *access == "readwrite") &&
      !(action == "write" && *access == "readwrite")) {
    return Status::PermissionDenied("application requested only '" + *access +
                                    "' access to '" + resource + "'");
  }

  RequestContext ctx;
  ctx.subject = subject_;
  ctx.resource = resource;
  ctx.action = action;
  ctx.attributes = attributes;
  // The request's own attributes provide defaults (e.g. the declared path).
  for (const auto& [name, value] : requested->attributes) {
    ctx.attributes.emplace(name, value);
  }
  Decision decision = pdp_->Evaluate(ctx);
  if (decision == Decision::kPermit) return Status::OK();
  return Status::PermissionDenied("policy " +
                                  std::string(DecisionName(decision)) +
                                  " for " + subject_ + " on " + resource +
                                  ":" + action);
}

std::map<std::string, bool> PolicyEnforcementPoint::EvaluateAll() const {
  obs::ScopedSpan span(tracer_, "access.pep.evaluate_all");
  span.SetAttr("permissions",
               static_cast<uint64_t>(request_.permissions.size()));
  std::map<std::string, bool> grants;
  for (const Permission& p : request_.permissions) {
    const std::string* access = p.Attr("access");
    bool granted;
    if (access != nullptr && *access == "readwrite") {
      granted = Check(p.resource, "read").ok() &&
                Check(p.resource, "write").ok();
    } else if (access != nullptr) {
      granted = Check(p.resource, *access).ok();
    } else {
      granted = Check(p.resource, "use").ok();
    }
    grants[p.resource] = granted;
  }
  return grants;
}

}  // namespace access
}  // namespace discsec
