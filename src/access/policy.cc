#include "access/policy.h"

#include "common/strings.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace discsec {
namespace access {

const char* DecisionName(Decision d) {
  switch (d) {
    case Decision::kPermit:
      return "Permit";
    case Decision::kDeny:
      return "Deny";
    case Decision::kNotApplicable:
      return "NotApplicable";
    case Decision::kIndeterminate:
      return "Indeterminate";
  }
  return "Indeterminate";
}

namespace {

bool ValueMatches(const std::string& pattern, const std::string& actual) {
  if (!pattern.empty() && pattern.back() == '*') {
    return StartsWith(actual, std::string_view(pattern).substr(
                                  0, pattern.size() - 1));
  }
  return pattern == actual;
}

bool ListMatches(const std::vector<std::string>& patterns,
                 const std::string& actual) {
  if (patterns.empty()) return true;
  for (const std::string& p : patterns) {
    if (ValueMatches(p, actual)) return true;
  }
  return false;
}

}  // namespace

bool Target::Matches(const RequestContext& request) const {
  return ListMatches(subjects, request.subject) &&
         ListMatches(resources, request.resource) &&
         ListMatches(actions, request.action);
}

bool Condition::Holds(const RequestContext& request) const {
  auto it = request.attributes.find(attribute);
  if (it == request.attributes.end()) return false;
  switch (op) {
    case Op::kEquals:
      return it->second == value;
    case Op::kPrefix:
      return StartsWith(it->second, value);
  }
  return false;
}

Decision Policy::Evaluate(const RequestContext& request) const {
  if (!target.Matches(request)) return Decision::kNotApplicable;
  bool any_permit = false;
  bool any_deny = false;
  for (const Rule& rule : rules) {
    if (!rule.target.Matches(request)) continue;
    bool holds = true;
    for (const Condition& c : rule.conditions) {
      if (!c.Holds(request)) {
        holds = false;
        break;
      }
    }
    if (!holds) continue;
    if (combining == CombiningAlg::kFirstApplicable) return rule.effect;
    if (rule.effect == Decision::kPermit) any_permit = true;
    if (rule.effect == Decision::kDeny) any_deny = true;
  }
  switch (combining) {
    case CombiningAlg::kDenyOverrides:
      if (any_deny) return Decision::kDeny;
      if (any_permit) return Decision::kPermit;
      break;
    case CombiningAlg::kPermitOverrides:
      if (any_permit) return Decision::kPermit;
      if (any_deny) return Decision::kDeny;
      break;
    case CombiningAlg::kFirstApplicable:
      break;
  }
  return Decision::kNotApplicable;
}

namespace {

const char* CombiningName(CombiningAlg alg) {
  switch (alg) {
    case CombiningAlg::kDenyOverrides:
      return "deny-overrides";
    case CombiningAlg::kPermitOverrides:
      return "permit-overrides";
    case CombiningAlg::kFirstApplicable:
      return "first-applicable";
  }
  return "deny-overrides";
}

Result<CombiningAlg> ParseCombining(const std::string& name) {
  if (name == "deny-overrides") return CombiningAlg::kDenyOverrides;
  if (name == "permit-overrides") return CombiningAlg::kPermitOverrides;
  if (name == "first-applicable") return CombiningAlg::kFirstApplicable;
  return Status::ParseError("unknown combining algorithm: " + name);
}

void AppendTarget(xml::Element* parent, const Target& target) {
  xml::Element* t = parent->AppendElement("Target");
  auto add_list = [&](const char* group, const char* item,
                      const std::vector<std::string>& values) {
    if (values.empty()) return;
    xml::Element* g = t->AppendElement(group);
    for (const std::string& v : values) {
      g->AppendElement(item)->SetTextContent(v);
    }
  };
  add_list("Subjects", "Subject", target.subjects);
  add_list("Resources", "Resource", target.resources);
  add_list("Actions", "Action", target.actions);
}

Target ParseTarget(const xml::Element* t) {
  Target out;
  if (t == nullptr) return out;
  auto read_list = [&](const char* group, const char* item,
                       std::vector<std::string>* into) {
    const xml::Element* g = t->FirstChildElementByLocalName(group);
    if (g == nullptr) return;
    for (const xml::Element* e : g->ChildElements()) {
      if (e->LocalName() == item) into->push_back(e->TextContent());
    }
  };
  read_list("Subjects", "Subject", &out.subjects);
  read_list("Resources", "Resource", &out.resources);
  read_list("Actions", "Action", &out.actions);
  return out;
}

}  // namespace

std::unique_ptr<xml::Element> Policy::ToXml() const {
  auto p = std::make_unique<xml::Element>("Policy");
  p->SetAttribute("PolicyId", id);
  p->SetAttribute("RuleCombiningAlgId", CombiningName(combining));
  AppendTarget(p.get(), target);
  for (const Rule& rule : rules) {
    xml::Element* r = p->AppendElement("Rule");
    r->SetAttribute("RuleId", rule.id);
    r->SetAttribute("Effect",
                    rule.effect == Decision::kPermit ? "Permit" : "Deny");
    AppendTarget(r, rule.target);
    for (const Condition& c : rule.conditions) {
      xml::Element* cond = r->AppendElement("Condition");
      cond->SetAttribute("attribute", c.attribute);
      cond->SetAttribute("op",
                         c.op == Condition::Op::kEquals ? "equals" : "prefix");
      cond->SetAttribute("value", c.value);
    }
  }
  return p;
}

Result<Policy> Policy::FromXml(const xml::Element& element) {
  if (element.LocalName() != "Policy") {
    return Status::ParseError("expected <Policy>");
  }
  Policy out;
  const std::string* id = element.GetAttribute("PolicyId");
  out.id = id != nullptr ? *id : "";
  const std::string* comb = element.GetAttribute("RuleCombiningAlgId");
  if (comb != nullptr) {
    DISCSEC_ASSIGN_OR_RETURN(out.combining, ParseCombining(*comb));
  }
  out.target = ParseTarget(element.FirstChildElementByLocalName("Target"));
  for (const xml::Element* r : element.ChildElements()) {
    if (r->LocalName() != "Rule") continue;
    Rule rule;
    const std::string* rid = r->GetAttribute("RuleId");
    rule.id = rid != nullptr ? *rid : "";
    const std::string* effect = r->GetAttribute("Effect");
    if (effect == nullptr || (*effect != "Permit" && *effect != "Deny")) {
      return Status::ParseError("Rule needs Effect Permit|Deny");
    }
    rule.effect =
        *effect == "Permit" ? Decision::kPermit : Decision::kDeny;
    rule.target = ParseTarget(r->FirstChildElementByLocalName("Target"));
    for (const xml::Element* c : r->ChildElements()) {
      if (c->LocalName() != "Condition") continue;
      Condition cond;
      const std::string* attr = c->GetAttribute("attribute");
      const std::string* op = c->GetAttribute("op");
      const std::string* value = c->GetAttribute("value");
      if (attr == nullptr || value == nullptr) {
        return Status::ParseError("Condition needs attribute and value");
      }
      cond.attribute = *attr;
      cond.value = *value;
      if (op != nullptr && *op == "prefix") {
        cond.op = Condition::Op::kPrefix;
      } else if (op != nullptr && *op != "equals") {
        return Status::ParseError("Condition op must be equals|prefix");
      }
      rule.conditions.push_back(std::move(cond));
    }
    out.rules.push_back(std::move(rule));
  }
  return out;
}

Decision PolicyDecisionPoint::Evaluate(const RequestContext& request) const {
  bool any_permit = false;
  for (const Policy& policy : policies_) {
    Decision d = policy.Evaluate(request);
    if (d == Decision::kDeny) return Decision::kDeny;
    if (d == Decision::kIndeterminate) return Decision::kIndeterminate;
    if (d == Decision::kPermit) any_permit = true;
  }
  return any_permit ? Decision::kPermit : Decision::kNotApplicable;
}

Status PolicyDecisionPoint::LoadPolicySet(std::string_view xml_text) {
  DISCSEC_ASSIGN_OR_RETURN(xml::Document doc, xml::Parse(xml_text));
  if (doc.root()->LocalName() != "PolicySet") {
    return Status::ParseError("expected <PolicySet>");
  }
  for (const xml::Element* p : doc.root()->ChildElements()) {
    if (p->LocalName() != "Policy") continue;
    DISCSEC_ASSIGN_OR_RETURN(Policy policy, Policy::FromXml(*p));
    policies_.push_back(std::move(policy));
  }
  return Status::OK();
}

std::string PolicyDecisionPoint::ToXmlString() const {
  auto root = std::make_unique<xml::Element>("PolicySet");
  root->SetAttribute("PolicyCombiningAlgId", "deny-overrides");
  for (const Policy& p : policies_) {
    root->AppendChild(p.ToXml());
  }
  xml::Document doc = xml::Document::WithRoot(std::move(root));
  xml::SerializeOptions options;
  options.xml_declaration = false;
  return xml::Serialize(doc, options);
}

}  // namespace access
}  // namespace discsec
