#ifndef DISCSEC_ACCESS_PERMISSION_REQUEST_H_
#define DISCSEC_ACCESS_PERMISSION_REQUEST_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "xml/dom.h"

namespace discsec {
namespace access {

/// One requested permission: a resource category plus qualifying attributes.
/// Resource names used by the player:
///   "localstorage"  (attrs: path, access=read|write|readwrite, quota)
///   "network"       (attrs: host)
///   "graphics"      (attrs: plane)
///   "userpreferences" (attrs: read, write)
///   "file"          (attrs: path, access)
struct Permission {
  std::string resource;
  std::map<std::string, std::string> attributes;

  const std::string* Attr(const std::string& name) const {
    auto it = attributes.find(name);
    return it == attributes.end() ? nullptr : &it->second;
  }
};

/// An MHP-style XML "permission request file" (the paper's §4/§7): the
/// content author attaches it to the application to request player
/// resources; the platform grants or rejects each request per its policy.
struct PermissionRequest {
  std::string app_id;
  std::string org_id;
  std::vector<Permission> permissions;

  /// Whether the application requested `resource` at all (any attributes).
  bool Requests(const std::string& resource) const;

  /// Serializes to <permissionrequestfile>.
  std::unique_ptr<xml::Element> ToXml() const;
  std::string ToXmlString() const;

  /// Parses a <permissionrequestfile> element or document.
  static Result<PermissionRequest> FromXml(const xml::Element& element);
  static Result<PermissionRequest> FromXmlString(std::string_view text);
};

}  // namespace access
}  // namespace discsec

#endif  // DISCSEC_ACCESS_PERMISSION_REQUEST_H_
