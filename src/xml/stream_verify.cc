#include "xml/stream_verify.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cctype>

#include "obs/trace.h"
#include "xml/serializer.h"

namespace discsec {
namespace xml {

namespace {

std::atomic<size_t> g_streamed_c14n_count{0};

// Character classes — identical to the DOM parser's (which evaluates
// isalpha/isdigit under the "C" locale), precomputed so the name scan stays
// branch-cheap.
constexpr std::array<bool, 256> kNameStartChar = [] {
  std::array<bool, 256> t{};
  for (int c = 'A'; c <= 'Z'; ++c) t[c] = true;
  for (int c = 'a'; c <= 'z'; ++c) t[c] = true;
  t[static_cast<unsigned char>('_')] = true;
  t[static_cast<unsigned char>(':')] = true;
  for (int c = 0x80; c < 256; ++c) t[c] = true;
  return t;
}();

constexpr std::array<bool, 256> kNameChar = [] {
  std::array<bool, 256> t = kNameStartChar;
  for (int c = '0'; c <= '9'; ++c) t[c] = true;
  t[static_cast<unsigned char>('-')] = true;
  t[static_cast<unsigned char>('.')] = true;
  return t;
}();

bool IsNameStartChar(char c) {
  return kNameStartChar[static_cast<unsigned char>(c)];
}

bool IsNameChar(char c) { return kNameChar[static_cast<unsigned char>(c)]; }

void AppendUtf8(std::string* out, uint32_t cp) {
  if (cp < 0x80) {
    out->push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out->push_back(static_cast<char>(0xc0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
  } else if (cp < 0x10000) {
    out->push_back(static_cast<char>(0xe0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
  } else {
    out->push_back(static_cast<char>(0xf0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3f)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// StreamLexer
//
// Every limit check, error string and error position below mirrors
// src/xml/parser.cc — the differential harness pins this parity, and the
// security argument in DESIGN.md §14 depends on it: the fast path must
// reject exactly what the DOM path rejects.
// ---------------------------------------------------------------------------

StreamLexer::StreamLexer(std::string_view input, const ParseOptions& options)
    : input_(input), options_(options) {}

bool StreamLexer::Lookahead(std::string_view s) const {
  return input_.compare(pos_, s.size(), s) == 0;
}

bool StreamLexer::Consume(std::string_view s) {
  if (Lookahead(s)) {
    pos_ += s.size();
    return true;
  }
  return false;
}

Status StreamLexer::Error(const std::string& what) const {
  size_t line = 1;
  size_t col = 1;
  for (size_t i = 0; i < pos_ && i < input_.size(); ++i) {
    if (input_[i] == '\n') {
      ++line;
      col = 1;
    } else {
      ++col;
    }
  }
  return Status::ParseError(what + " at line " + std::to_string(line) +
                            ", column " + std::to_string(col));
}

void StreamLexer::SkipWhitespace() {
  while (!AtEnd() && (Peek() == ' ' || Peek() == '\t' || Peek() == '\r' ||
                      Peek() == '\n')) {
    Advance();
  }
}

Result<StreamLexer::Token> StreamLexer::Next() {
  switch (phase_) {
    case Phase::kInit: {
      if (input_.size() > options_.max_input) {
        return Status::ResourceExhausted("XML input exceeds max_input");
      }
      if (input_.size() >= 3 && static_cast<uint8_t>(input_[0]) == 0xef &&
          static_cast<uint8_t>(input_[1]) == 0xbb &&
          static_cast<uint8_t>(input_[2]) == 0xbf) {
        pos_ = 3;
      }
      SkipWhitespace();
      if (Consume("<?xml")) {
        size_t end = input_.find("?>", pos_);
        if (end == std::string_view::npos) {
          return Error("unterminated XML decl");
        }
        pos_ = end + 2;
      }
      phase_ = Phase::kProlog;
      return NextProlog();
    }
    case Phase::kProlog:
      return NextProlog();
    case Phase::kContent:
      return NextContent();
    case Phase::kEpilog:
      return NextEpilog();
    case Phase::kDone:
      return Token{};
  }
  return Token{};
}

Result<StreamLexer::Token> StreamLexer::NextProlog() {
  for (;;) {
    SkipWhitespace();
    if (Lookahead("<!--")) return ParseComment();
    if (Lookahead("<!DOCTYPE")) {
      if (!options_.allow_doctype) {
        return Error("DOCTYPE is not allowed (player security profile)");
      }
      DISCSEC_RETURN_IF_ERROR(SkipDoctype());
      continue;
    }
    if (Lookahead("<?")) return ParsePi();
    break;
  }
  if (AtEnd() || Peek() != '<') {
    return Error("expected document element");
  }
  phase_ = Phase::kContent;
  return ParseStartTag();
}

Result<StreamLexer::Token> StreamLexer::NextContent() {
  if (pending_end_) {
    pending_end_ = false;
    Token token;
    token.kind = TokenKind::kEndElement;
    token.name = open_.back();
    open_.pop_back();
    if (open_.empty()) phase_ = Phase::kEpilog;
    return token;
  }
  text_.clear();
  for (;;) {
    if (AtEnd()) {
      return Error("unterminated element <" + std::string(open_.back()) + ">");
    }
    char c = Peek();
    if (c == '<') {
      // Flush points: a pending text token is emitted before the construct
      // is consumed, exactly where the DOM parser flushes a Text node.
      if (Lookahead("</")) {
        if (!text_.empty()) {
          Token token;
          token.kind = TokenKind::kText;
          token.value = text_;
          return token;
        }
        pos_ += 2;
        DISCSEC_ASSIGN_OR_RETURN(std::string_view end_name, ParseName());
        if (end_name != open_.back()) {
          return Error("mismatched end tag </" + std::string(end_name) +
                       "> for <" + std::string(open_.back()) + ">");
        }
        SkipWhitespace();
        if (!Consume(">")) return Error("expected '>' in end tag");
        Token token;
        token.kind = TokenKind::kEndElement;
        token.name = end_name;
        open_.pop_back();
        if (open_.empty()) phase_ = Phase::kEpilog;
        return token;
      }
      if (Lookahead("<!--")) {
        if (!text_.empty()) {
          Token token;
          token.kind = TokenKind::kText;
          token.value = text_;
          return token;
        }
        return ParseComment();
      }
      if (Lookahead("<![CDATA[")) {
        // CDATA folds raw into the surrounding text: no flush, no line-end
        // normalization (a raw \r survives, matching the DOM parser).
        pos_ += 9;
        size_t end = input_.find("]]>", pos_);
        if (end == std::string_view::npos) {
          return Error("unterminated CDATA section");
        }
        text_.append(input_.substr(pos_, end - pos_));
        pos_ = end + 3;
        continue;
      }
      if (Lookahead("<?")) {
        if (!text_.empty()) {
          Token token;
          token.kind = TokenKind::kText;
          token.value = text_;
          return token;
        }
        return ParsePi();
      }
      if (!text_.empty()) {
        Token token;
        token.kind = TokenKind::kText;
        token.value = text_;
        return token;
      }
      return ParseStartTag();
    }
    if (c == '&') {
      Advance();
      DISCSEC_RETURN_IF_ERROR(AppendReference(&text_));
      continue;
    }
    if (c == ']' && Lookahead("]]>")) {
      return Error("']]>' not allowed in content");
    }
    // Line-end normalization.
    if (c == '\r') {
      text_.push_back('\n');
      Advance();
      if (!AtEnd() && Peek() == '\n') Advance();
      continue;
    }
    // Ordinary character data (including a lone ']'): bulk-copy the run up
    // to the next markup, reference, CR, or potential "]]>" — one append
    // per run instead of one per byte. A 256-entry stop table keeps the
    // scan at ~1 byte/cycle (find_first_of re-scans the needle per byte).
    // Scanning from pos_ + 1 guarantees progress when the current byte
    // itself is ']'.
    static constexpr std::array<bool, 256> kContentStop = [] {
      std::array<bool, 256> t{};
      t[static_cast<unsigned char>('<')] = true;
      t[static_cast<unsigned char>('&')] = true;
      t[static_cast<unsigned char>('\r')] = true;
      t[static_cast<unsigned char>(']')] = true;
      return t;
    }();
    size_t run = pos_ + 1;
    while (run < input_.size() &&
           !kContentStop[static_cast<unsigned char>(input_[run])]) {
      ++run;
    }
    text_.append(input_.data() + pos_, run - pos_);
    pos_ = run;
  }
}

Result<StreamLexer::Token> StreamLexer::NextEpilog() {
  SkipWhitespace();
  if (AtEnd()) {
    phase_ = Phase::kDone;
    return Token{};
  }
  if (Lookahead("<!--")) return ParseComment();
  if (Lookahead("<?")) return ParsePi();
  return Error("unexpected content after document element");
}

Result<StreamLexer::Token> StreamLexer::ParseStartTag() {
  // Depth = number of open ancestors, matching ParseElement's `depth`.
  if (open_.size() > options_.max_depth) {
    return Status::ResourceExhausted("XML nesting exceeds max_depth");
  }
  start_tag_offset_ = pos_;
  Advance();  // '<'
  DISCSEC_ASSIGN_OR_RETURN(std::string_view name, ParseName());
  size_t attr_count = 0;
  for (;;) {
    SkipWhitespace();
    if (AtEnd()) return Error("unterminated start tag");
    if (Peek() == '>' || Lookahead("/>")) break;
    if (++attr_count > options_.max_attributes) {
      return Status::ResourceExhausted(
          "attribute count exceeds max_attributes on <" + std::string(name) +
          ">");
    }
    DISCSEC_ASSIGN_OR_RETURN(std::string_view attr_name, ParseName());
    SkipWhitespace();
    if (!Consume("=")) return Error("expected '=' after attribute name");
    SkipWhitespace();
    // Reuse the scratch slot's string capacity across tags.
    size_t slot = attr_count - 1;
    if (slot < attrs_.size()) {
      attrs_[slot].name.assign(attr_name);
      attrs_[slot].value.clear();
    } else {
      attrs_.push_back({std::string(attr_name), std::string()});
    }
    DISCSEC_RETURN_IF_ERROR(ParseAttributeValue(&attrs_[slot].value));
    for (size_t i = 0; i < slot; ++i) {
      if (attrs_[i].name == attrs_[slot].name) {
        return Error("duplicate attribute '" + std::string(attr_name) + "'");
      }
    }
  }
  attrs_.resize(attr_count);
  open_.push_back(name);
  if (Consume("/>")) {
    pending_end_ = true;
  } else {
    Advance();  // '>'
  }
  Token token;
  token.kind = TokenKind::kStartElement;
  token.name = name;
  token.attributes = &attrs_;
  return token;
}

Result<StreamLexer::Token> StreamLexer::ParseComment() {
  pos_ += 4;  // "<!--"
  size_t end = input_.find("--", pos_);
  if (end == std::string_view::npos) return Error("unterminated comment");
  std::string_view data = input_.substr(pos_, end - pos_);
  pos_ = end;
  if (!Consume("-->")) return Error("'--' not allowed inside comment");
  Token token;
  token.kind = TokenKind::kComment;
  token.value = data;
  return token;
}

Result<StreamLexer::Token> StreamLexer::ParsePi() {
  pos_ += 2;  // "<?"
  DISCSEC_ASSIGN_OR_RETURN(std::string_view target, ParseName());
  if (target == "xml") return Error("XML declaration not allowed here");
  SkipWhitespace();
  size_t end = input_.find("?>", pos_);
  if (end == std::string_view::npos) return Error("unterminated PI");
  std::string_view data = input_.substr(pos_, end - pos_);
  pos_ = end + 2;
  Token token;
  token.kind = TokenKind::kPi;
  token.name = target;
  token.value = data;
  return token;
}

Result<std::string_view> StreamLexer::ParseName() {
  if (AtEnd() || !IsNameStartChar(Peek())) return Error("expected name");
  size_t start = pos_;
  while (!AtEnd() && IsNameChar(Peek())) Advance();
  return input_.substr(start, pos_ - start);
}

Status StreamLexer::ParseAttributeValue(std::string* out) {
  if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
    return Error("expected quoted attribute value");
  }
  char quote = Peek();
  Advance();
  // Stop set for the bulk copy: both quote kinds, markup, references, and
  // the whitespace chars that normalize to a space.
  static constexpr std::array<bool, 256> kAttrStop = [] {
    std::array<bool, 256> t{};
    t[static_cast<unsigned char>('"')] = true;
    t[static_cast<unsigned char>('\'')] = true;
    t[static_cast<unsigned char>('<')] = true;
    t[static_cast<unsigned char>('&')] = true;
    t[static_cast<unsigned char>('\t')] = true;
    t[static_cast<unsigned char>('\n')] = true;
    t[static_cast<unsigned char>('\r')] = true;
    return t;
  }();
  for (;;) {
    size_t run = pos_;
    while (run < input_.size() &&
           !kAttrStop[static_cast<unsigned char>(input_[run])]) {
      ++run;
    }
    out->append(input_.data() + pos_, run - pos_);
    pos_ = run;
    if (AtEnd()) return Error("unterminated attribute value");
    char c = Peek();
    if (c == quote) break;
    if (c == '<') return Error("'<' in attribute value");
    if (c == '&') {
      Advance();
      DISCSEC_RETURN_IF_ERROR(AppendReference(out));
      continue;
    }
    // Attribute-value normalization: whitespace chars become spaces. (The
    // other quote kind is ordinary data inside this value.)
    out->push_back(c == '\t' || c == '\n' || c == '\r' ? ' ' : c);
    Advance();
  }
  Advance();  // closing quote
  return Status::OK();
}

Status StreamLexer::AppendReference(std::string* out) {
  size_t before = out->size();
  DISCSEC_RETURN_IF_ERROR(AppendReferenceUncounted(out));
  entity_output_ += out->size() - before;
  if (entity_output_ > options_.max_entity_output) {
    return Status::ResourceExhausted(
        "entity expansion output exceeds max_entity_output");
  }
  return Status::OK();
}

Status StreamLexer::AppendReferenceUncounted(std::string* out) {
  size_t semi = input_.find(';', pos_);
  if (semi == std::string_view::npos || semi - pos_ > 10) {
    return Error("unterminated entity reference");
  }
  std::string_view name = input_.substr(pos_, semi - pos_);
  pos_ = semi + 1;
  if (name == "lt") {
    out->push_back('<');
  } else if (name == "gt") {
    out->push_back('>');
  } else if (name == "amp") {
    out->push_back('&');
  } else if (name == "quot") {
    out->push_back('"');
  } else if (name == "apos") {
    out->push_back('\'');
  } else if (!name.empty() && name[0] == '#') {
    uint32_t cp = 0;
    bool ok = false;
    if (name.size() > 2 && (name[1] == 'x' || name[1] == 'X')) {
      for (size_t i = 2; i < name.size(); ++i) {
        char c = name[i];
        int v = (c >= '0' && c <= '9')   ? c - '0'
                : (c >= 'a' && c <= 'f') ? c - 'a' + 10
                : (c >= 'A' && c <= 'F') ? c - 'A' + 10
                                         : -1;
        if (v < 0) return Error("bad hex character reference");
        cp = cp * 16 + static_cast<uint32_t>(v);
        ok = true;
      }
    } else {
      for (size_t i = 1; i < name.size(); ++i) {
        if (name[i] < '0' || name[i] > '9') {
          return Error("bad character reference");
        }
        cp = cp * 10 + static_cast<uint32_t>(name[i] - '0');
        ok = true;
      }
    }
    if (!ok || cp == 0 || cp > 0x10ffff) {
      return Error("character reference out of range");
    }
    AppendUtf8(out, cp);
  } else {
    return Error("unknown entity '" + std::string(name) +
                 "' (custom entities are not supported)");
  }
  return Status::OK();
}

Status StreamLexer::SkipDoctype() {
  pos_ += 9;  // "<!DOCTYPE"
  int bracket = 0;
  while (!AtEnd()) {
    char c = Peek();
    Advance();
    if (c == '[') ++bracket;
    if (c == ']') --bracket;
    if (c == '>' && bracket == 0) return Status::OK();
  }
  return Error("unterminated DOCTYPE");
}

// ---------------------------------------------------------------------------
// StreamingC14N
//
// Replicates the inclusive branch of C14NWriter (src/xml/c14n.cc) over the
// token stream: same namespace rendering conditions, same attribute sort
// key, same apex inheritance of ancestor declarations and xml:* attributes,
// same document-level #xA placement — byte-for-byte.
// ---------------------------------------------------------------------------

StreamingC14N::StreamingC14N(const StreamingC14NOptions& options,
                             ByteSink* out)
    : options_(options), out_(out) {}

bool StreamingC14N::Emitting() const {
  if (skip_depth_ > 0) return false;
  return options_.apex_path == nullptr ? true : in_apex_;
}

const std::string* StreamingC14N::RenderedValue(
    std::string_view prefix) const {
  for (auto it = rendered_.rbegin(); it != rendered_.rend(); ++it) {
    if (it->prefix == prefix) return &it->uri;
  }
  return nullptr;
}

std::string_view StreamingC14N::LookupInScope(std::string_view prefix) const {
  if (prefix == "xml") return kXmlNamespace;
  for (auto it = in_scope_.rbegin(); it != in_scope_.rend(); ++it) {
    if (it->prefix == prefix) return it->uri;
  }
  return {};
}

Status StreamingC14N::Consume(const StreamLexer::Token& token) {
  switch (token.kind) {
    case StreamLexer::TokenKind::kStartElement:
      return OnStart(token);
    case StreamLexer::TokenKind::kEndElement:
      return OnEnd();
    case StreamLexer::TokenKind::kText:
      OnText(token.value);
      return Status::OK();
    case StreamLexer::TokenKind::kComment:
      OnComment(token.value);
      return Status::OK();
    case StreamLexer::TokenKind::kPi:
      OnPi(token.name, token.value);
      return Status::OK();
    case StreamLexer::TokenKind::kEndDocument:
      return Status::OK();
  }
  return Status::OK();
}

Status StreamingC14N::OnStart(const StreamLexer::Token& token) {
  if (skip_depth_ > 0) {
    ++skip_depth_;
    return Status::OK();
  }
  const bool is_root = frames_.empty();
  if (!is_root) {
    path_.push_back(frames_.back().child_count++);
  } else {
    seen_root_ = true;
  }
  // Entering the omitted (enveloped-signature) subtree: it has consumed its
  // child index above; nothing inside it affects output or later indices.
  if (options_.skip_path != nullptr && path_ == *options_.skip_path) {
    skip_depth_ = 1;
    return Status::OK();
  }
  bool is_apex = false;
  if (options_.apex_path != nullptr && !in_apex_ && !apex_done_ &&
      path_ == *options_.apex_path) {
    is_apex = true;
    in_apex_ = true;
  }

  Frame frame;
  frame.name = token.name;
  frame.ns_mark = in_scope_.size();
  frame.rendered_mark = rendered_.size();
  // Inherited xml:* attributes only matter on the path down to an apex.
  frame.tracked_xml_attrs = options_.apex_path != nullptr && !in_apex_;

  // The apex inherits its ancestors' state as it stands *before* this
  // element's own declarations/attributes are applied.
  std::vector<NsEntry> extra_ns;
  std::vector<Attribute> extra_attrs;
  if (is_apex) {
    // Flatten in-scope declarations, nearest (latest) wins; an inherited
    // empty default namespace is the initial state and is dropped.
    for (auto it = in_scope_.rbegin(); it != in_scope_.rend(); ++it) {
      bool seen = false;
      for (const NsEntry& have : extra_ns) {
        if (have.prefix == it->prefix) {
          seen = true;
          break;
        }
      }
      if (!seen) extra_ns.push_back(*it);
    }
    extra_ns.erase(std::remove_if(extra_ns.begin(), extra_ns.end(),
                                  [](const NsEntry& e) {
                                    return e.prefix.empty() && e.uri.empty();
                                  }),
                   extra_ns.end());
    extra_attrs = xml_attrs_;
    apex_frame_depth_ = frames_.size() + 1;
  }
  if (frame.tracked_xml_attrs) frame.saved_xml_attrs = xml_attrs_;

  // Own namespace declarations enter scope before attribute sort keys are
  // computed (the element's own xmlns attrs are visible to its own
  // attributes, as with LookupNamespaceUri on the DOM).
  const std::vector<Attribute>& attrs = *token.attributes;
  for (const Attribute& attr : attrs) {
    if (attr.IsNamespaceDecl()) {
      in_scope_.push_back({attr.DeclaredPrefix(), attr.value});
    } else if (frame.tracked_xml_attrs && attr.name.rfind("xml:", 0) == 0) {
      auto found =
          std::find_if(xml_attrs_.begin(), xml_attrs_.end(),
                       [&](const Attribute& a) { return a.name == attr.name; });
      if (found != xml_attrs_.end()) {
        found->value = attr.value;
      } else {
        xml_attrs_.push_back(attr);
      }
    }
  }

  frame.emitted = options_.apex_path == nullptr || in_apex_;
  frames_.push_back(std::move(frame));
  if (frames_.back().emitted) {
    EmitStart(token.name, attrs, is_apex ? &extra_ns : nullptr,
              is_apex ? &extra_attrs : nullptr);
  }
  return Status::OK();
}

void StreamingC14N::EmitStart(std::string_view name,
                              const std::vector<Attribute>& attrs,
                              const std::vector<NsEntry>* extra_ns,
                              const std::vector<Attribute>* extra_attrs) {
  out_->Append('<');
  out_->Append(name);

  // Fast path for the dominant element shape: no inherited apex state, no
  // namespace declarations, and at most one attribute — nothing to merge or
  // sort, so skip the scratch machinery entirely.
  if (extra_ns == nullptr && extra_attrs == nullptr) {
    bool simple = attrs.size() <= 1;
    for (const Attribute& attr : attrs) {
      if (attr.IsNamespaceDecl()) simple = false;
    }
    if (simple) {
      for (const Attribute& attr : attrs) {
        out_->Append(' ');
        out_->Append(attr.name);
        out_->Append("=\"");
        EscapeAttribute(attr.value, out_);
        out_->Append('"');
      }
      out_->Append('>');
      return;
    }
  }

  // Declared namespaces: inherited extras (apex only), overridden by own
  // xmlns attributes with the same prefix.
  std::vector<NsEntry>& declared = scratch_declared_;
  declared.clear();
  if (extra_ns != nullptr) declared = *extra_ns;
  for (const Attribute& attr : attrs) {
    if (!attr.IsNamespaceDecl()) continue;
    std::string prefix = attr.DeclaredPrefix();
    bool replaced = false;
    for (NsEntry& entry : declared) {
      if (entry.prefix == prefix) {
        entry.uri = attr.value;
        replaced = true;
        break;
      }
    }
    if (!replaced) declared.push_back({std::move(prefix), attr.value});
  }
  std::vector<const NsEntry*>& to_render = scratch_to_render_;
  to_render.clear();
  for (const NsEntry& entry : declared) {
    // An absent rendered entry counts as "", exactly as the DOM writer's
    // map lookup defaults — which also covers the "don't render the
    // initial empty default namespace" rule.
    const std::string* current = RenderedValue(entry.prefix);
    if ((current == nullptr ? std::string_view() : std::string_view(*current)) ==
        entry.uri) {
      continue;
    }
    to_render.push_back(&entry);
  }
  // Namespace nodes sort by prefix (default namespace, "", sorts first).
  std::sort(to_render.begin(), to_render.end(),
            [](const NsEntry* a, const NsEntry* b) {
              return std::tie(a->prefix, a->uri) < std::tie(b->prefix, b->uri);
            });
  for (const NsEntry* entry : to_render) {
    out_->Append(' ');
    if (entry->prefix.empty()) {
      out_->Append("xmlns");
    } else {
      out_->Append("xmlns:");
      out_->Append(entry->prefix);
    }
    out_->Append("=\"");
    EscapeAttribute(entry->uri, out_);
    out_->Append('"');
    rendered_.push_back(*entry);
  }

  // Regular attributes: inherited xml:* extras first (apex only, own
  // attributes with the same name override), then own attributes, sorted by
  // (namespace URI of prefix, local name).
  std::vector<const Attribute*>& merged = scratch_merged_;
  merged.clear();
  if (extra_attrs != nullptr) {
    for (const Attribute& attr : *extra_attrs) merged.push_back(&attr);
  }
  for (const Attribute& attr : attrs) {
    if (attr.IsNamespaceDecl()) continue;
    merged.erase(std::remove_if(
                     merged.begin(), merged.end(),
                     [&](const Attribute* a) { return a->name == attr.name; }),
                 merged.end());
    merged.push_back(&attr);
  }
  std::vector<KeyedAttr>& keyed = scratch_keyed_;
  keyed.clear();
  keyed.reserve(merged.size());
  for (const Attribute* attr : merged) {
    auto [prefix, local] = SplitQName(attr->name);
    KeyedAttr k;
    if (!prefix.empty()) k.uri = std::string(LookupInScope(prefix));
    k.local = local;
    k.attr = attr;
    keyed.push_back(std::move(k));
  }
  std::sort(keyed.begin(), keyed.end(),
            [](const KeyedAttr& a, const KeyedAttr& b) {
              return std::tie(a.uri, a.local) < std::tie(b.uri, b.local);
            });
  for (const KeyedAttr& k : keyed) {
    out_->Append(' ');
    out_->Append(k.attr->name);
    out_->Append("=\"");
    EscapeAttribute(k.attr->value, out_);
    out_->Append('"');
  }
  out_->Append('>');
}

Status StreamingC14N::OnEnd() {
  if (skip_depth_ > 0) {
    if (--skip_depth_ == 0) {
      // The skip root consumed a child index in its parent; its path
      // component goes away with it (unless it was the root itself).
      if (!path_.empty()) path_.pop_back();
    }
    return Status::OK();
  }
  Frame& frame = frames_.back();
  if (frame.emitted) {
    out_->Append("</");
    out_->Append(frame.name);
    out_->Append('>');
    rendered_.resize(frame.rendered_mark);
  }
  in_scope_.resize(frame.ns_mark);
  if (frame.tracked_xml_attrs) xml_attrs_ = std::move(frame.saved_xml_attrs);
  const bool was_root = frames_.size() == 1;
  frames_.pop_back();
  if (!was_root) path_.pop_back();
  if (in_apex_ && frames_.size() < apex_frame_depth_) {
    in_apex_ = false;
    apex_done_ = true;
  }
  return Status::OK();
}

void StreamingC14N::OnText(std::string_view data) {
  if (skip_depth_ > 0) return;
  if (frames_.empty()) return;  // whitespace outside the root never reaches us
  ++frames_.back().child_count;
  if (Emitting()) EscapeText(data, out_);
}

void StreamingC14N::OnComment(std::string_view data) {
  if (skip_depth_ > 0) return;
  if (frames_.empty()) {
    // Document-level comment: whole-document mode only, with the #xA
    // placement rule (after when before the root, before when after it).
    if (options_.apex_path != nullptr || !options_.with_comments) return;
    if (seen_root_) out_->Append('\n');
    out_->Append("<!--");
    out_->Append(data);
    out_->Append("-->");
    if (!seen_root_) out_->Append('\n');
    return;
  }
  ++frames_.back().child_count;
  if (!Emitting() || !options_.with_comments) return;
  out_->Append("<!--");
  out_->Append(data);
  out_->Append("-->");
}

void StreamingC14N::OnPi(std::string_view target, std::string_view data) {
  if (skip_depth_ > 0) return;
  auto write = [&]() {
    out_->Append("<?");
    out_->Append(target);
    if (!data.empty()) {
      out_->Append(' ');
      out_->Append(data);
    }
    out_->Append("?>");
  };
  if (frames_.empty()) {
    if (options_.apex_path != nullptr) return;
    if (seen_root_) out_->Append('\n');
    write();
    if (!seen_root_) out_->Append('\n');
    return;
  }
  ++frames_.back().child_count;
  if (!Emitting()) return;
  write();
}

Status StreamingC14N::Finish() const {
  if (options_.apex_path != nullptr && !apex_done_) {
    return Status::Corruption(
        "streaming c14n: apex subtree not reached (path desync)");
  }
  return Status::OK();
}

Status StreamCanonicalize(std::string_view source,
                          const ParseOptions& parse_options,
                          const StreamingC14NOptions& options, ByteSink* out) {
  obs::ScopedSpan span(parse_options.tracer, "xml.stream_c14n");
  span.SetAttr("bytes", static_cast<uint64_t>(source.size()));
  StreamLexer lexer(source, parse_options);
  StreamingC14N filter(options, out);
  for (;;) {
    DISCSEC_ASSIGN_OR_RETURN(StreamLexer::Token token, lexer.Next());
    if (token.kind == StreamLexer::TokenKind::kEndDocument) break;
    DISCSEC_RETURN_IF_ERROR(filter.Consume(token));
  }
  DISCSEC_RETURN_IF_ERROR(filter.Finish());
  internal::NoteStreamedCanonicalization();
  return Status::OK();
}

namespace {

/// Shared engine of ScanForSignatures / ScanAndCanonicalize: fed every
/// token (before the C14N filter, when one rides along), it maintains the
/// element stack, namespace and xml:* scopes, Id index and signature byte
/// ranges. Per-element work is a handful of view compares — element-path
/// strings are only composed for Id-bearing elements.
class VerifyScanner {
 public:
  /// `wanted_ids` selects which Id values to index: null collects every id
  /// (ScanForSignatures), a list collects exactly those (ScanForIds), and
  /// an EMPTY list collects none — the fused pass runs id-free because an
  /// element-dense document can carry thousands of Id attributes, and
  /// copying value+path+pathstring for each costs more than the dedicated
  /// second pass a (rare) #id reference triggers.
  VerifyScanner(std::string_view ns_uri, std::string_view local_name,
                SignatureScanResult* out,
                const std::vector<std::string>* wanted_ids = nullptr)
      : ns_uri_(ns_uri), local_name_(local_name), out_(out),
        wanted_ids_(wanted_ids) {}

  /// Returns true when `token` is the start tag of the FIRST matched
  /// signature (the fused pass arms the filter's skip path on that signal).
  bool Consume(const StreamLexer::Token& token, const StreamLexer& lexer) {
    switch (token.kind) {
      case StreamLexer::TokenKind::kStartElement:
        return OnStart(token, lexer);
      case StreamLexer::TokenKind::kEndElement:
        OnEnd(lexer);
        return false;
      case StreamLexer::TokenKind::kText:
      case StreamLexer::TokenKind::kComment:
      case StreamLexer::TokenKind::kPi:
        if (!open_.empty()) ++open_.back().child_count;
        return false;
      case StreamLexer::TokenKind::kEndDocument:
        return false;
    }
    return false;
  }

  /// Stable across the whole pass (unlike &out_->signatures[0].path, which
  /// moves when a later signature reallocates the vector).
  const std::vector<size_t>* first_signature_path() const {
    return &first_signature_path_;
  }

 private:
  struct OpenElement {
    std::string_view name;     ///< qualified name, view into the source
    size_t elem_index = 0;     ///< index among ELEMENT siblings
    size_t child_count = 0;    ///< next child index, all node kinds
    size_t element_count = 0;  ///< next child index, elements only
    size_t ns_mark = 0;
    size_t xml_mark = 0;
  };

  bool WantsId(const std::string& value) const {
    if (wanted_ids_ == nullptr) return true;
    for (const std::string& want : *wanted_ids_) {
      if (want == value) return true;
    }
    return false;
  }

  std::string_view ResolvePrefix(std::string_view prefix) const {
    for (auto it = ns_stack_.rbegin(); it != ns_stack_.rend(); ++it) {
      if (prefix.empty()) {
        if (it->name == "xmlns") return it->value;
      } else if (it->name.size() == 6 + prefix.size() &&
                 it->name.compare(0, 6, "xmlns:") == 0 &&
                 it->name.compare(6, prefix.size(), prefix.data(),
                                  prefix.size()) == 0) {
        return it->value;
      }
    }
    return std::string_view();
  }

  /// Innermost-wins flatten of a declaration stack, excluding entries from
  /// `limit` on (the matched element's own declarations).
  static std::vector<Attribute> Snapshot(const std::vector<Attribute>& stack,
                                         size_t limit) {
    std::vector<Attribute> out;
    for (size_t i = limit; i-- > 0;) {
      bool seen = false;
      for (const Attribute& kept : out) {
        if (kept.name == stack[i].name) {
          seen = true;
          break;
        }
      }
      if (!seen) out.push_back(stack[i]);
    }
    return out;
  }

  /// xml::ElementPath form: "/root/child[i]/..." with element-only indices.
  std::string ComposeElementPath() const {
    std::string path;
    for (const OpenElement& e : open_) {
      path += '/';
      path.append(e.name.data(), e.name.size());
      if (&e != &open_.front()) {
        path += '[';
        path += std::to_string(e.elem_index);
        path += ']';
      }
    }
    return path;
  }

  bool OnStart(const StreamLexer::Token& token, const StreamLexer& lexer) {
    size_t elem_index = 0;
    if (!open_.empty()) {
      path_.push_back(open_.back().child_count++);
      elem_index = open_.back().element_count++;
    } else {
      out_->root_name = std::string(token.name);
    }
    const size_t ns_mark = ns_stack_.size();
    const size_t xml_mark = xml_stack_.size();
    const std::string* id_value = nullptr;
    const std::string* id_value_lower = nullptr;
    for (const Attribute& attr : *token.attributes) {
      if (attr.IsNamespaceDecl()) {
        ns_stack_.push_back(attr);
      } else if (attr.name.size() > 4 &&
                 attr.name.compare(0, 4, "xml:") == 0) {
        xml_stack_.push_back(attr);
      } else if (attr.name == "Id") {
        id_value = &attr.value;
      } else if (attr.name == "id") {
        id_value_lower = &attr.value;
      }
    }
    open_.push_back({token.name, elem_index, 0, 0, ns_mark, xml_mark});
    // 'Id' over 'id', exactly like xml::IdRegistry / IdAttributeOf.
    if (id_value == nullptr) id_value = id_value_lower;
    if (id_value != nullptr && WantsId(*id_value)) {
      ScannedId& entry = out_->ids[*id_value];
      if (++entry.count == 1) {
        entry.path = path_;
        entry.element_name = std::string(token.name);
        entry.element_path = ComposeElementPath();
      }
    }
    bool first_signature = false;
    std::string_view local = token.name;
    const size_t colon = local.find(':');
    std::string_view prefix;
    if (colon != std::string_view::npos) {
      prefix = local.substr(0, colon);
      local = local.substr(colon + 1);
    }
    if (local == local_name_ && ResolvePrefix(prefix) == ns_uri_) {
      if (out_->signatures.empty()) {
        first_signature = true;
        first_signature_path_ = path_;
      }
      ScannedSignature sig;
      sig.path = path_;
      sig.begin = lexer.StartTagOffset();
      sig.ns_in_scope = Snapshot(ns_stack_, ns_mark);
      sig.xml_attrs = Snapshot(xml_stack_, xml_mark);
      pending_.emplace_back(out_->signatures.size(), open_.size() - 1);
      out_->signatures.push_back(std::move(sig));
    }
    return first_signature;
  }

  void OnEnd(const StreamLexer& lexer) {
    const OpenElement closed = open_.back();
    open_.pop_back();
    ns_stack_.resize(closed.ns_mark);
    xml_stack_.resize(closed.xml_mark);
    if (!open_.empty()) path_.pop_back();
    if (!pending_.empty() && pending_.back().second == open_.size()) {
      out_->signatures[pending_.back().first].end = lexer.Offset();
      pending_.pop_back();
    }
  }

  std::string_view ns_uri_;
  std::string_view local_name_;
  SignatureScanResult* out_;
  const std::vector<std::string>* wanted_ids_;
  std::vector<OpenElement> open_;
  std::vector<size_t> path_;
  std::vector<Attribute> ns_stack_;   ///< declarations of every open element
  std::vector<Attribute> xml_stack_;  ///< xml:* attrs of every open element
  std::vector<std::pair<size_t, size_t>> pending_;  ///< {signature idx, depth}
  std::vector<size_t> first_signature_path_;
};

}  // namespace

Result<SignatureScanResult> ScanForSignatures(std::string_view source,
                                              const ParseOptions& parse_options,
                                              std::string_view ns_uri,
                                              std::string_view local_name) {
  SignatureScanResult result;
  StreamLexer lexer(source, parse_options);
  VerifyScanner scanner(ns_uri, local_name, &result);
  for (;;) {
    DISCSEC_ASSIGN_OR_RETURN(StreamLexer::Token token, lexer.Next());
    if (token.kind == StreamLexer::TokenKind::kEndDocument) break;
    scanner.Consume(token, lexer);
  }
  return result;
}

Result<SignatureScanResult> ScanForIds(std::string_view source,
                                       const ParseOptions& parse_options,
                                       const std::vector<std::string>& ids) {
  SignatureScanResult result;
  StreamLexer lexer(source, parse_options);
  // No element can match an empty local name, so this pass only indexes.
  VerifyScanner scanner(std::string_view(), std::string_view(), &result, &ids);
  for (;;) {
    DISCSEC_ASSIGN_OR_RETURN(StreamLexer::Token token, lexer.Next());
    if (token.kind == StreamLexer::TokenKind::kEndDocument) break;
    scanner.Consume(token, lexer);
  }
  return result;
}

Result<SignatureScanResult> ScanAndCanonicalize(
    std::string_view source, const ParseOptions& parse_options,
    std::string_view ns_uri, std::string_view local_name,
    std::string* canonical) {
  obs::ScopedSpan span(parse_options.tracer, "xml.stream_scan_c14n");
  span.SetAttr("bytes", static_cast<uint64_t>(source.size()));
  SignatureScanResult result;
  StreamLexer lexer(source, parse_options);
  static const std::vector<std::string> kNoIds;
  VerifyScanner scanner(ns_uri, local_name, &result, &kNoIds);
  canonical->clear();
  canonical->reserve(source.size() + source.size() / 8);
  StringSink sink(canonical);
  StreamingC14NOptions c14n;  // whole document, no comments
  StreamingC14N filter(c14n, &sink);
  for (;;) {
    DISCSEC_ASSIGN_OR_RETURN(StreamLexer::Token token, lexer.Next());
    if (token.kind == StreamLexer::TokenKind::kEndDocument) break;
    // Scanner first: recognizing the first signature's start tag must arm
    // the filter's skip BEFORE the filter consumes that same token, so not
    // a single byte of the signature reaches the canonical buffer.
    if (scanner.Consume(token, lexer)) {
      filter.SetSkipPath(scanner.first_signature_path());
    }
    DISCSEC_RETURN_IF_ERROR(filter.Consume(token));
  }
  DISCSEC_RETURN_IF_ERROR(filter.Finish());
  internal::NoteStreamedCanonicalization();
  return result;
}

size_t StreamedCanonicalizationCount() {
  return g_streamed_c14n_count.load(std::memory_order_relaxed);
}

namespace internal {
void NoteStreamedCanonicalization() {
  g_streamed_c14n_count.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace internal

}  // namespace xml
}  // namespace discsec
