#ifndef DISCSEC_XML_ARENA_H_
#define DISCSEC_XML_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace discsec {
namespace xml {

/// Counters of one Arena (and, via GlobalArenaStats, of every arena in the
/// process). Cumulative over the arena's lifetime; Reset() recycles the
/// memory but keeps the counters growing so deltas stay meaningful.
struct ArenaStats {
  /// Heap bytes reserved in blocks (block capacity, not what was handed out).
  size_t bytes_reserved = 0;
  /// Bytes handed out to allocations, headers and alignment included.
  size_t bytes_used = 0;
  /// Individual allocations served.
  size_t allocations = 0;
  /// Reset() calls (block memory recycled for a new generation).
  size_t resets = 0;
};

/// Bump allocator for DOM nodes (DESIGN.md §14).
///
/// A parse with ParseOptions::arena set allocates every Node (elements,
/// text, comments, PIs) from this arena instead of the general heap: one
/// pointer bump per node, one malloc per 64 KiB block, and a single bulk
/// free when the arena dies. The owning Document keeps the arena alive via
/// shared_ptr, so node lifetime is unchanged for callers; nodes moved OUT of
/// an arena-backed document must not outlive it (the engine only does this
/// for nodes it discards immediately, e.g. the enveloped-signature removal).
///
/// Not thread-safe: one arena belongs to one parsing thread at a time. The
/// verifier strips the arena from transform-reparse options precisely so
/// pool workers never share one.
class Arena {
 public:
  static constexpr size_t kDefaultBlockSize = 64 * 1024;

  explicit Arena(size_t block_size = kDefaultBlockSize);
  ~Arena();
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `size` bytes aligned to 16 (max_align_t on every target this
  /// builds for). Never returns null; oversized requests get a dedicated
  /// block.
  void* Allocate(size_t size);

  /// Recycles every block for reuse without releasing them to the heap.
  /// Only valid when no node allocated from this arena is still alive.
  void Reset();

  const ArenaStats& stats() const { return stats_; }

 private:
  struct Block {
    std::unique_ptr<uint8_t[]> data;
    size_t capacity = 0;
  };

  void AddBlock(size_t capacity);

  std::vector<Block> blocks_;
  std::vector<Block> oversized_;  ///< dedicated blocks, outside the bump walk
  size_t block_size_;
  size_t current_ = 0;  ///< index into blocks_ of the bump block
  size_t offset_ = 0;   ///< bump offset inside blocks_[current_]
  ArenaStats stats_;
};

/// RAII scope routing Node allocations on this thread into `arena` (null is
/// a no-op scope). The parser opens one around a parse when
/// ParseOptions::arena is set; nesting restores the previous arena.
class ArenaScope {
 public:
  explicit ArenaScope(Arena* arena);
  ~ArenaScope();
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  Arena* previous_;
};

/// The thread's active arena (null when Node allocations go to the heap).
Arena* CurrentArena();

/// Process-wide cumulative arena counters across every Arena ever created —
/// the observability feed for obs::AbsorbArenaStats (monotonic, atomic).
ArenaStats GlobalArenaStats();

}  // namespace xml
}  // namespace discsec

#endif  // DISCSEC_XML_ARENA_H_
