#ifndef DISCSEC_XML_PARSER_H_
#define DISCSEC_XML_PARSER_H_

#include <memory>
#include <string_view>

#include "common/result.h"
#include "obs/trace.h"
#include "xml/arena.h"
#include "xml/dom.h"

namespace discsec {
namespace xml {

/// Options controlling the parser's security posture. Every limit maps to a
/// denial-of-service vector a CE player must survive; exceeding any of them
/// yields Status::ResourceExhausted.
struct ParseOptions {
  /// Maximum element nesting depth — a CE player must bound recursion.
  size_t max_depth = 256;
  /// Maximum total input size accepted (16 MiB default).
  size_t max_input = 16u << 20;
  /// Maximum number of attributes on a single element, namespace
  /// declarations included — bounds the quadratic duplicate-attribute scan
  /// and per-element memory (oversized-attribute-list bombs).
  size_t max_attributes = 256;
  /// Maximum total bytes produced by entity and character references across
  /// the whole document (1 MiB default) — caps entity-expansion
  /// amplification output even though custom entities are rejected.
  size_t max_entity_output = 1u << 20;
  /// DOCTYPE handling: the player profile rejects DTDs outright (they are a
  /// well-known XML attack surface and C14N discards them anyway).
  bool allow_doctype = false;
  /// Observability: when set, each Parse emits an "xml.parse" span with a
  /// "bytes" attribute. Null (the default) is a zero-cost no-op.
  obs::Tracer* tracer = nullptr;
  /// When set, every node of the parsed document is bump-allocated from
  /// this arena (one malloc per 64 KiB instead of one per node) and the
  /// returned Document keeps the arena alive. The arena must not be shared
  /// across threads; callers that re-parse on pool workers must clear this
  /// field on the options they hand out.
  std::shared_ptr<Arena> arena;
};

/// Parses an XML 1.0 document (UTF-8) into a Document.
///
/// Supported: prolog/XML declaration, comments, processing instructions,
/// namespaces-as-attributes, CDATA sections (folded into text), the five
/// predefined entities and decimal/hex character references.
/// Not supported by design: DTD internal subsets and custom entities
/// (rejected — see ParseOptions::allow_doctype, which only *skips* them).
Result<Document> Parse(std::string_view input, const ParseOptions& options);

/// Parses with default options.
Result<Document> Parse(std::string_view input);

}  // namespace xml
}  // namespace discsec

#endif  // DISCSEC_XML_PARSER_H_
