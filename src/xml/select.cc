#include "xml/select.h"

#include "common/strings.h"

namespace discsec {
namespace xml {

namespace {

bool StepMatches(const Element* e, std::string_view step) {
  if (step == "*") return true;
  if (step.find(':') != std::string_view::npos) return e->name() == step;
  return e->LocalName() == step;
}

void CollectDescendants(Element* e, std::string_view step,
                        std::vector<Element*>* out) {
  e->ForEachElement([&](Element* d) {
    if (StepMatches(d, step)) out->push_back(d);
  });
}

}  // namespace

std::vector<Element*> SelectAll(Element* context, std::string_view path) {
  if (context == nullptr || path.empty()) return {};
  bool descendant = false;
  if (StartsWith(path, "//")) {
    descendant = true;
    path.remove_prefix(2);
  } else if (StartsWith(path, "/")) {
    path.remove_prefix(1);
  }
  std::vector<std::string> steps = SplitString(path, '/');
  if (steps.empty()) return {};

  std::vector<Element*> frontier;
  if (descendant) {
    CollectDescendants(context, steps[0], &frontier);
  } else if (StepMatches(context, steps[0])) {
    // The first step names the context element itself for root-anchored
    // paths ("/cluster/..." applied with context = root <cluster>).
    frontier.push_back(context);
  } else {
    // Relative path: first step names children of the context.
    for (const auto& child : context->children()) {
      if (child->IsElement() &&
          StepMatches(static_cast<Element*>(child.get()), steps[0])) {
        frontier.push_back(static_cast<Element*>(child.get()));
      }
    }
  }

  for (size_t s = 1; s < steps.size(); ++s) {
    std::vector<Element*> next;
    for (Element* e : frontier) {
      for (const auto& child : e->children()) {
        if (child->IsElement() &&
            StepMatches(static_cast<Element*>(child.get()), steps[s])) {
          next.push_back(static_cast<Element*>(child.get()));
        }
      }
    }
    frontier = std::move(next);
  }
  return frontier;
}

Element* SelectFirst(Element* context, std::string_view path) {
  auto all = SelectAll(context, path);
  return all.empty() ? nullptr : all.front();
}

}  // namespace xml
}  // namespace discsec
