#include "xml/c14n.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <set>

#include "xml/serializer.h"

namespace discsec {
namespace xml {

namespace {

std::atomic<size_t> g_buffered_c14n_count{0};

/// Map of prefix -> namespace URI rendered so far on the ancestor chain.
using NsMap = std::map<std::string, std::string>;

struct C14NWriter {
  const C14NOptions& options;
  ByteSink* out;
  /// Namespace nodes rendered on the open ancestor chain, innermost last.
  /// A flat overlay stack instead of the per-element NsMap copy the walk
  /// used to make: lookups scan backward (nearest rendering wins) and each
  /// element truncates back to its mark on exit — zero allocations per
  /// element once the vector has warmed up.
  std::vector<std::pair<std::string, std::string>> rendered_;

  /// Nearest rendered URI for `prefix`, or null when never rendered.
  const std::string* RenderedValue(std::string_view prefix) const {
    for (auto it = rendered_.rbegin(); it != rendered_.rend(); ++it) {
      if (it->first == prefix) return &it->second;
    }
    return nullptr;
  }

  void WriteText(const Text& text) { EscapeText(text.data(), out); }

  void WriteComment(const Comment& comment) {
    out->Append("<!--");
    out->Append(comment.data());
    out->Append("-->");
  }

  void WritePi(const Pi& pi) {
    out->Append("<?");
    out->Append(pi.target());
    if (!pi.data().empty()) {
      out->Append(' ');
      out->Append(pi.data());
    }
    out->Append("?>");
  }

  /// The prefixes element `e` visibly utilizes: its own plus those of its
  /// non-namespace attributes (the exclusive-C14N criterion).
  static std::set<std::string> VisiblyUtilizedPrefixes(const Element& e) {
    std::set<std::string> out;
    out.insert(std::string(e.Prefix()));
    for (const auto& attr : e.attributes()) {
      if (attr.IsNamespaceDecl()) continue;
      auto [prefix, local] = SplitQName(attr.name);
      // Unprefixed attributes have no namespace — they never utilize the
      // default namespace.
      if (!prefix.empty() && prefix != "xml") {
        out.insert(std::string(prefix));
      }
    }
    return out;
  }

  /// `extra_ns` / `extra_attrs` carry the inherited declarations for a
  /// document-subset apex; both are empty for non-apex elements.
  void WriteElement(const Element& e, const NsMap& extra_ns,
                    const std::vector<Attribute>& extra_attrs) {
    out->Append('<');
    out->Append(e.name());

    std::vector<std::pair<std::string, std::string>> to_render;
    if (options.exclusive) {
      // Exclusive: render a declaration for each visibly utilized prefix
      // (plus the InclusiveNamespaces list) whose in-scope value differs
      // from the nearest output ancestor's rendering.
      std::set<std::string> wanted = VisiblyUtilizedPrefixes(e);
      for (const std::string& prefix : options.inclusive_prefixes) {
        wanted.insert(prefix == "#default" ? std::string() : prefix);
      }
      for (const std::string& prefix : wanted) {
        std::string uri = e.LookupNamespaceUri(prefix);
        const std::string* current = RenderedValue(prefix);
        if ((current != nullptr ? *current : std::string_view()) == uri) {
          continue;
        }
        if (uri.empty() && !prefix.empty()) continue;  // unbound prefix
        to_render.emplace_back(prefix, std::move(uri));
      }
    } else {
      // Inclusive: gather this element's namespace declarations (own xmlns
      // attrs override inherited extras with the same prefix) and render
      // those whose value differs from the nearest rendered ancestor. The
      // default namespace "" with value "" is only rendered when undoing a
      // non-empty default.
      NsMap declared = extra_ns;
      for (const auto& attr : e.attributes()) {
        if (attr.IsNamespaceDecl()) {
          declared[attr.DeclaredPrefix()] = attr.value;
        }
      }
      for (const auto& [prefix, uri] : declared) {
        const std::string* current = RenderedValue(prefix);
        if ((current != nullptr ? *current : std::string_view()) == uri) {
          continue;
        }
        if (prefix.empty() && uri.empty() && current == nullptr) continue;
        to_render.emplace_back(prefix, uri);
      }
    }
    // Namespace nodes sort by prefix (default namespace, "", sorts first).
    std::sort(to_render.begin(), to_render.end());
    for (const auto& [prefix, uri] : to_render) {
      out->Append(' ');
      if (prefix.empty()) {
        out->Append("xmlns");
      } else {
        out->Append("xmlns:");
        out->Append(prefix);
      }
      out->Append("=\"");
      EscapeAttribute(uri, out);
      out->Append('"');
    }
    const size_t rendered_mark = rendered_.size();
    for (auto& entry : to_render) rendered_.push_back(std::move(entry));

    // Regular attributes sorted by (namespace URI of prefix, local name);
    // unprefixed attributes have no namespace, so their URI key is "". The
    // key is computed once per attribute up front — the comparator used to
    // re-derive (and re-allocate) both keys on every comparison.
    std::vector<const Attribute*> attrs;
    attrs.reserve(extra_attrs.size() + e.attributes().size());
    for (const auto& attr : extra_attrs) attrs.push_back(&attr);
    for (const auto& attr : e.attributes()) {
      if (!attr.IsNamespaceDecl()) {
        // Own xml:* attributes override inherited ones with the same name.
        attrs.erase(std::remove_if(attrs.begin(), attrs.end(),
                                   [&](const Attribute* a) {
                                     return a->name == attr.name;
                                   }),
                    attrs.end());
        attrs.push_back(&attr);
      }
    }
    struct KeyedAttr {
      std::string uri;
      std::string_view local;
      const Attribute* attr;
    };
    std::vector<KeyedAttr> keyed;
    keyed.reserve(attrs.size());
    for (const Attribute* attr : attrs) {
      auto [prefix, local] = SplitQName(attr->name);
      KeyedAttr k;
      if (!prefix.empty()) k.uri = e.LookupNamespaceUri(prefix);
      k.local = local;
      k.attr = attr;
      keyed.push_back(std::move(k));
    }
    std::sort(keyed.begin(), keyed.end(),
              [](const KeyedAttr& a, const KeyedAttr& b) {
                if (a.uri != b.uri) return a.uri < b.uri;
                return a.local < b.local;
              });
    for (const KeyedAttr& k : keyed) {
      out->Append(' ');
      out->Append(k.attr->name);
      out->Append("=\"");
      EscapeAttribute(k.attr->value, out);
      out->Append('"');
    }
    out->Append('>');

    for (const auto& child : e.children()) {
      WriteNode(*child);
    }

    out->Append("</");
    out->Append(e.name());
    out->Append('>');
    rendered_.resize(rendered_mark);
  }

  void WriteNode(const Node& node) {
    switch (node.kind()) {
      case NodeKind::kElement:
        WriteElement(static_cast<const Element&>(node), {}, {});
        break;
      case NodeKind::kText:
        WriteText(static_cast<const Text&>(node));
        break;
      case NodeKind::kComment:
        if (options.with_comments) {
          WriteComment(static_cast<const Comment&>(node));
        }
        break;
      case NodeKind::kProcessingInstruction:
        WritePi(static_cast<const Pi&>(node));
        break;
    }
  }
};

}  // namespace

namespace {

// Shared span prologue for both canonicalization entry points.
void AnnotateC14NSpan(obs::ScopedSpan* span, const C14NOptions& options) {
  if (!span->enabled()) return;
  span->SetAttr("mode", options.exclusive ? "exclusive" : "inclusive");
  span->SetAttr("comments", options.with_comments ? "with" : "without");
}

}  // namespace

void Canonicalize(const Document& doc, const C14NOptions& options,
                  ByteSink* sink) {
  obs::ScopedSpan span(options.tracer, "xml.c14n");
  AnnotateC14NSpan(&span, options);
  C14NWriter writer{options, sink};
  // Document-level children: PIs (and comments in WithComments mode) that
  // precede the root are followed by #xA; those after are preceded by #xA.
  bool seen_root = false;
  for (const auto& child : doc.children()) {
    if (child->IsElement()) {
      writer.WriteNode(*child);
      seen_root = true;
      continue;
    }
    if (child->IsComment() && !options.with_comments) continue;
    if (seen_root) sink->Append('\n');
    writer.WriteNode(*child);
    if (!seen_root) sink->Append('\n');
  }
}

std::string Canonicalize(const Document& doc, const C14NOptions& options) {
  internal::NoteBufferedCanonicalization();
  std::string out;
  StringSink sink(&out);
  Canonicalize(doc, options, &sink);
  return out;
}

std::string Canonicalize(const Document& doc) {
  C14NOptions options;
  return Canonicalize(doc, options);
}

void CanonicalizeElement(const Element& apex, const C14NOptions& options,
                         ByteSink* sink) {
  obs::ScopedSpan span(options.tracer, "xml.c14n");
  AnnotateC14NSpan(&span, options);
  if (options.exclusive) {
    // Exclusive C14N does not inherit ancestor xml:* attributes, and
    // namespace context comes from LookupNamespaceUri on demand.
    C14NWriter writer{options, sink};
    writer.WriteElement(apex, {}, {});
    return;
  }
  // Collect in-scope namespace declarations from ancestors (nearest wins)
  // and inheritable xml:* attributes, per C14N's document-subset rules.
  NsMap inherited_ns;
  std::vector<Attribute> inherited_xml_attrs;
  std::vector<const Element*> ancestors;
  for (const Element* a = apex.parent(); a != nullptr; a = a->parent()) {
    ancestors.push_back(a);
  }
  // Walk outermost-first so nearer declarations overwrite farther ones.
  for (auto it = ancestors.rbegin(); it != ancestors.rend(); ++it) {
    for (const auto& attr : (*it)->attributes()) {
      if (attr.IsNamespaceDecl()) {
        inherited_ns[attr.DeclaredPrefix()] = attr.value;
      } else if (attr.name.rfind("xml:", 0) == 0) {
        // Nearer ancestor overrides: replace any previous with same name.
        auto found = std::find_if(
            inherited_xml_attrs.begin(), inherited_xml_attrs.end(),
            [&](const Attribute& a) { return a.name == attr.name; });
        if (found != inherited_xml_attrs.end()) {
          found->value = attr.value;
        } else {
          inherited_xml_attrs.push_back(attr);
        }
      }
    }
  }
  // An inherited empty default namespace is the initial state; drop it.
  auto def = inherited_ns.find("");
  if (def != inherited_ns.end() && def->second.empty()) {
    inherited_ns.erase(def);
  }
  C14NWriter writer{options, sink};
  writer.WriteElement(apex, inherited_ns, inherited_xml_attrs);
}

std::string CanonicalizeElement(const Element& apex,
                                const C14NOptions& options) {
  internal::NoteBufferedCanonicalization();
  std::string out;
  StringSink sink(&out);
  CanonicalizeElement(apex, options, &sink);
  return out;
}

std::string CanonicalizeElement(const Element& apex) {
  C14NOptions options;
  return CanonicalizeElement(apex, options);
}

size_t BufferedCanonicalizationCount() {
  return g_buffered_c14n_count.load(std::memory_order_relaxed);
}

namespace internal {
void NoteBufferedCanonicalization() {
  g_buffered_c14n_count.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace internal

}  // namespace xml
}  // namespace discsec
