#ifndef DISCSEC_XML_C14N_H_
#define DISCSEC_XML_C14N_H_

#include <string>
#include <vector>

#include "common/byte_sink.h"
#include "obs/trace.h"
#include "xml/dom.h"

namespace discsec {
namespace xml {

/// Canonical XML 1.0 (W3C REC-xml-c14n-20010315).
///
/// The paper (§5.4, Fig. 6) motivates canonicalization directly: XML allows
/// syntactic variation between semantically equivalent documents, while hash
/// functions are sensitive to every byte, so signatures must be computed over
/// the canonical form. This implements the inclusive algorithm, with and
/// without comments, for full documents and for document subsets rooted at an
/// element (the form XML-DSig same-document references use).
struct C14NOptions {
  /// Include comment nodes (the ...#WithComments variant).
  bool with_comments = false;
  /// Exclusive XML Canonicalization (W3C xml-exc-c14n): render only the
  /// namespace declarations an element *visibly utilizes* (its own prefix
  /// and its attributes' prefixes), instead of every in-scope declaration.
  /// This makes a canonicalized fragment independent of its enclosing
  /// document's namespace context, so a signed fragment can be moved
  /// between documents without breaking its signature.
  bool exclusive = false;
  /// Exclusive mode only: prefixes to treat inclusively anyway (the
  /// ec:InclusiveNamespaces PrefixList; "#default" names the default
  /// namespace).
  std::vector<std::string> inclusive_prefixes;
  /// Observability: when set, each canonicalization emits an "xml.c14n"
  /// span with "mode" and "comments" attributes. Null = no-op.
  obs::Tracer* tracer = nullptr;
};

/// Canonicalizes the entire document.
///
/// The sink overloads stream the canonical octets without materializing
/// them — this is the form the XML-DSig hot path uses (a crypto::DigestSink
/// fuses canonicalization into the digest). The string-returning forms wrap
/// a StringSink and count toward BufferedCanonicalizationCount().
void Canonicalize(const Document& doc, const C14NOptions& options,
                  ByteSink* sink);
std::string Canonicalize(const Document& doc, const C14NOptions& options);
std::string Canonicalize(const Document& doc);

/// Canonicalizes the subtree rooted at `apex` as a document subset: the apex
/// element inherits its ancestors' in-scope namespace declarations and xml:*
/// attributes, per the C14N rules for document subsets.
void CanonicalizeElement(const Element& apex, const C14NOptions& options,
                         ByteSink* sink);
std::string CanonicalizeElement(const Element& apex,
                                const C14NOptions& options);
std::string CanonicalizeElement(const Element& apex);

/// Instrumentation: process-wide count of canonicalizations that
/// materialized a full owned canonical buffer (the string-returning
/// wrappers above, plus any buffering fallback in the xmldsig transform
/// pipeline). Streaming sink-based calls do not count. Tests and benches
/// take deltas of this to assert hot paths stay constant-memory. The
/// counter is atomic, so the parallel verification engine's concurrent
/// reference processing bumps it race-free (deltas remain exact across a
/// join, since ParallelFor completes before the caller reads the counter).
size_t BufferedCanonicalizationCount();

namespace internal {
/// Called by pipeline stages outside this module when they are forced to
/// buffer a canonicalization (e.g. a node-set -> octet transform).
void NoteBufferedCanonicalization();
}  // namespace internal

}  // namespace xml
}  // namespace discsec

#endif  // DISCSEC_XML_C14N_H_
