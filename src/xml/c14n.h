#ifndef DISCSEC_XML_C14N_H_
#define DISCSEC_XML_C14N_H_

#include <string>
#include <vector>

#include "xml/dom.h"

namespace discsec {
namespace xml {

/// Canonical XML 1.0 (W3C REC-xml-c14n-20010315).
///
/// The paper (§5.4, Fig. 6) motivates canonicalization directly: XML allows
/// syntactic variation between semantically equivalent documents, while hash
/// functions are sensitive to every byte, so signatures must be computed over
/// the canonical form. This implements the inclusive algorithm, with and
/// without comments, for full documents and for document subsets rooted at an
/// element (the form XML-DSig same-document references use).
struct C14NOptions {
  /// Include comment nodes (the ...#WithComments variant).
  bool with_comments = false;
  /// Exclusive XML Canonicalization (W3C xml-exc-c14n): render only the
  /// namespace declarations an element *visibly utilizes* (its own prefix
  /// and its attributes' prefixes), instead of every in-scope declaration.
  /// This makes a canonicalized fragment independent of its enclosing
  /// document's namespace context, so a signed fragment can be moved
  /// between documents without breaking its signature.
  bool exclusive = false;
  /// Exclusive mode only: prefixes to treat inclusively anyway (the
  /// ec:InclusiveNamespaces PrefixList; "#default" names the default
  /// namespace).
  std::vector<std::string> inclusive_prefixes;
};

/// Canonicalizes the entire document.
std::string Canonicalize(const Document& doc, const C14NOptions& options);
std::string Canonicalize(const Document& doc);

/// Canonicalizes the subtree rooted at `apex` as a document subset: the apex
/// element inherits its ancestors' in-scope namespace declarations and xml:*
/// attributes, per the C14N rules for document subsets.
std::string CanonicalizeElement(const Element& apex,
                                const C14NOptions& options);
std::string CanonicalizeElement(const Element& apex);

}  // namespace xml
}  // namespace discsec

#endif  // DISCSEC_XML_C14N_H_
