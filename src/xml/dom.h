#ifndef DISCSEC_XML_DOM_H_
#define DISCSEC_XML_DOM_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace discsec {
namespace xml {

class Arena;
class Element;

/// Node kinds in the reduced DOM. CDATA sections are folded into Text (as
/// Canonical XML requires); DOCTYPE is not represented (the parser skips it),
/// which is also what C14N mandates.
enum class NodeKind {
  kElement,
  kText,
  kComment,
  kProcessingInstruction,
};

/// Base class for all tree nodes. Ownership: parents own children through
/// unique_ptr; `parent` is a non-owning back pointer (null at top level).
class Node {
 public:
  virtual ~Node() = default;
  NodeKind kind() const { return kind_; }
  Element* parent() const { return parent_; }

  bool IsElement() const { return kind_ == NodeKind::kElement; }
  bool IsText() const { return kind_ == NodeKind::kText; }
  bool IsComment() const { return kind_ == NodeKind::kComment; }
  bool IsPi() const { return kind_ == NodeKind::kProcessingInstruction; }

  /// Deep copy with null parent.
  virtual std::unique_ptr<Node> Clone() const = 0;

  /// Arena-aware allocation (xml/arena.h): inside a thread-local ArenaScope
  /// — which the parser opens when ParseOptions::arena is set — nodes are
  /// bump-allocated and reclaimed with the arena; otherwise they come from
  /// the heap. A tag header lets operator delete tell the two apart, so
  /// mixed trees (arena-parsed document plus heap-cloned insertions) stay
  /// correct. Defined in xml/arena.cc.
  static void* operator new(size_t size);
  static void operator delete(void* ptr);

 protected:
  explicit Node(NodeKind kind) : kind_(kind) {}

 private:
  friend class Element;
  friend class Document;
  NodeKind kind_;
  Element* parent_ = nullptr;
};

/// Character data node.
class Text final : public Node {
 public:
  explicit Text(std::string data)
      : Node(NodeKind::kText), data_(std::move(data)) {}
  const std::string& data() const { return data_; }
  void set_data(std::string data) { data_ = std::move(data); }
  std::unique_ptr<Node> Clone() const override {
    return std::make_unique<Text>(data_);
  }

 private:
  std::string data_;
};

/// Comment node (content between <!-- and -->).
class Comment final : public Node {
 public:
  explicit Comment(std::string data)
      : Node(NodeKind::kComment), data_(std::move(data)) {}
  const std::string& data() const { return data_; }
  std::unique_ptr<Node> Clone() const override {
    return std::make_unique<Comment>(data_);
  }

 private:
  std::string data_;
};

/// Processing instruction (<?target data?>).
class Pi final : public Node {
 public:
  Pi(std::string target, std::string data)
      : Node(NodeKind::kProcessingInstruction),
        target_(std::move(target)),
        data_(std::move(data)) {}
  const std::string& target() const { return target_; }
  const std::string& data() const { return data_; }
  std::unique_ptr<Node> Clone() const override {
    return std::make_unique<Pi>(target_, data_);
  }

 private:
  std::string target_;
  std::string data_;
};

/// An attribute as written: `name` is the qualified name ("Id", "ds:Type",
/// "xmlns", "xmlns:ds"); `value` is the unescaped text.
struct Attribute {
  std::string name;
  std::string value;

  bool IsNamespaceDecl() const {
    return name == "xmlns" || name.rfind("xmlns:", 0) == 0;
  }
  /// For xmlns -> "", for xmlns:p -> "p"; undefined for non-declarations.
  std::string DeclaredPrefix() const {
    return name == "xmlns" ? std::string() : name.substr(6);
  }
};

/// Splits a qualified name into (prefix, local); prefix is empty when there
/// is no colon.
std::pair<std::string_view, std::string_view> SplitQName(std::string_view q);

/// Element node: qualified name, ordered attributes, ordered children.
class Element final : public Node {
 public:
  explicit Element(std::string name)
      : Node(NodeKind::kElement), name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  std::string_view Prefix() const { return SplitQName(name_).first; }
  std::string_view LocalName() const { return SplitQName(name_).second; }

  // --- attributes ---
  const std::vector<Attribute>& attributes() const { return attributes_; }
  /// Returns the attribute value, or nullptr when absent.
  const std::string* GetAttribute(std::string_view name) const;
  /// Adds or replaces.
  void SetAttribute(std::string_view name, std::string_view value);
  /// Removes if present; returns whether it was present.
  bool RemoveAttribute(std::string_view name);

  // --- children ---
  const std::vector<std::unique_ptr<Node>>& children() const {
    return children_;
  }
  size_t ChildCount() const { return children_.size(); }
  Node* ChildAt(size_t i) const { return children_[i].get(); }

  /// Appends `child` and returns a raw pointer to it.
  Node* AppendChild(std::unique_ptr<Node> child);
  /// Convenience: creates and appends an Element / Text child.
  Element* AppendElement(std::string name);
  Text* AppendText(std::string data);
  /// Inserts before position `index` (clamped to [0, size]).
  Node* InsertChild(size_t index, std::unique_ptr<Node> child);
  /// Detaches the child at `index`, returning ownership.
  std::unique_ptr<Node> RemoveChildAt(size_t index);
  /// Detaches `child` if it is a direct child; null otherwise.
  std::unique_ptr<Node> RemoveChild(Node* child);
  /// Replaces `child` with `replacement`, returning the detached child.
  std::unique_ptr<Node> ReplaceChild(Node* child,
                                     std::unique_ptr<Node> replacement);
  /// Removes all children.
  void ClearChildren();
  /// Index of `child` among children, or npos.
  size_t IndexOfChild(const Node* child) const;

  /// First child element with the given qualified name (exact match), or
  /// nullptr. Empty name matches any element.
  Element* FirstChildElement(std::string_view name = {}) const;
  /// All child elements with the given qualified name (or all, when empty).
  std::vector<Element*> ChildElements(std::string_view name = {}) const;
  /// First child element matching local name, ignoring prefix.
  Element* FirstChildElementByLocalName(std::string_view local) const;

  /// Concatenation of all descendant text (used for simple-content
  /// elements such as <DigestValue>).
  std::string TextContent() const;
  /// Replaces children with a single text node.
  void SetTextContent(std::string text);

  /// Resolves `prefix` (may be empty for the default namespace) against the
  /// xmlns declarations on this element and its ancestors. Returns the
  /// namespace URI or empty string when unbound. The "xml" prefix resolves
  /// to the fixed XML namespace.
  std::string LookupNamespaceUri(std::string_view prefix) const;
  /// The namespace URI of this element itself.
  std::string NamespaceUri() const { return LookupNamespaceUri(Prefix()); }

  /// Depth-first search for a descendant-or-self element whose `Id` (or
  /// `id`) attribute equals `id`; nullptr when not found. When `count` is
  /// non-null it receives the TOTAL number of matching elements, so callers
  /// can detect the duplicate-ID ambiguity this first-match rule would
  /// otherwise hide (signature-wrapping vector; prefer IdRegistry for
  /// security-relevant resolution).
  Element* FindById(std::string_view id, size_t* count = nullptr);

  /// Depth-first pre-order visit of descendant-or-self elements.
  template <typename Fn>
  void ForEachElement(Fn&& fn) {
    fn(this);
    for (auto& child : children_) {
      if (child->IsElement()) {
        static_cast<Element*>(child.get())->ForEachElement(fn);
      }
    }
  }

  std::unique_ptr<Node> Clone() const override;
  /// Clone with the concrete type preserved.
  std::unique_ptr<Element> CloneElement() const;

 private:
  std::string name_;
  std::vector<Attribute> attributes_;
  std::vector<std::unique_ptr<Node>> children_;
};

/// A parsed document: optional leading/trailing comments and PIs plus
/// exactly one root element.
class Document {
 public:
  Document() = default;
  Document(Document&&) = default;
  Document& operator=(Document&& other) {
    if (this != &other) {
      // The outgoing nodes must die while the arena backing them is still
      // alive, so drop them before (possibly) releasing arena_.
      children_.clear();
      root_ = other.root_;
      children_ = std::move(other.children_);
      arena_ = std::move(other.arena_);
      other.root_ = nullptr;
    }
    return *this;
  }

  /// Creates a document owning `root` (for programmatic construction).
  static Document WithRoot(std::unique_ptr<Element> root);

  const std::vector<std::unique_ptr<Node>>& children() const {
    return children_;
  }
  /// The single document element; never null for a parsed document.
  Element* root() const { return root_; }

  /// Appends a top-level node; at most one element is allowed.
  Status AppendChild(std::unique_ptr<Node> child);

  /// Deep copy.
  Document Clone() const;

  /// Convenience: FindById on the root. First match in document order;
  /// `count` (when non-null) receives the total number of matches so the
  /// duplicate-ID ambiguity is detectable. Security-relevant callers should
  /// use IdRegistry (or FindByIdStrict) instead.
  Element* FindById(std::string_view id, size_t* count = nullptr) const {
    if (root_ == nullptr) {
      if (count != nullptr) *count = 0;
      return nullptr;
    }
    return root_->FindById(id, count);
  }

  /// Strict resolution: NotFound when no element declares `id`, Corruption
  /// when more than one does (the duplicate-ID wrapping vector).
  Result<Element*> FindByIdStrict(std::string_view id) const;

  /// Ties the lifetime of the arena the nodes were parsed from to this
  /// document. Null for heap-backed documents (the default).
  void set_arena(std::shared_ptr<Arena> arena) { arena_ = std::move(arena); }
  const std::shared_ptr<Arena>& arena() const { return arena_; }

 private:
  // Declared before children_ so it is destroyed after them: node
  // destructors must run before their backing memory goes away.
  std::shared_ptr<Arena> arena_;
  std::vector<std::unique_ptr<Node>> children_;
  Element* root_ = nullptr;
};

/// Document-wide index of `Id`/`id` attributes, built in one pre-order
/// pass. Unlike first-match FindById it *reports* duplicate declarations —
/// the ambiguity XML-signature-wrapping attacks exploit (a second element
/// carrying the signed Id placed where a naive resolver finds it first).
class IdRegistry {
 public:
  /// Indexes every descendant-or-self element of `doc`'s root.
  explicit IdRegistry(const Document& doc);
  /// Indexes the subtree rooted at `root` (may be null: empty registry).
  explicit IdRegistry(Element* root);

  /// Strict resolution: NotFound when absent, Corruption when `id` is
  /// declared by more than one element.
  Result<Element*> Find(std::string_view id) const;

  /// Every element declaring `id`, in document order (null when none).
  const std::vector<Element*>* AllOf(std::string_view id) const;

  /// Ids declared by more than one element, in first-seen document order.
  const std::vector<std::string>& duplicate_ids() const {
    return duplicate_ids_;
  }
  bool HasDuplicates() const { return !duplicate_ids_.empty(); }

  /// Number of distinct ids indexed.
  size_t size() const { return by_id_.size(); }

 private:
  std::map<std::string, std::vector<Element*>, std::less<>> by_id_;
  std::vector<std::string> duplicate_ids_;
};

/// Human-readable slash path of `e` from its root: each step is the element
/// name, non-root steps carrying the index among same-parent *element*
/// children — e.g. "/cluster/track[1]/manifest[0]". This is the diagnostic
/// form the see-what-is-signed verifier report uses.
std::string ElementPath(const Element* e);

/// The fixed namespace bound to the `xml` prefix.
inline constexpr char kXmlNamespace[] =
    "http://www.w3.org/XML/1998/namespace";

}  // namespace xml
}  // namespace discsec

#endif  // DISCSEC_XML_DOM_H_
