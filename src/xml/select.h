#ifndef DISCSEC_XML_SELECT_H_
#define DISCSEC_XML_SELECT_H_

#include <string_view>
#include <vector>

#include "xml/dom.h"

namespace discsec {
namespace xml {

/// A deliberately small path language for locating elements — enough for the
/// library's internal needs (manifest part lookup, policy targets) without a
/// full XPath engine:
///
///   "/cluster/track"        root-anchored child steps (by qualified name)
///   "track/manifest"        relative child steps from the context element
///   "//script"              any descendant with the given name
///   "*"                     wildcard step matching any element
///
/// Names match the *local* name when the step has no prefix, and the full
/// qualified name when it does.
std::vector<Element*> SelectAll(Element* context, std::string_view path);

/// First match or nullptr.
Element* SelectFirst(Element* context, std::string_view path);

}  // namespace xml
}  // namespace discsec

#endif  // DISCSEC_XML_SELECT_H_
