#ifndef DISCSEC_XML_SERIALIZER_H_
#define DISCSEC_XML_SERIALIZER_H_

#include <string>

#include "common/byte_sink.h"
#include "xml/dom.h"

namespace discsec {
namespace xml {

/// Serialization style.
struct SerializeOptions {
  /// When true, emit the <?xml version="1.0" encoding="UTF-8"?> declaration.
  bool xml_declaration = true;
  /// When > 0, pretty-print: each child element on its own line indented by
  /// `indent` spaces per depth. 0 produces compact output that round-trips
  /// exactly (no whitespace is added anywhere).
  int indent = 0;
};

/// Serializes a document to UTF-8 text. Compact mode output re-parses to an
/// equal tree.
///
/// The sink overloads stream the output without materializing it; the
/// string-returning forms are thin wrappers over a StringSink.
void Serialize(const Document& doc, const SerializeOptions& options,
               ByteSink* sink);
std::string Serialize(const Document& doc, const SerializeOptions& options);
std::string Serialize(const Document& doc);

/// Serializes a single element subtree (no XML declaration).
void SerializeElement(const Element& element, const SerializeOptions& options,
                      ByteSink* sink);
std::string SerializeElement(const Element& element,
                             const SerializeOptions& options);
std::string SerializeElement(const Element& element);

/// Escapes `s` for use as element character data (&, <, > and CR).
void EscapeText(std::string_view s, ByteSink* sink);
std::string EscapeText(std::string_view s);

/// Escapes `s` for use inside a double-quoted attribute value.
void EscapeAttribute(std::string_view s, ByteSink* sink);
std::string EscapeAttribute(std::string_view s);

}  // namespace xml
}  // namespace discsec

#endif  // DISCSEC_XML_SERIALIZER_H_
