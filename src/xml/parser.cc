#include "xml/parser.h"

#include <cctype>

#include "common/strings.h"

namespace discsec {
namespace xml {

namespace {

bool IsNameStartChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':' ||
         static_cast<unsigned char>(c) >= 0x80;
}

bool IsNameChar(char c) {
  return IsNameStartChar(c) || std::isdigit(static_cast<unsigned char>(c)) ||
         c == '-' || c == '.';
}

/// Encodes a Unicode code point as UTF-8.
void AppendUtf8(std::string* out, uint32_t cp) {
  if (cp < 0x80) {
    out->push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out->push_back(static_cast<char>(0xc0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
  } else if (cp < 0x10000) {
    out->push_back(static_cast<char>(0xe0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
  } else {
    out->push_back(static_cast<char>(0xf0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3f)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
  }
}

class ParserImpl {
 public:
  ParserImpl(std::string_view input, const ParseOptions& options)
      : input_(input), options_(options) {}

  Result<Document> Run() {
    Document doc;
    SkipBom();
    // Prolog: XML declaration, misc (comments/PIs/whitespace), DOCTYPE.
    DISCSEC_RETURN_IF_ERROR(ParseProlog(&doc));
    if (AtEnd() || Peek() != '<') {
      return Error("expected document element");
    }
    DISCSEC_ASSIGN_OR_RETURN(std::unique_ptr<Element> root, ParseElement(0));
    DISCSEC_RETURN_IF_ERROR(doc.AppendChild(std::move(root)));
    // Trailing misc.
    for (;;) {
      SkipWhitespace();
      if (AtEnd()) break;
      if (Lookahead("<!--")) {
        DISCSEC_ASSIGN_OR_RETURN(std::unique_ptr<Node> c, ParseComment());
        DISCSEC_RETURN_IF_ERROR(doc.AppendChild(std::move(c)));
      } else if (Lookahead("<?")) {
        DISCSEC_ASSIGN_OR_RETURN(std::unique_ptr<Node> pi, ParsePi());
        DISCSEC_RETURN_IF_ERROR(doc.AppendChild(std::move(pi)));
      } else {
        return Error("unexpected content after document element");
      }
    }
    return doc;
  }

 private:
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  char PeekAt(size_t ahead) const {
    return pos_ + ahead < input_.size() ? input_[pos_ + ahead] : '\0';
  }
  void Advance() { ++pos_; }

  bool Lookahead(std::string_view s) const {
    return input_.compare(pos_, s.size(), s) == 0;
  }

  bool Consume(std::string_view s) {
    if (Lookahead(s)) {
      pos_ += s.size();
      return true;
    }
    return false;
  }

  Status Error(const std::string& what) const {
    size_t line = 1;
    size_t col = 1;
    for (size_t i = 0; i < pos_ && i < input_.size(); ++i) {
      if (input_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    return Status::ParseError(what + " at line " + std::to_string(line) +
                              ", column " + std::to_string(col));
  }

  void SkipBom() {
    if (input_.size() >= 3 && static_cast<uint8_t>(input_[0]) == 0xef &&
        static_cast<uint8_t>(input_[1]) == 0xbb &&
        static_cast<uint8_t>(input_[2]) == 0xbf) {
      pos_ = 3;
    }
  }

  void SkipWhitespace() {
    while (!AtEnd() && (Peek() == ' ' || Peek() == '\t' || Peek() == '\r' ||
                        Peek() == '\n')) {
      Advance();
    }
  }

  Status ParseProlog(Document* doc) {
    SkipWhitespace();
    if (Consume("<?xml")) {
      size_t end = input_.find("?>", pos_);
      if (end == std::string_view::npos) return Error("unterminated XML decl");
      pos_ = end + 2;
    }
    for (;;) {
      SkipWhitespace();
      if (Lookahead("<!--")) {
        DISCSEC_ASSIGN_OR_RETURN(std::unique_ptr<Node> c, ParseComment());
        DISCSEC_RETURN_IF_ERROR(doc->AppendChild(std::move(c)));
      } else if (Lookahead("<!DOCTYPE")) {
        if (!options_.allow_doctype) {
          return Error("DOCTYPE is not allowed (player security profile)");
        }
        DISCSEC_RETURN_IF_ERROR(SkipDoctype());
      } else if (Lookahead("<?")) {
        DISCSEC_ASSIGN_OR_RETURN(std::unique_ptr<Node> pi, ParsePi());
        DISCSEC_RETURN_IF_ERROR(doc->AppendChild(std::move(pi)));
      } else {
        return Status::OK();
      }
    }
  }

  Status SkipDoctype() {
    // Skip to the matching '>' at bracket depth 0 (internal subsets nest
    // with [...]).
    pos_ += 9;  // "<!DOCTYPE"
    int bracket = 0;
    while (!AtEnd()) {
      char c = Peek();
      Advance();
      if (c == '[') ++bracket;
      if (c == ']') --bracket;
      if (c == '>' && bracket == 0) return Status::OK();
    }
    return Error("unterminated DOCTYPE");
  }

  Result<std::unique_ptr<Node>> ParseComment() {
    pos_ += 4;  // "<!--"
    size_t end = input_.find("--", pos_);
    if (end == std::string_view::npos) return Error("unterminated comment");
    std::string data(input_.substr(pos_, end - pos_));
    pos_ = end;
    if (!Consume("-->")) return Error("'--' not allowed inside comment");
    return std::unique_ptr<Node>(new Comment(std::move(data)));
  }

  Result<std::unique_ptr<Node>> ParsePi() {
    pos_ += 2;  // "<?"
    DISCSEC_ASSIGN_OR_RETURN(std::string target, ParseName());
    if (target == "xml") return Error("XML declaration not allowed here");
    SkipWhitespace();
    size_t end = input_.find("?>", pos_);
    if (end == std::string_view::npos) return Error("unterminated PI");
    std::string data(input_.substr(pos_, end - pos_));
    pos_ = end + 2;
    return std::unique_ptr<Node>(new Pi(std::move(target), std::move(data)));
  }

  Result<std::string> ParseName() {
    if (AtEnd() || !IsNameStartChar(Peek())) return Error("expected name");
    size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) Advance();
    return std::string(input_.substr(start, pos_ - start));
  }

  /// Resolves an entity or character reference starting after '&'. The
  /// total output across the document is capped (entity-expansion bombs).
  Status AppendReference(std::string* out) {
    size_t before = out->size();
    DISCSEC_RETURN_IF_ERROR(AppendReferenceUncounted(out));
    entity_output_ += out->size() - before;
    if (entity_output_ > options_.max_entity_output) {
      return Status::ResourceExhausted(
          "entity expansion output exceeds max_entity_output");
    }
    return Status::OK();
  }

  Status AppendReferenceUncounted(std::string* out) {
    size_t semi = input_.find(';', pos_);
    if (semi == std::string_view::npos || semi - pos_ > 10) {
      return Error("unterminated entity reference");
    }
    std::string_view name = input_.substr(pos_, semi - pos_);
    pos_ = semi + 1;
    if (name == "lt") {
      out->push_back('<');
    } else if (name == "gt") {
      out->push_back('>');
    } else if (name == "amp") {
      out->push_back('&');
    } else if (name == "quot") {
      out->push_back('"');
    } else if (name == "apos") {
      out->push_back('\'');
    } else if (!name.empty() && name[0] == '#') {
      uint32_t cp = 0;
      bool ok = false;
      if (name.size() > 2 && (name[1] == 'x' || name[1] == 'X')) {
        for (size_t i = 2; i < name.size(); ++i) {
          char c = name[i];
          int v = (c >= '0' && c <= '9')   ? c - '0'
                  : (c >= 'a' && c <= 'f') ? c - 'a' + 10
                  : (c >= 'A' && c <= 'F') ? c - 'A' + 10
                                           : -1;
          if (v < 0) return Error("bad hex character reference");
          cp = cp * 16 + static_cast<uint32_t>(v);
          ok = true;
        }
      } else {
        for (size_t i = 1; i < name.size(); ++i) {
          if (name[i] < '0' || name[i] > '9') {
            return Error("bad character reference");
          }
          cp = cp * 10 + static_cast<uint32_t>(name[i] - '0');
          ok = true;
        }
      }
      if (!ok || cp == 0 || cp > 0x10ffff) {
        return Error("character reference out of range");
      }
      AppendUtf8(out, cp);
    } else {
      return Error("unknown entity '" + std::string(name) +
                   "' (custom entities are not supported)");
    }
    return Status::OK();
  }

  Result<std::string> ParseAttributeValue() {
    if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
      return Error("expected quoted attribute value");
    }
    char quote = Peek();
    Advance();
    std::string out;
    while (!AtEnd() && Peek() != quote) {
      char c = Peek();
      if (c == '<') return Error("'<' in attribute value");
      if (c == '&') {
        Advance();
        DISCSEC_RETURN_IF_ERROR(AppendReference(&out));
      } else {
        // Attribute-value normalization: whitespace chars become spaces.
        if (c == '\t' || c == '\n' || c == '\r') c = ' ';
        out.push_back(c);
        Advance();
      }
    }
    if (AtEnd()) return Error("unterminated attribute value");
    Advance();  // closing quote
    return out;
  }

  Result<std::unique_ptr<Element>> ParseElement(size_t depth) {
    if (depth > options_.max_depth) {
      return Status::ResourceExhausted("XML nesting exceeds max_depth");
    }
    Advance();  // '<'
    DISCSEC_ASSIGN_OR_RETURN(std::string name, ParseName());
    auto elem = std::make_unique<Element>(name);
    // Attributes.
    size_t attribute_count = 0;
    for (;;) {
      SkipWhitespace();
      if (AtEnd()) return Error("unterminated start tag");
      if (Peek() == '>' || Lookahead("/>")) break;
      if (++attribute_count > options_.max_attributes) {
        return Status::ResourceExhausted(
            "attribute count exceeds max_attributes on <" + name + ">");
      }
      DISCSEC_ASSIGN_OR_RETURN(std::string attr_name, ParseName());
      SkipWhitespace();
      if (!Consume("=")) return Error("expected '=' after attribute name");
      SkipWhitespace();
      DISCSEC_ASSIGN_OR_RETURN(std::string value, ParseAttributeValue());
      if (elem->GetAttribute(attr_name) != nullptr) {
        return Error("duplicate attribute '" + attr_name + "'");
      }
      elem->SetAttribute(attr_name, value);
    }
    if (Consume("/>")) return elem;
    Advance();  // '>'

    // Content.
    std::string text;
    auto flush_text = [&]() {
      if (!text.empty()) {
        elem->AppendText(std::move(text));
        text.clear();
      }
    };
    for (;;) {
      if (AtEnd()) return Error("unterminated element <" + name + ">");
      char c = Peek();
      if (c == '<') {
        if (Lookahead("</")) {
          flush_text();
          pos_ += 2;
          DISCSEC_ASSIGN_OR_RETURN(std::string end_name, ParseName());
          if (end_name != name) {
            return Error("mismatched end tag </" + end_name + "> for <" +
                         name + ">");
          }
          SkipWhitespace();
          if (!Consume(">")) return Error("expected '>' in end tag");
          return elem;
        }
        if (Lookahead("<!--")) {
          flush_text();
          DISCSEC_ASSIGN_OR_RETURN(std::unique_ptr<Node> comment,
                                   ParseComment());
          elem->AppendChild(std::move(comment));
        } else if (Lookahead("<![CDATA[")) {
          pos_ += 9;
          size_t end = input_.find("]]>", pos_);
          if (end == std::string_view::npos) {
            return Error("unterminated CDATA section");
          }
          text.append(input_.substr(pos_, end - pos_));
          pos_ = end + 3;
        } else if (Lookahead("<?")) {
          flush_text();
          DISCSEC_ASSIGN_OR_RETURN(std::unique_ptr<Node> pi, ParsePi());
          elem->AppendChild(std::move(pi));
        } else {
          flush_text();
          DISCSEC_ASSIGN_OR_RETURN(std::unique_ptr<Element> child,
                                   ParseElement(depth + 1));
          elem->AppendChild(std::move(child));
        }
      } else if (c == '&') {
        Advance();
        DISCSEC_RETURN_IF_ERROR(AppendReference(&text));
      } else {
        if (c == ']' && Lookahead("]]>")) {
          return Error("']]>' not allowed in content");
        }
        // Line-end normalization.
        if (c == '\r') {
          text.push_back('\n');
          Advance();
          if (!AtEnd() && Peek() == '\n') Advance();
        } else {
          text.push_back(c);
          Advance();
        }
      }
    }
  }

  std::string_view input_;
  const ParseOptions& options_;
  size_t pos_ = 0;
  size_t entity_output_ = 0;
};

}  // namespace

Result<Document> Parse(std::string_view input, const ParseOptions& options) {
  obs::ScopedSpan span(options.tracer, "xml.parse");
  span.SetAttr("bytes", static_cast<uint64_t>(input.size()));
  if (input.size() > options.max_input) {
    return Status::ResourceExhausted("XML input exceeds max_input");
  }
  ArenaScope arena_scope(options.arena.get());
  ParserImpl parser(input, options);
  Result<Document> result = parser.Run();
  if (!result.ok()) span.SetAttr("error", result.status().ToString());
  if (result.ok() && options.arena != nullptr) {
    result.value().set_arena(options.arena);
  }
  return result;
}

Result<Document> Parse(std::string_view input) {
  ParseOptions options;
  return Parse(input, options);
}

}  // namespace xml
}  // namespace discsec
