#include "xml/dom.h"

#include <algorithm>

namespace discsec {
namespace xml {

std::pair<std::string_view, std::string_view> SplitQName(std::string_view q) {
  size_t colon = q.find(':');
  if (colon == std::string_view::npos) {
    return {std::string_view(), q};
  }
  return {q.substr(0, colon), q.substr(colon + 1)};
}

const std::string* Element::GetAttribute(std::string_view name) const {
  for (const auto& attr : attributes_) {
    if (attr.name == name) return &attr.value;
  }
  return nullptr;
}

void Element::SetAttribute(std::string_view name, std::string_view value) {
  for (auto& attr : attributes_) {
    if (attr.name == name) {
      attr.value = std::string(value);
      return;
    }
  }
  attributes_.push_back({std::string(name), std::string(value)});
}

bool Element::RemoveAttribute(std::string_view name) {
  for (auto it = attributes_.begin(); it != attributes_.end(); ++it) {
    if (it->name == name) {
      attributes_.erase(it);
      return true;
    }
  }
  return false;
}

Node* Element::AppendChild(std::unique_ptr<Node> child) {
  child->parent_ = this;
  children_.push_back(std::move(child));
  return children_.back().get();
}

Element* Element::AppendElement(std::string name) {
  return static_cast<Element*>(
      AppendChild(std::make_unique<Element>(std::move(name))));
}

Text* Element::AppendText(std::string data) {
  return static_cast<Text*>(
      AppendChild(std::make_unique<Text>(std::move(data))));
}

Node* Element::InsertChild(size_t index, std::unique_ptr<Node> child) {
  if (index > children_.size()) index = children_.size();
  child->parent_ = this;
  auto it = children_.insert(children_.begin() + index, std::move(child));
  return it->get();
}

std::unique_ptr<Node> Element::RemoveChildAt(size_t index) {
  if (index >= children_.size()) return nullptr;
  std::unique_ptr<Node> out = std::move(children_[index]);
  children_.erase(children_.begin() + index);
  out->parent_ = nullptr;
  return out;
}

std::unique_ptr<Node> Element::RemoveChild(Node* child) {
  size_t idx = IndexOfChild(child);
  if (idx == static_cast<size_t>(-1)) return nullptr;
  return RemoveChildAt(idx);
}

std::unique_ptr<Node> Element::ReplaceChild(Node* child,
                                            std::unique_ptr<Node> replacement) {
  size_t idx = IndexOfChild(child);
  if (idx == static_cast<size_t>(-1)) return nullptr;
  replacement->parent_ = this;
  std::unique_ptr<Node> old = std::move(children_[idx]);
  children_[idx] = std::move(replacement);
  old->parent_ = nullptr;
  return old;
}

void Element::ClearChildren() { children_.clear(); }

size_t Element::IndexOfChild(const Node* child) const {
  for (size_t i = 0; i < children_.size(); ++i) {
    if (children_[i].get() == child) return i;
  }
  return static_cast<size_t>(-1);
}

Element* Element::FirstChildElement(std::string_view name) const {
  for (const auto& child : children_) {
    if (!child->IsElement()) continue;
    auto* elem = static_cast<Element*>(child.get());
    if (name.empty() || elem->name() == name) return elem;
  }
  return nullptr;
}

std::vector<Element*> Element::ChildElements(std::string_view name) const {
  std::vector<Element*> out;
  for (const auto& child : children_) {
    if (!child->IsElement()) continue;
    auto* elem = static_cast<Element*>(child.get());
    if (name.empty() || elem->name() == name) out.push_back(elem);
  }
  return out;
}

Element* Element::FirstChildElementByLocalName(std::string_view local) const {
  for (const auto& child : children_) {
    if (!child->IsElement()) continue;
    auto* elem = static_cast<Element*>(child.get());
    if (elem->LocalName() == local) return elem;
  }
  return nullptr;
}

namespace {

void AppendTextContent(const Element& e, std::string* out) {
  for (const auto& child : e.children()) {
    if (child->IsText()) {
      *out += static_cast<const Text*>(child.get())->data();
    } else if (child->IsElement()) {
      AppendTextContent(*static_cast<const Element*>(child.get()), out);
    }
  }
}

}  // namespace

std::string Element::TextContent() const {
  // One output buffer for the whole subtree — the recursion used to build
  // (and discard) an intermediate string per nested element.
  std::string out;
  AppendTextContent(*this, &out);
  return out;
}

void Element::SetTextContent(std::string text) {
  ClearChildren();
  AppendText(std::move(text));
}

std::string Element::LookupNamespaceUri(std::string_view prefix) const {
  if (prefix == "xml") return kXmlNamespace;
  // Match xmlns / xmlns:prefix in place — this is the canonicalizer's
  // innermost lookup, so it must not build a temporary declaration name.
  for (const Element* e = this; e != nullptr; e = e->parent()) {
    for (const Attribute& attr : e->attributes_) {
      if (prefix.empty()) {
        if (attr.name == "xmlns") return attr.value;
      } else if (attr.name.size() == 6 + prefix.size() &&
                 attr.name.compare(0, 6, "xmlns:") == 0 &&
                 std::string_view(attr.name).substr(6) == prefix) {
        return attr.value;
      }
    }
  }
  return std::string();
}

namespace {

/// The value of the element's ID attribute (`Id` preferred over `id`), or
/// null when it carries neither.
const std::string* IdAttributeOf(const Element& e) {
  const std::string* v = e.GetAttribute("Id");
  if (v == nullptr) v = e.GetAttribute("id");
  return v;
}

}  // namespace

Element* Element::FindById(std::string_view id, size_t* count) {
  Element* found = nullptr;
  size_t matches = 0;
  ForEachElement([&](Element* e) {
    const std::string* v = IdAttributeOf(*e);
    if (v != nullptr && *v == id) {
      ++matches;
      if (found == nullptr) found = e;
    }
  });
  if (count != nullptr) *count = matches;
  return found;
}

std::unique_ptr<Node> Element::Clone() const { return CloneElement(); }

std::unique_ptr<Element> Element::CloneElement() const {
  auto copy = std::make_unique<Element>(name_);
  copy->attributes_ = attributes_;
  for (const auto& child : children_) {
    copy->AppendChild(child->Clone());
  }
  return copy;
}

Document Document::WithRoot(std::unique_ptr<Element> root) {
  Document doc;
  doc.root_ = root.get();
  doc.children_.push_back(std::move(root));
  return doc;
}

Status Document::AppendChild(std::unique_ptr<Node> child) {
  if (child->IsText()) {
    return Status::InvalidArgument("text not allowed at document level");
  }
  if (child->IsElement()) {
    if (root_ != nullptr) {
      return Status::InvalidArgument("document already has a root element");
    }
    root_ = static_cast<Element*>(child.get());
  }
  children_.push_back(std::move(child));
  return Status::OK();
}

Document Document::Clone() const {
  Document copy;
  for (const auto& child : children_) {
    auto cloned = child->Clone();
    if (cloned->IsElement()) {
      copy.root_ = static_cast<Element*>(cloned.get());
    }
    copy.children_.push_back(std::move(cloned));
  }
  return copy;
}

Result<Element*> Document::FindByIdStrict(std::string_view id) const {
  return IdRegistry(*this).Find(id);
}

IdRegistry::IdRegistry(const Document& doc) : IdRegistry(doc.root()) {}

IdRegistry::IdRegistry(Element* root) {
  if (root == nullptr) return;
  root->ForEachElement([&](Element* e) {
    const std::string* v = IdAttributeOf(*e);
    if (v == nullptr) return;
    std::vector<Element*>& bucket = by_id_[*v];
    bucket.push_back(e);
    if (bucket.size() == 2) duplicate_ids_.push_back(*v);
  });
}

Result<Element*> IdRegistry::Find(std::string_view id) const {
  auto it = by_id_.find(id);
  if (it == by_id_.end()) {
    return Status::NotFound("no element with Id '" + std::string(id) + "'");
  }
  if (it->second.size() > 1) {
    return Status::Corruption(
        "Id '" + std::string(id) + "' is ambiguous: declared by " +
        std::to_string(it->second.size()) +
        " elements (duplicate-ID wrapping)");
  }
  return it->second.front();
}

const std::vector<Element*>* IdRegistry::AllOf(std::string_view id) const {
  auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : &it->second;
}

std::string ElementPath(const Element* e) {
  if (e == nullptr) return std::string();
  std::vector<std::string> steps;
  for (const Element* cur = e; cur != nullptr; cur = cur->parent()) {
    if (cur->parent() == nullptr) {
      steps.push_back(cur->name());
      break;
    }
    size_t index = 0;
    for (const auto& sibling : cur->parent()->children()) {
      if (sibling.get() == cur) break;
      if (sibling->IsElement()) ++index;
    }
    steps.push_back(cur->name() + "[" + std::to_string(index) + "]");
  }
  std::string path;
  for (auto it = steps.rbegin(); it != steps.rend(); ++it) {
    path += "/" + *it;
  }
  return path;
}

}  // namespace xml
}  // namespace discsec
