#include "xml/arena.h"

#include <atomic>
#include <cstdlib>
#include <new>

#include "xml/dom.h"

namespace discsec {
namespace xml {

namespace {

constexpr size_t kAlign = 16;

// Process-wide cumulative counters (relaxed: observability only, no
// ordering is derived from them).
std::atomic<size_t> g_bytes_reserved{0};
std::atomic<size_t> g_bytes_used{0};
std::atomic<size_t> g_allocations{0};
std::atomic<size_t> g_resets{0};

thread_local Arena* g_current_arena = nullptr;

constexpr size_t AlignUp(size_t n) { return (n + (kAlign - 1)) & ~(kAlign - 1); }

}  // namespace

Arena::Arena(size_t block_size) : block_size_(block_size == 0 ? kDefaultBlockSize : block_size) {}

Arena::~Arena() = default;

void Arena::AddBlock(size_t capacity) {
  Block block;
  block.data = std::make_unique<uint8_t[]>(capacity);
  block.capacity = capacity;
  blocks_.push_back(std::move(block));
  stats_.bytes_reserved += capacity;
  g_bytes_reserved.fetch_add(capacity, std::memory_order_relaxed);
}

void* Arena::Allocate(size_t size) {
  size = AlignUp(size == 0 ? 1 : size);
  stats_.bytes_used += size;
  ++stats_.allocations;
  g_bytes_used.fetch_add(size, std::memory_order_relaxed);
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (size > block_size_) {
    // Oversized request: a dedicated block outside the bump sequence.
    Block block;
    block.data = std::make_unique<uint8_t[]>(size);
    block.capacity = size;
    stats_.bytes_reserved += size;
    g_bytes_reserved.fetch_add(size, std::memory_order_relaxed);
    oversized_.push_back(std::move(block));
    return oversized_.back().data.get();
  }
  // Every bump block has capacity block_size_, so after advancing (or
  // appending) the request always fits.
  if (blocks_.empty()) AddBlock(block_size_);
  if (offset_ + size > blocks_[current_].capacity) {
    ++current_;
    offset_ = 0;
    if (current_ >= blocks_.size()) AddBlock(block_size_);
  }
  uint8_t* ptr = blocks_[current_].data.get() + offset_;
  offset_ += size;
  return ptr;
}

void Arena::Reset() {
  current_ = 0;
  offset_ = 0;
  oversized_.clear();  // odd sizes are not reusable across generations
  ++stats_.resets;
  g_resets.fetch_add(1, std::memory_order_relaxed);
}

ArenaScope::ArenaScope(Arena* arena) : previous_(g_current_arena) {
  if (arena != nullptr) g_current_arena = arena;
}

ArenaScope::~ArenaScope() { g_current_arena = previous_; }

Arena* CurrentArena() { return g_current_arena; }

ArenaStats GlobalArenaStats() {
  ArenaStats stats;
  stats.bytes_reserved = g_bytes_reserved.load(std::memory_order_relaxed);
  stats.bytes_used = g_bytes_used.load(std::memory_order_relaxed);
  stats.allocations = g_allocations.load(std::memory_order_relaxed);
  stats.resets = g_resets.load(std::memory_order_relaxed);
  return stats;
}

// --- Node arena hooks (declared in xml/dom.h) -------------------------------
//
// Every Node allocation carries a 16-byte header tagging its origin, so
// `delete` (always reached through Node's virtual destructor) can tell an
// arena node (header non-zero: memory is reclaimed when the arena dies)
// from a heap node (header zero: free it now). Clones and pool-worker
// allocations happen outside any ArenaScope and therefore stay on the heap
// even when the document they join is arena-backed.

namespace {
constexpr size_t kHeader = 16;
constexpr uint64_t kArenaTag = 0x415245'4e41ull;  // "ARENA"
}  // namespace

void* Node::operator new(size_t size) {
  Arena* arena = g_current_arena;
  if (arena != nullptr) {
    auto* raw = static_cast<uint8_t*>(arena->Allocate(size + kHeader));
    *reinterpret_cast<uint64_t*>(raw) = kArenaTag;
    return raw + kHeader;
  }
  auto* raw = static_cast<uint8_t*>(::operator new(size + kHeader));
  *reinterpret_cast<uint64_t*>(raw) = 0;
  return raw + kHeader;
}

void Node::operator delete(void* ptr) {
  if (ptr == nullptr) return;
  auto* raw = static_cast<uint8_t*>(ptr) - kHeader;
  if (*reinterpret_cast<uint64_t*>(raw) == kArenaTag) return;  // arena-owned
  ::operator delete(raw);
}

}  // namespace xml
}  // namespace discsec
