#ifndef DISCSEC_XML_STREAM_VERIFY_H_
#define DISCSEC_XML_STREAM_VERIFY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/byte_sink.h"
#include "common/result.h"
#include "xml/dom.h"
#include "xml/parser.h"

namespace discsec {
namespace xml {

/// Single-pass verify fast path (DESIGN.md §14): StreamLexer re-tokenizes
/// the exact source text a document was parsed from, StreamingC14N turns
/// the token stream into Canonical XML octets, and the verifier points the
/// output at a DigestSink — lex → canonicalize → digest fused into one pass
/// with no DOM clone, no canonicalization tree walk and no intermediate
/// buffers. The pipeline is verify-only: any divergence from the DOM path
/// changes the computed digest and therefore can only cause a *rejection*
/// (the signed DigestValue no longer matches), never a false Valid.

/// Pull-based XML tokenizer over raw source text.
///
/// Token-for-node faithful to the DOM parser (src/xml/parser.cc): the same
/// ParseOptions bounds with the same ResourceExhausted messages, the same
/// ParseError strings and line/column positions, the same text coalescing
/// (CDATA folded raw into adjacent character data, entity and character
/// references expanded, \r / \r\n normalized to \n outside CDATA), the same
/// attribute-value normalization. One kText token is produced exactly where
/// the DOM parser would have produced one Text node, so child indices
/// derived from the stream match xmldsig::ComputePath on the parsed tree.
class StreamLexer {
 public:
  enum class TokenKind {
    kStartElement,  ///< name + attributes (an end token always follows later)
    kEndElement,    ///< name; synthesized for self-closing tags too
    kText,          ///< coalesced character data (never empty)
    kComment,       ///< data between <!-- and -->
    kPi,            ///< name = target, value = data
    kEndDocument,   ///< input fully consumed
  };

  /// Views are valid only until the next call to Next(): name/value either
  /// point into the source text or into internal scratch reused per token.
  struct Token {
    TokenKind kind = TokenKind::kEndDocument;
    std::string_view name;
    std::string_view value;
    const std::vector<Attribute>* attributes = nullptr;  // kStartElement only
  };

  /// `input` must outlive the lexer; `options` is copied.
  StreamLexer(std::string_view input, const ParseOptions& options);

  /// Advances to the next token, ending with kEndDocument. After an error
  /// the lexer is in an unspecified state and must not be advanced again.
  Result<Token> Next();

  /// Byte offset of the '<' that opened the most recent kStartElement token.
  size_t StartTagOffset() const { return start_tag_offset_; }

  /// Current byte offset. Immediately after a kEndElement token this is one
  /// past the element's closing '>' (or '/>'), so
  /// [StartTagOffset(), Offset()) brackets a whole element's source bytes.
  size_t Offset() const { return pos_; }

 private:
  enum class Phase { kInit, kProlog, kContent, kEpilog, kDone };

  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  void Advance() { ++pos_; }
  bool Lookahead(std::string_view s) const;
  bool Consume(std::string_view s);
  Status Error(const std::string& what) const;
  void SkipWhitespace();
  Result<Token> NextProlog();
  Result<Token> NextContent();
  Result<Token> NextEpilog();
  Result<Token> ParseStartTag();
  Result<Token> ParseComment();
  Result<Token> ParsePi();
  Result<std::string_view> ParseName();
  Status ParseAttributeValue(std::string* out);
  Status AppendReference(std::string* out);
  Status AppendReferenceUncounted(std::string* out);
  Status SkipDoctype();

  std::string_view input_;
  ParseOptions options_;
  size_t pos_ = 0;
  size_t start_tag_offset_ = 0;
  size_t entity_output_ = 0;
  Phase phase_ = Phase::kInit;
  std::vector<std::string_view> open_;  ///< start-tag names, innermost last
  bool pending_end_ = false;  ///< a self-closing tag owes its end token
  std::string text_;          ///< scratch for the current kText token
  std::vector<Attribute> attrs_;  ///< scratch for the current start tag
};

/// What StreamingC14N should emit. Inclusive C14N only (with or without
/// comments) — the verifier falls back to the DOM path for exclusive C14N.
struct StreamingC14NOptions {
  bool with_comments = false;
  /// Child-index path (xmldsig::ComputePath form, all node kinds counted)
  /// of the subtree to canonicalize as a document-subset apex: it inherits
  /// ancestor namespace declarations and xml:* attributes per the C14N
  /// rules. Null canonicalizes the whole document (document-level PIs and
  /// comments included per the #xA placement rules).
  const std::vector<size_t>* apex_path = nullptr;
  /// Child-index path of one subtree to omit entirely — the enveloped
  /// ds:Signature. The omitted subtree still occupies its child index.
  const std::vector<size_t>* skip_path = nullptr;
};

/// Streaming Canonical XML filter: feed it every token from a StreamLexer
/// (kEndDocument excluded), then call Finish(). Canonical octets for the
/// selected subset appear on `out` as the stream passes by.
class StreamingC14N {
 public:
  /// `options` (and the paths it points at) and `out` must outlive this.
  StreamingC14N(const StreamingC14NOptions& options, ByteSink* out);

  Status Consume(const StreamLexer::Token& token);

  /// Arms (or replaces) the skip subtree mid-stream, BEFORE the skip root's
  /// kStartElement is consumed. The fused scan+canonicalize pass uses this
  /// the moment the scanner recognizes the signature's start tag — the
  /// filter itself never has to resolve namespaces speculatively.
  void SetSkipPath(const std::vector<size_t>* path) {
    options_.skip_path = path;
  }

  /// Validates that the requested apex was actually reached.
  Status Finish() const;

 private:
  // Owned strings: attribute values live in the lexer's per-tag scratch and
  // do not survive past the next token, but these stacks span the subtree.
  struct NsEntry {
    std::string prefix;
    std::string uri;
  };
  struct Frame {
    std::string_view name;
    size_t ns_mark = 0;        ///< in_scope_ size to restore on end
    size_t rendered_mark = 0;  ///< rendered_ size to restore on end
    size_t child_count = 0;    ///< next child index (all node kinds)
    bool emitted = false;
    bool tracked_xml_attrs = false;
    std::vector<Attribute> saved_xml_attrs;  ///< pre-element inherited state
  };

  Status OnStart(const StreamLexer::Token& token);
  Status OnEnd();
  void OnText(std::string_view data);
  void OnComment(std::string_view data);
  void OnPi(std::string_view target, std::string_view data);
  void EmitStart(std::string_view name, const std::vector<Attribute>& attrs,
                 const std::vector<NsEntry>* extra_ns,
                 const std::vector<Attribute>* extra_attrs);
  const std::string* RenderedValue(std::string_view prefix) const;
  std::string_view LookupInScope(std::string_view prefix) const;
  bool Emitting() const;

  StreamingC14NOptions options_;
  ByteSink* out_;
  // Per-element scratch reused across EmitStart calls so the steady-state
  // emit loop stays allocation-free (capacity persists, clear() is cheap).
  struct KeyedAttr {
    std::string uri;
    std::string_view local;
    const Attribute* attr = nullptr;
  };
  std::vector<NsEntry> scratch_declared_;
  std::vector<const NsEntry*> scratch_to_render_;
  std::vector<const Attribute*> scratch_merged_;
  std::vector<KeyedAttr> scratch_keyed_;
  std::vector<NsEntry> in_scope_;   ///< declarations of every open element
  std::vector<NsEntry> rendered_;   ///< namespace nodes written to output
  std::vector<Attribute> xml_attrs_;  ///< inheritable xml:* state (apex mode)
  std::vector<Frame> frames_;       ///< open non-skipped elements
  std::vector<size_t> path_;        ///< child-index path of innermost element
  size_t skip_depth_ = 0;           ///< >0 while inside the skipped subtree
  bool in_apex_ = false;
  bool apex_done_ = false;
  size_t apex_frame_depth_ = 0;
  bool seen_root_ = false;
};

/// Drives StreamLexer + StreamingC14N over `source` in one pass. Parse
/// errors and resource-limit violations surface with the DOM parser's exact
/// messages. Bumps StreamedCanonicalizationCount() on success.
Status StreamCanonicalize(std::string_view source,
                          const ParseOptions& parse_options,
                          const StreamingC14NOptions& options, ByteSink* out);

/// One element matched by ScanForSignatures, with everything needed to
/// parse its subtree out of context: the exact source byte range, its
/// child-index path, and the namespace / xml:* environment inherited from
/// ancestors at its start tag (the element's own declarations are inside
/// the byte range and excluded here).
struct ScannedSignature {
  std::vector<size_t> path;  ///< xmldsig::ComputePath form (all node kinds)
  size_t begin = 0;          ///< offset of the opening '<'
  size_t end = 0;            ///< one past the closing '>' / '/>'
  /// In-scope declarations, innermost-wins, one entry per distinct name
  /// ("xmlns" or "xmlns:p"). Values are the unescaped URIs.
  std::vector<Attribute> ns_in_scope;
  /// Inherited xml:* attributes (xml:lang, xml:space, ...), innermost-wins.
  std::vector<Attribute> xml_attrs;
};

/// One Id-bearing element ('Id' preferred over 'id', exactly like
/// xml::IdRegistry).
struct ScannedId {
  std::vector<size_t> path;  ///< xmldsig::ComputePath form
  std::string element_name;  ///< qualified name as written
  std::string element_path;  ///< xml::ElementPath format
  size_t count = 0;          ///< elements declaring this id (>1 = ambiguous)
};

/// Everything the wire-level verify fast path needs to know about a
/// document without building its DOM.
struct SignatureScanResult {
  std::string root_name;  ///< qualified name of the document element
  std::unordered_map<std::string, ScannedId> ids;
  std::vector<ScannedSignature> signatures;  ///< document (pre-)order
};

/// Single StreamLexer pass over `source` locating every {ns_uri}local_name
/// element and every Id attribute. Enforces the full ParseOptions bounds
/// and fails with the DOM parser's exact error for malformed input, so a
/// successful scan implies xml::Parse would have succeeded too.
Result<SignatureScanResult> ScanForSignatures(std::string_view source,
                                              const ParseOptions& parse_options,
                                              std::string_view ns_uri,
                                              std::string_view local_name);

/// Indexes exactly the Id values in `ids` (duplicate counting included) —
/// the pass a #id reference triggers when the fused scan ran id-free.
/// Only the `ids` field of the result is meaningful.
Result<SignatureScanResult> ScanForIds(std::string_view source,
                                       const ParseOptions& parse_options,
                                       const std::vector<std::string>& ids);

/// The fused single pass behind Verifier::VerifyStream: ONE lexer run both
/// scans (everything ScanForSignatures reports) and speculatively emits the
/// whole document's Canonical XML (without comments) with the FIRST matched
/// signature subtree omitted — i.e. exactly the reference octets of the
/// dominant [enveloped-signature, C14N] whole-document shape. When the
/// signature's SignedInfo later confirms that shape, the buffered octets
/// feed the digest directly and the source is never traversed again; any
/// other shape just reuses the scan and re-canonicalizes per reference.
/// No signature in the document leaves `canonical` holding the plain
/// whole-document canonical form (nothing omitted).
Result<SignatureScanResult> ScanAndCanonicalize(
    std::string_view source, const ParseOptions& parse_options,
    std::string_view ns_uri, std::string_view local_name,
    std::string* canonical);

/// Process-wide count of completed streaming canonicalization passes — the
/// instrumentation tests and benches use to prove the fast path engaged.
size_t StreamedCanonicalizationCount();

namespace internal {
void NoteStreamedCanonicalization();
}  // namespace internal

}  // namespace xml
}  // namespace discsec

#endif  // DISCSEC_XML_STREAM_VERIFY_H_
