#include "xml/serializer.h"

#include <array>

namespace discsec {
namespace xml {

namespace {

/// 256-entry byte classifier marking exactly the bytes an escaper rewrites.
constexpr std::array<bool, 256> MakeStopTable(std::string_view stops) {
  std::array<bool, 256> table{};
  for (char c : stops) table[static_cast<unsigned char>(c)] = true;
  return table;
}

constexpr std::array<bool, 256> kTextStops = MakeStopTable("&<>\r");
constexpr std::array<bool, 256> kAttributeStops = MakeStopTable("&<\"\t\n\r");

/// Shared run-based escaper: the inner loop is a pure table scan, so
/// `replacement` (which maps a stop byte to its entity) is only consulted
/// at the rare bytes that actually need rewriting, and unescaped spans are
/// appended in bulk — the sink sees long contiguous writes, not one call
/// per character.
template <typename Replacement>
void EscapeRuns(std::string_view s, const std::array<bool, 256>& stops,
                Replacement replacement, ByteSink* sink) {
  const size_t n = s.size();
  size_t start = 0;
  size_t i = 0;
  while (i < n) {
    while (i < n && !stops[static_cast<unsigned char>(s[i])]) ++i;
    if (i == n) break;
    if (i > start) sink->Append(s.substr(start, i - start));
    sink->Append(std::string_view(replacement(s[i])));
    start = ++i;
  }
  if (start < n) sink->Append(s.substr(start));
}

const char* TextEntity(char c) {
  switch (c) {
    case '&':
      return "&amp;";
    case '<':
      return "&lt;";
    case '>':
      return "&gt;";
    case '\r':
      return "&#xD;";
    default:
      return nullptr;
  }
}

const char* AttributeEntity(char c) {
  switch (c) {
    case '&':
      return "&amp;";
    case '<':
      return "&lt;";
    case '"':
      return "&quot;";
    case '\t':
      return "&#x9;";
    case '\n':
      return "&#xA;";
    case '\r':
      return "&#xD;";
    default:
      return nullptr;
  }
}

}  // namespace

void EscapeText(std::string_view s, ByteSink* sink) {
  EscapeRuns(s, kTextStops, TextEntity, sink);
}

std::string EscapeText(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  StringSink sink(&out);
  EscapeText(s, &sink);
  return out;
}

void EscapeAttribute(std::string_view s, ByteSink* sink) {
  EscapeRuns(s, kAttributeStops, AttributeEntity, sink);
}

std::string EscapeAttribute(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  StringSink sink(&out);
  EscapeAttribute(s, &sink);
  return out;
}

namespace {

void SerializeNode(const Node& node, const SerializeOptions& options,
                   int depth, ByteSink* out);

/// Lower bound on the serialized size of `node` (escapes and indentation
/// excluded) — lets the string-returning wrappers reserve once instead of
/// growing the output through repeated reallocation.
size_t EstimateSize(const Node& node) {
  switch (node.kind()) {
    case NodeKind::kElement: {
      const auto& e = static_cast<const Element&>(node);
      size_t n = 2 * e.name().size() + 5;
      for (const auto& attr : e.attributes()) {
        n += attr.name.size() + attr.value.size() + 4;
      }
      for (const auto& child : e.children()) n += EstimateSize(*child);
      return n;
    }
    case NodeKind::kText:
      return static_cast<const Text&>(node).data().size();
    case NodeKind::kComment:
      return static_cast<const Comment&>(node).data().size() + 7;
    case NodeKind::kProcessingInstruction: {
      const auto& pi = static_cast<const Pi&>(node);
      return pi.target().size() + pi.data().size() + 5;
    }
  }
  return 0;
}

void Indent(const SerializeOptions& options, int depth, ByteSink* out) {
  if (options.indent > 0) {
    static const char kSpaces[] = "                                ";
    out->Append('\n');
    size_t n = static_cast<size_t>(options.indent * depth);
    while (n > 0) {
      size_t chunk = n < sizeof(kSpaces) - 1 ? n : sizeof(kSpaces) - 1;
      out->Append(std::string_view(kSpaces, chunk));
      n -= chunk;
    }
  }
}

bool HasElementChildrenOnly(const Element& e) {
  bool any = false;
  for (const auto& child : e.children()) {
    if (child->IsText()) return false;
    any = true;
  }
  return any;
}

void SerializeElementImpl(const Element& e, const SerializeOptions& options,
                          int depth, ByteSink* out) {
  out->Append('<');
  out->Append(e.name());
  for (const auto& attr : e.attributes()) {
    out->Append(' ');
    out->Append(attr.name);
    out->Append("=\"");
    EscapeAttribute(attr.value, out);
    out->Append('"');
  }
  if (e.children().empty()) {
    out->Append("/>");
    return;
  }
  out->Append('>');
  // Only pretty-print inside elements with no text children, otherwise the
  // added whitespace would change the text content.
  bool pretty_inside = options.indent > 0 && HasElementChildrenOnly(e);
  for (const auto& child : e.children()) {
    if (pretty_inside) Indent(options, depth + 1, out);
    SerializeNode(*child, options, depth + 1, out);
  }
  if (pretty_inside) Indent(options, depth, out);
  out->Append("</");
  out->Append(e.name());
  out->Append('>');
}

void SerializeNode(const Node& node, const SerializeOptions& options,
                   int depth, ByteSink* out) {
  switch (node.kind()) {
    case NodeKind::kElement:
      SerializeElementImpl(static_cast<const Element&>(node), options, depth,
                           out);
      break;
    case NodeKind::kText:
      EscapeText(static_cast<const Text&>(node).data(), out);
      break;
    case NodeKind::kComment:
      out->Append("<!--");
      out->Append(static_cast<const Comment&>(node).data());
      out->Append("-->");
      break;
    case NodeKind::kProcessingInstruction: {
      const auto& pi = static_cast<const Pi&>(node);
      out->Append("<?");
      out->Append(pi.target());
      if (!pi.data().empty()) {
        out->Append(' ');
        out->Append(pi.data());
      }
      out->Append("?>");
      break;
    }
  }
}

}  // namespace

void Serialize(const Document& doc, const SerializeOptions& options,
               ByteSink* sink) {
  if (options.xml_declaration) {
    sink->Append("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
    if (options.indent > 0) sink->Append('\n');
  }
  bool first = true;
  for (const auto& child : doc.children()) {
    if (!first && options.indent > 0) sink->Append('\n');
    SerializeNode(*child, options, 0, sink);
    first = false;
  }
}

std::string Serialize(const Document& doc, const SerializeOptions& options) {
  std::string out;
  size_t estimate = options.xml_declaration ? 40 : 0;
  for (const auto& child : doc.children()) estimate += EstimateSize(*child);
  out.reserve(estimate);
  StringSink sink(&out);
  Serialize(doc, options, &sink);
  return out;
}

std::string Serialize(const Document& doc) {
  SerializeOptions options;
  return Serialize(doc, options);
}

void SerializeElement(const Element& element, const SerializeOptions& options,
                      ByteSink* sink) {
  SerializeElementImpl(element, options, 0, sink);
}

std::string SerializeElement(const Element& element,
                             const SerializeOptions& options) {
  std::string out;
  out.reserve(EstimateSize(element));
  StringSink sink(&out);
  SerializeElement(element, options, &sink);
  return out;
}

std::string SerializeElement(const Element& element) {
  SerializeOptions options;
  return SerializeElement(element, options);
}

}  // namespace xml
}  // namespace discsec
