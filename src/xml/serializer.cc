#include "xml/serializer.h"

namespace discsec {
namespace xml {

std::string EscapeText(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '\r':
        out += "&#xD;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string EscapeAttribute(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\t':
        out += "&#x9;";
        break;
      case '\n':
        out += "&#xA;";
        break;
      case '\r':
        out += "&#xD;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

namespace {

void SerializeNode(const Node& node, const SerializeOptions& options,
                   int depth, std::string* out);

void Indent(const SerializeOptions& options, int depth, std::string* out) {
  if (options.indent > 0) {
    out->push_back('\n');
    out->append(static_cast<size_t>(options.indent * depth), ' ');
  }
}

bool HasElementChildrenOnly(const Element& e) {
  bool any = false;
  for (const auto& child : e.children()) {
    if (child->IsText()) return false;
    any = true;
  }
  return any;
}

void SerializeElementImpl(const Element& e, const SerializeOptions& options,
                          int depth, std::string* out) {
  out->push_back('<');
  out->append(e.name());
  for (const auto& attr : e.attributes()) {
    out->push_back(' ');
    out->append(attr.name);
    out->append("=\"");
    out->append(EscapeAttribute(attr.value));
    out->push_back('"');
  }
  if (e.children().empty()) {
    out->append("/>");
    return;
  }
  out->push_back('>');
  // Only pretty-print inside elements with no text children, otherwise the
  // added whitespace would change the text content.
  bool pretty_inside = options.indent > 0 && HasElementChildrenOnly(e);
  for (const auto& child : e.children()) {
    if (pretty_inside) Indent(options, depth + 1, out);
    SerializeNode(*child, options, depth + 1, out);
  }
  if (pretty_inside) Indent(options, depth, out);
  out->append("</");
  out->append(e.name());
  out->push_back('>');
}

void SerializeNode(const Node& node, const SerializeOptions& options,
                   int depth, std::string* out) {
  switch (node.kind()) {
    case NodeKind::kElement:
      SerializeElementImpl(static_cast<const Element&>(node), options, depth,
                           out);
      break;
    case NodeKind::kText:
      out->append(EscapeText(static_cast<const Text&>(node).data()));
      break;
    case NodeKind::kComment:
      out->append("<!--");
      out->append(static_cast<const Comment&>(node).data());
      out->append("-->");
      break;
    case NodeKind::kProcessingInstruction: {
      const auto& pi = static_cast<const Pi&>(node);
      out->append("<?");
      out->append(pi.target());
      if (!pi.data().empty()) {
        out->push_back(' ');
        out->append(pi.data());
      }
      out->append("?>");
      break;
    }
  }
}

}  // namespace

std::string Serialize(const Document& doc, const SerializeOptions& options) {
  std::string out;
  if (options.xml_declaration) {
    out = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>";
    if (options.indent > 0) out.push_back('\n');
  }
  bool first = true;
  for (const auto& child : doc.children()) {
    if (!first && options.indent > 0) out.push_back('\n');
    SerializeNode(*child, options, 0, &out);
    first = false;
  }
  return out;
}

std::string Serialize(const Document& doc) {
  SerializeOptions options;
  return Serialize(doc, options);
}

std::string SerializeElement(const Element& element,
                             const SerializeOptions& options) {
  std::string out;
  SerializeElementImpl(element, options, 0, &out);
  return out;
}

std::string SerializeElement(const Element& element) {
  SerializeOptions options;
  return SerializeElement(element, options);
}

}  // namespace xml
}  // namespace discsec
