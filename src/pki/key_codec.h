#ifndef DISCSEC_PKI_KEY_CODEC_H_
#define DISCSEC_PKI_KEY_CODEC_H_

#include <memory>

#include "common/result.h"
#include "crypto/rsa.h"
#include "xml/dom.h"

namespace discsec {
namespace pki {

/// Encodes an RSA public key as an XML-DSig <RSAKeyValue> element
/// (Modulus/Exponent as base64 CryptoBinary values). `name` lets callers
/// emit a prefixed qualified name (e.g. "ds:RSAKeyValue").
std::unique_ptr<xml::Element> RsaKeyToXml(const crypto::RsaPublicKey& key,
                                          const std::string& name);

/// Parses an <RSAKeyValue> element (any prefix).
Result<crypto::RsaPublicKey> RsaKeyFromXml(const xml::Element& element);

/// A stable fingerprint for key identification: SHA-256 over
/// modulus-bytes || exponent-bytes, hex-encoded. Used as the XKMS key
/// binding ID and as the KeyName hint in signatures.
std::string KeyFingerprint(const crypto::RsaPublicKey& key);

/// Serializes a full RSA private key (with CRT parameters) as an
/// <RSAPrivateKey> element, for key storage by authoring tools.
/// NOTE: the output contains secret material — store accordingly.
std::unique_ptr<xml::Element> RsaPrivateKeyToXml(
    const crypto::RsaPrivateKey& key);
std::string RsaPrivateKeyToXmlString(const crypto::RsaPrivateKey& key);

/// Parses an <RSAPrivateKey> element and validates its internal
/// consistency (p*q == n).
Result<crypto::RsaPrivateKey> RsaPrivateKeyFromXml(
    const xml::Element& element);
Result<crypto::RsaPrivateKey> RsaPrivateKeyFromXmlString(
    std::string_view text);

}  // namespace pki
}  // namespace discsec

#endif  // DISCSEC_PKI_KEY_CODEC_H_
