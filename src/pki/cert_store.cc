#include "pki/cert_store.h"

#include "pki/key_codec.h"

namespace discsec {
namespace pki {

Status CertStore::AddTrustedRoot(const Certificate& root) {
  if (!root.IsSelfSigned()) {
    return Status::InvalidArgument("trusted root must be self-signed");
  }
  if (!root.info().is_ca) {
    return Status::InvalidArgument("trusted root must have the CA flag");
  }
  DISCSEC_RETURN_IF_ERROR(root.VerifySignature(root.info().public_key));
  roots_.push_back(root);
  return Status::OK();
}

void CertStore::Revoke(const std::string& issuer, uint64_t serial) {
  revoked_.insert({issuer, serial});
}

void CertStore::Unrevoke(const std::string& issuer, uint64_t serial) {
  revoked_.erase({issuer, serial});
}

bool CertStore::IsRevoked(const std::string& issuer, uint64_t serial) const {
  return revoked_.count({issuer, serial}) > 0;
}

const Certificate* CertStore::FindRootBySubject(
    const std::string& subject) const {
  for (const auto& root : roots_) {
    if (root.info().subject == subject) return &root;
  }
  return nullptr;
}

Status CertStore::ValidateChain(const std::vector<Certificate>& chain,
                                int64_t now) const {
  if (chain.empty()) {
    return Status::VerificationFailed("empty certificate chain");
  }
  for (size_t i = 0; i < chain.size(); ++i) {
    const Certificate& cert = chain[i];
    if (!cert.IsTimeValid(now)) {
      return Status::VerificationFailed("certificate '" +
                                        cert.info().subject +
                                        "' outside validity window");
    }
    if (IsRevoked(cert.info().issuer, cert.info().serial)) {
      return Status::VerificationFailed("certificate '" +
                                        cert.info().subject + "' is revoked");
    }
    if (i > 0 && !cert.info().is_ca) {
      return Status::VerificationFailed(
          "intermediate '" + cert.info().subject + "' lacks the CA flag");
    }
    if (i + 1 < chain.size()) {
      const Certificate& issuer = chain[i + 1];
      if (issuer.info().subject != cert.info().issuer) {
        return Status::VerificationFailed(
            "chain broken: '" + cert.info().subject + "' names issuer '" +
            cert.info().issuer + "' but next is '" + issuer.info().subject +
            "'");
      }
      DISCSEC_RETURN_IF_ERROR(
          cert.VerifySignature(issuer.info().public_key));
    }
  }
  // Anchor the top of the chain in the trust store.
  const Certificate& top = chain.back();
  if (top.IsSelfSigned()) {
    // The chain includes a root: it must be (match) one we trust.
    const Certificate* root = FindRootBySubject(top.info().subject);
    if (root == nullptr ||
        !(root->info().public_key == top.info().public_key)) {
      return Status::VerificationFailed("root '" + top.info().subject +
                                        "' is not a trusted anchor");
    }
    DISCSEC_RETURN_IF_ERROR(top.VerifySignature(top.info().public_key));
  } else {
    // The chain stops below the root: look the issuer up in the store.
    const Certificate* root = FindRootBySubject(top.info().issuer);
    if (root == nullptr) {
      return Status::VerificationFailed("issuer '" + top.info().issuer +
                                        "' is not a trusted anchor");
    }
    if (!root->IsTimeValid(now)) {
      return Status::VerificationFailed("trusted root '" +
                                        root->info().subject +
                                        "' outside validity window");
    }
    DISCSEC_RETURN_IF_ERROR(top.VerifySignature(root->info().public_key));
  }
  return Status::OK();
}

}  // namespace pki
}  // namespace discsec
