#include "pki/key_codec.h"

#include "common/base64.h"
#include "crypto/sha256.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace discsec {
namespace pki {

std::unique_ptr<xml::Element> RsaKeyToXml(const crypto::RsaPublicKey& key,
                                          const std::string& name) {
  auto elem = std::make_unique<xml::Element>(name);
  auto [prefix, local] = xml::SplitQName(name);
  std::string p = prefix.empty() ? std::string() : std::string(prefix) + ":";
  elem->AppendElement(p + "Modulus")
      ->SetTextContent(Base64Encode(key.modulus.ToBytesBE()));
  elem->AppendElement(p + "Exponent")
      ->SetTextContent(Base64Encode(key.exponent.ToBytesBE()));
  return elem;
}

Result<crypto::RsaPublicKey> RsaKeyFromXml(const xml::Element& element) {
  const xml::Element* modulus = element.FirstChildElementByLocalName("Modulus");
  const xml::Element* exponent =
      element.FirstChildElementByLocalName("Exponent");
  if (modulus == nullptr || exponent == nullptr) {
    return Status::ParseError("RSAKeyValue missing Modulus or Exponent");
  }
  DISCSEC_ASSIGN_OR_RETURN(Bytes mod_bytes,
                           Base64Decode(modulus->TextContent()));
  DISCSEC_ASSIGN_OR_RETURN(Bytes exp_bytes,
                           Base64Decode(exponent->TextContent()));
  crypto::RsaPublicKey key;
  key.modulus = crypto::BigInt::FromBytesBE(mod_bytes);
  key.exponent = crypto::BigInt::FromBytesBE(exp_bytes);
  if (key.modulus.IsZero() || key.exponent.IsZero()) {
    return Status::ParseError("RSAKeyValue has zero modulus or exponent");
  }
  return key;
}

namespace {

void AppendB64(xml::Element* parent, const char* name,
               const crypto::BigInt& value) {
  parent->AppendElement(name)->SetTextContent(
      Base64Encode(value.ToBytesBE()));
}

Result<crypto::BigInt> ReadB64(const xml::Element& parent, const char* name) {
  const xml::Element* e = parent.FirstChildElementByLocalName(name);
  if (e == nullptr) {
    return Status::ParseError(std::string("RSAPrivateKey missing ") + name);
  }
  DISCSEC_ASSIGN_OR_RETURN(Bytes bytes, Base64Decode(e->TextContent()));
  return crypto::BigInt::FromBytesBE(bytes);
}

}  // namespace

std::unique_ptr<xml::Element> RsaPrivateKeyToXml(
    const crypto::RsaPrivateKey& key) {
  auto out = std::make_unique<xml::Element>("RSAPrivateKey");
  AppendB64(out.get(), "Modulus", key.modulus);
  AppendB64(out.get(), "PublicExponent", key.public_exponent);
  AppendB64(out.get(), "PrivateExponent", key.private_exponent);
  AppendB64(out.get(), "PrimeP", key.prime_p);
  AppendB64(out.get(), "PrimeQ", key.prime_q);
  AppendB64(out.get(), "ExponentDP", key.exponent_dp);
  AppendB64(out.get(), "ExponentDQ", key.exponent_dq);
  AppendB64(out.get(), "Coefficient", key.coefficient);
  return out;
}

std::string RsaPrivateKeyToXmlString(const crypto::RsaPrivateKey& key) {
  xml::Document doc = xml::Document::WithRoot(RsaPrivateKeyToXml(key));
  xml::SerializeOptions options;
  options.xml_declaration = false;
  return xml::Serialize(doc, options);
}

Result<crypto::RsaPrivateKey> RsaPrivateKeyFromXml(
    const xml::Element& element) {
  if (element.LocalName() != "RSAPrivateKey") {
    return Status::ParseError("expected <RSAPrivateKey>");
  }
  crypto::RsaPrivateKey key;
  DISCSEC_ASSIGN_OR_RETURN(key.modulus, ReadB64(element, "Modulus"));
  DISCSEC_ASSIGN_OR_RETURN(key.public_exponent,
                           ReadB64(element, "PublicExponent"));
  DISCSEC_ASSIGN_OR_RETURN(key.private_exponent,
                           ReadB64(element, "PrivateExponent"));
  DISCSEC_ASSIGN_OR_RETURN(key.prime_p, ReadB64(element, "PrimeP"));
  DISCSEC_ASSIGN_OR_RETURN(key.prime_q, ReadB64(element, "PrimeQ"));
  DISCSEC_ASSIGN_OR_RETURN(key.exponent_dp, ReadB64(element, "ExponentDP"));
  DISCSEC_ASSIGN_OR_RETURN(key.exponent_dq, ReadB64(element, "ExponentDQ"));
  DISCSEC_ASSIGN_OR_RETURN(key.coefficient, ReadB64(element, "Coefficient"));
  if (!(key.prime_p * key.prime_q == key.modulus)) {
    return Status::Corruption("RSAPrivateKey is internally inconsistent");
  }
  return key;
}

Result<crypto::RsaPrivateKey> RsaPrivateKeyFromXmlString(
    std::string_view text) {
  DISCSEC_ASSIGN_OR_RETURN(xml::Document doc, xml::Parse(text));
  return RsaPrivateKeyFromXml(*doc.root());
}

std::string KeyFingerprint(const crypto::RsaPublicKey& key) {
  Bytes data = key.modulus.ToBytesBE();
  Append(&data, key.exponent.ToBytesBE());
  Bytes digest = crypto::Sha256::Hash(data);
  digest.resize(16);  // 128-bit fingerprint is ample for identification
  return ToHex(digest);
}

}  // namespace pki
}  // namespace discsec
