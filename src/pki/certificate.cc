#include "pki/certificate.h"

#include "common/base64.h"
#include "crypto/algorithms.h"
#include "crypto/sha256.h"
#include "pki/key_codec.h"
#include "xml/c14n.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace discsec {
namespace pki {

std::unique_ptr<xml::Element> Certificate::TbsXml() const {
  auto tbs = std::make_unique<xml::Element>("TBSCertificate");
  tbs->AppendElement("Subject")->SetTextContent(info_.subject);
  tbs->AppendElement("Issuer")->SetTextContent(info_.issuer);
  tbs->AppendElement("Serial")->SetTextContent(std::to_string(info_.serial));
  tbs->AppendElement("NotBefore")
      ->SetTextContent(std::to_string(info_.not_before));
  tbs->AppendElement("NotAfter")
      ->SetTextContent(std::to_string(info_.not_after));
  tbs->AppendElement("IsCA")->SetTextContent(info_.is_ca ? "true" : "false");
  tbs->AppendChild(RsaKeyToXml(info_.public_key, "RSAKeyValue"));
  return tbs;
}

void Certificate::AppendTbsTo(ByteSink* sink) const {
  xml::CanonicalizeElement(*TbsXml(), xml::C14NOptions(), sink);
}

Bytes Certificate::TbsBytes() const {
  Bytes out;
  BytesSink sink(&out);
  AppendTbsTo(&sink);
  return out;
}

namespace {

/// Canonical TBS streamed straight into SHA-256.
Bytes TbsDigest(const Certificate& cert) {
  crypto::Sha256 sha;
  crypto::DigestSink sink(&sha);
  cert.AppendTbsTo(&sink);
  return sha.Finalize();
}

}  // namespace

Status Certificate::VerifySignature(
    const crypto::RsaPublicKey& issuer_key) const {
  return crypto::RsaVerifyDigest(issuer_key, crypto::kAlgSha256,
                                 TbsDigest(*this), signature_)
      .WithContext("certificate '" + info_.subject + "'");
}

std::unique_ptr<xml::Element> Certificate::ToXml() const {
  auto cert = std::make_unique<xml::Element>("Certificate");
  cert->AppendChild(TbsXml());
  cert->AppendElement("SignatureAlgorithm")
      ->SetTextContent(crypto::kAlgRsaSha256);
  cert->AppendElement("SignatureValue")
      ->SetTextContent(Base64Encode(signature_));
  return cert;
}

Result<Certificate> Certificate::FromXml(const xml::Element& element) {
  const xml::Element* tbs =
      element.FirstChildElementByLocalName("TBSCertificate");
  const xml::Element* sig_value =
      element.FirstChildElementByLocalName("SignatureValue");
  if (tbs == nullptr || sig_value == nullptr) {
    return Status::ParseError("Certificate missing TBS or SignatureValue");
  }
  CertificateInfo info;
  auto get_text = [&](const char* name) -> Result<std::string> {
    const xml::Element* e = tbs->FirstChildElementByLocalName(name);
    if (e == nullptr) {
      return Status::ParseError(std::string("TBSCertificate missing ") + name);
    }
    return e->TextContent();
  };
  DISCSEC_ASSIGN_OR_RETURN(info.subject, get_text("Subject"));
  DISCSEC_ASSIGN_OR_RETURN(info.issuer, get_text("Issuer"));
  DISCSEC_ASSIGN_OR_RETURN(std::string serial, get_text("Serial"));
  DISCSEC_ASSIGN_OR_RETURN(std::string not_before, get_text("NotBefore"));
  DISCSEC_ASSIGN_OR_RETURN(std::string not_after, get_text("NotAfter"));
  DISCSEC_ASSIGN_OR_RETURN(std::string is_ca, get_text("IsCA"));
  char* end = nullptr;
  info.serial = std::strtoull(serial.c_str(), &end, 10);
  info.not_before = std::strtoll(not_before.c_str(), &end, 10);
  info.not_after = std::strtoll(not_after.c_str(), &end, 10);
  info.is_ca = (is_ca == "true");
  const xml::Element* key = tbs->FirstChildElementByLocalName("RSAKeyValue");
  if (key == nullptr) {
    return Status::ParseError("TBSCertificate missing RSAKeyValue");
  }
  DISCSEC_ASSIGN_OR_RETURN(info.public_key, RsaKeyFromXml(*key));
  DISCSEC_ASSIGN_OR_RETURN(Bytes signature,
                           Base64Decode(sig_value->TextContent()));
  return Certificate(std::move(info), std::move(signature));
}

std::string Certificate::ToXmlString() const {
  xml::Document doc = xml::Document::WithRoot(ToXml());
  xml::SerializeOptions options;
  options.xml_declaration = false;
  return xml::Serialize(doc, options);
}

Result<Certificate> Certificate::FromXmlString(std::string_view text) {
  DISCSEC_ASSIGN_OR_RETURN(xml::Document doc, xml::Parse(text));
  return FromXml(*doc.root());
}

Result<Certificate> IssueCertificate(const CertificateInfo& info,
                                     const crypto::RsaPrivateKey& issuer_key) {
  if (info.subject.empty() || info.issuer.empty()) {
    return Status::InvalidArgument("certificate needs subject and issuer");
  }
  if (info.not_after < info.not_before) {
    return Status::InvalidArgument("certificate validity window is inverted");
  }
  Certificate unsigned_cert(info, {});
  DISCSEC_ASSIGN_OR_RETURN(
      Bytes signature,
      crypto::RsaSignDigest(issuer_key, crypto::kAlgSha256,
                            TbsDigest(unsigned_cert)));
  return Certificate(info, std::move(signature));
}

}  // namespace pki
}  // namespace discsec
