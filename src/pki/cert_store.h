#ifndef DISCSEC_PKI_CERT_STORE_H_
#define DISCSEC_PKI_CERT_STORE_H_

#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "pki/certificate.h"

namespace discsec {
namespace pki {

/// The player's trust anchor store plus revocation state — the "trusted root
/// certificate within the player" of the paper's §5.5, with a CRL as the key
/// management requirement of §3.1 ("registration, revocation and updates").
class CertStore {
 public:
  /// Installs a trusted root. Must be self-signed with a valid signature and
  /// the CA flag set.
  Status AddTrustedRoot(const Certificate& root);

  /// Marks (issuer, serial) revoked. Chain validation then fails for that
  /// certificate.
  void Revoke(const std::string& issuer, uint64_t serial);

  /// Removes a revocation (e.g. a key re-registered via XKMS).
  void Unrevoke(const std::string& issuer, uint64_t serial);

  bool IsRevoked(const std::string& issuer, uint64_t serial) const;

  size_t TrustedRootCount() const { return roots_.size(); }

  /// Validates `chain`, leaf first, at time `now`:
  ///  - every certificate's signature checks against its issuer's key;
  ///  - every certificate is inside its validity window;
  ///  - every non-leaf has the CA flag;
  ///  - no certificate is revoked;
  ///  - the last certificate chains to (or is) a trusted root.
  /// Returns OK when the leaf is trustworthy.
  Status ValidateChain(const std::vector<Certificate>& chain,
                       int64_t now) const;

 private:
  const Certificate* FindRootBySubject(const std::string& subject) const;

  std::vector<Certificate> roots_;
  std::set<std::pair<std::string, uint64_t>> revoked_;
};

}  // namespace pki
}  // namespace discsec

#endif  // DISCSEC_PKI_CERT_STORE_H_
