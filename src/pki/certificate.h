#ifndef DISCSEC_PKI_CERTIFICATE_H_
#define DISCSEC_PKI_CERTIFICATE_H_

#include <cstdint>
#include <string>

#include "common/byte_sink.h"
#include "common/result.h"
#include "crypto/rsa.h"
#include "xml/dom.h"

namespace discsec {
namespace pki {

/// Certificate contents (the to-be-signed part).
///
/// The paper's §5.5 relies on "certificate based authentication" with chains
/// leading to a trusted root burned into the player (the MHP model its
/// ref. [8] describes). The original prototype would have carried X.509/DER;
/// this library represents certificates as signed XML — the same trust
/// semantics (issuer-signed bindings of subject name to public key, with
/// validity window and CA flag) with the library's own canonical-XML byte
/// representation, so no ASN.1 substrate is needed.
struct CertificateInfo {
  std::string subject;        ///< e.g. "CN=Acme Studios Content Signing"
  std::string issuer;         ///< subject of the issuing certificate
  uint64_t serial = 0;        ///< unique per issuer; used for revocation
  int64_t not_before = 0;     ///< validity start, Unix seconds
  int64_t not_after = 0;      ///< validity end, Unix seconds
  bool is_ca = false;         ///< may sign other certificates
  crypto::RsaPublicKey public_key;
};

/// An issued certificate: info plus the issuer's rsa-sha256 signature over
/// the canonical XML of the TBS element.
class Certificate {
 public:
  Certificate() = default;
  Certificate(CertificateInfo info, Bytes signature)
      : info_(std::move(info)), signature_(std::move(signature)) {}

  const CertificateInfo& info() const { return info_; }
  const Bytes& signature() const { return signature_; }

  bool IsSelfSigned() const { return info_.subject == info_.issuer; }

  /// Streams the canonical octets the issuer signs into `sink` (a
  /// crypto::DigestSink digests them without materializing the buffer).
  void AppendTbsTo(ByteSink* sink) const;

  /// Buffer-returning wrapper over AppendTbsTo.
  Bytes TbsBytes() const;

  /// Verifies this certificate's signature with `issuer_key`.
  Status VerifySignature(const crypto::RsaPublicKey& issuer_key) const;

  /// True when `now` lies within [not_before, not_after].
  bool IsTimeValid(int64_t now) const {
    return now >= info_.not_before && now <= info_.not_after;
  }

  /// Serializes to a <Certificate> element.
  std::unique_ptr<xml::Element> ToXml() const;

  /// Parses a <Certificate> element (any prefix).
  static Result<Certificate> FromXml(const xml::Element& element);

  /// Serialized XML text (one-document form, used for storage/transport).
  std::string ToXmlString() const;
  static Result<Certificate> FromXmlString(std::string_view text);

 private:
  std::unique_ptr<xml::Element> TbsXml() const;

  CertificateInfo info_;
  Bytes signature_;
};

/// Signs `info` with `issuer_key`, producing a certificate. For a root
/// certificate, pass the subject's own key and set issuer == subject.
Result<Certificate> IssueCertificate(const CertificateInfo& info,
                                     const crypto::RsaPrivateKey& issuer_key);

}  // namespace pki
}  // namespace discsec

#endif  // DISCSEC_PKI_CERTIFICATE_H_
