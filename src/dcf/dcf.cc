#include "dcf/dcf.h"

#include "crypto/aes.h"
#include "crypto/hmac.h"

namespace discsec {
namespace dcf {

namespace {
constexpr char kMagic[] = "DCF1";
constexpr uint8_t kVersion = 1;
constexpr size_t kMacLen = 20;
}  // namespace

Result<Bytes> DcfProtect(const Bytes& payload, const std::string& content_type,
                         const std::string& key_id, const Bytes& cek,
                         const Bytes& mac_key, Rng* rng) {
  if (content_type.size() > 255 || key_id.size() > 255) {
    return Status::InvalidArgument("content_type/key_id too long");
  }
  Bytes iv = rng->NextBytes(crypto::Aes::kBlockSize);
  DISCSEC_ASSIGN_OR_RETURN(Bytes ciphertext,
                           crypto::AesCbcEncrypt(cek, iv, payload));
  Bytes out;
  Append(&out, std::string_view(kMagic, 4));
  out.push_back(kVersion);
  out.push_back(static_cast<uint8_t>(content_type.size()));
  Append(&out, content_type);
  out.push_back(static_cast<uint8_t>(key_id.size()));
  Append(&out, key_id);
  AppendUint64BE(&out, payload.size());
  AppendUint32BE(&out, static_cast<uint32_t>(ciphertext.size()));
  Append(&out, ciphertext);
  Bytes mac = crypto::Hmac::Sha1Mac(mac_key, out);
  Append(&out, mac);
  return out;
}

Result<DcfHeader> DcfParseHeader(const Bytes& container) {
  size_t pos = 0;
  auto need = [&](size_t n) { return pos + n <= container.size(); };
  if (!need(6) || std::string(container.begin(), container.begin() + 4) !=
                      std::string(kMagic, 4)) {
    return Status::Corruption("DCF magic mismatch");
  }
  pos = 4;
  if (container[pos] != kVersion) {
    return Status::Corruption("DCF version mismatch");
  }
  ++pos;
  DcfHeader header;
  uint8_t ct_len = container[pos++];
  if (!need(ct_len)) return Status::Corruption("DCF truncated content type");
  header.content_type.assign(container.begin() + pos,
                             container.begin() + pos + ct_len);
  pos += ct_len;
  if (!need(1)) return Status::Corruption("DCF truncated");
  uint8_t kid_len = container[pos++];
  if (!need(kid_len)) return Status::Corruption("DCF truncated key id");
  header.key_id.assign(container.begin() + pos,
                       container.begin() + pos + kid_len);
  pos += kid_len;
  if (!need(8)) return Status::Corruption("DCF truncated length");
  header.plaintext_len = ReadUint64BE(container.data() + pos);
  return header;
}

Result<Bytes> DcfUnprotect(const Bytes& container, const Bytes& cek,
                           const Bytes& mac_key) {
  if (container.size() < kMacLen + 18) {
    return Status::Corruption("DCF container too short");
  }
  // MAC first (authenticate-then-decrypt).
  size_t body_len = container.size() - kMacLen;
  Bytes body(container.begin(), container.begin() + body_len);
  Bytes mac(container.begin() + body_len, container.end());
  Bytes expected = crypto::Hmac::Sha1Mac(mac_key, body);
  if (!ConstantTimeEquals(mac, expected)) {
    return Status::VerificationFailed("DCF integrity MAC mismatch");
  }
  DISCSEC_ASSIGN_OR_RETURN(DcfHeader header, DcfParseHeader(container));
  // Re-walk to the ciphertext.
  size_t pos = 4 + 1;
  pos += 1 + header.content_type.size();
  pos += 1 + header.key_id.size();
  pos += 8;
  if (pos + 4 > body_len) return Status::Corruption("DCF truncated");
  uint32_t ct_len = ReadUint32BE(container.data() + pos);
  pos += 4;
  if (pos + ct_len != body_len) {
    return Status::Corruption("DCF ciphertext length mismatch");
  }
  Bytes ciphertext(container.begin() + pos, container.begin() + pos + ct_len);
  DISCSEC_ASSIGN_OR_RETURN(Bytes plaintext,
                           crypto::AesCbcDecrypt(cek, ciphertext));
  if (plaintext.size() != header.plaintext_len) {
    return Status::Corruption("DCF plaintext length mismatch");
  }
  return plaintext;
}

size_t DcfContainerSize(size_t payload_size, size_t content_type_len,
                        size_t key_id_len) {
  size_t ct = 16 /*IV*/ + ((payload_size / 16) + 1) * 16;
  return 4 + 1 + 1 + content_type_len + 1 + key_id_len + 8 + 4 + ct + kMacLen;
}

}  // namespace dcf
}  // namespace discsec
