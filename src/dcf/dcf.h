#ifndef DISCSEC_DCF_DCF_H_
#define DISCSEC_DCF_DCF_H_

#include <string>

#include "common/bytes.h"
#include "common/random.h"
#include "common/result.h"

namespace discsec {
namespace dcf {

/// A binary OMA-DRM-DCF-style protected container — the baseline the
/// paper's §4 comparison (its ref. [37]) measures XML security against:
/// "XML based security incurs 2.5 to 5.1 times more overhead as compared to
/// OMA DCF and performance wise the text based XML takes a back seat".
///
/// Layout (all integers big-endian):
///   magic "DCF1" (4)
///   u8    version (1)
///   u8    content_type_len, content_type
///   u8    key_id_len, key_id              -- names the CEK at the receiver
///   u64   plaintext_len
///   u32   ciphertext_len, ciphertext      -- AES-128-CBC, IV prepended
///   u8[20] HMAC-SHA1 over everything above with the integrity key
///
/// Confidentiality = AES-CBC, integrity/authenticity = HMAC-SHA1 with a
/// shared MAC key: functionally the same guarantees the XML pipeline gets
/// from XML-Enc + hmac-sha1 XML-DSig, in a fixed binary framing.
struct DcfHeader {
  std::string content_type;
  std::string key_id;
  uint64_t plaintext_len = 0;
};

/// Packs `payload` into a protected DCF container.
/// `cek` is the 16-byte content-encryption key, `mac_key` the integrity key.
Result<Bytes> DcfProtect(const Bytes& payload, const std::string& content_type,
                         const std::string& key_id, const Bytes& cek,
                         const Bytes& mac_key, Rng* rng);

/// Verifies and decrypts a DCF container. Fails with VerificationFailed on
/// MAC mismatch and Corruption on framing errors.
Result<Bytes> DcfUnprotect(const Bytes& container, const Bytes& cek,
                           const Bytes& mac_key);

/// Parses only the header (no keys needed) — e.g. to route by key_id.
Result<DcfHeader> DcfParseHeader(const Bytes& container);

/// Container size for a given payload size (exact, for overhead analysis).
size_t DcfContainerSize(size_t payload_size, size_t content_type_len,
                        size_t key_id_len);

}  // namespace dcf
}  // namespace discsec

#endif  // DISCSEC_DCF_DCF_H_
