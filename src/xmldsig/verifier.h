#ifndef DISCSEC_XMLDSIG_VERIFIER_H_
#define DISCSEC_XMLDSIG_VERIFIER_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "crypto/rsa.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pki/cert_store.h"
#include "xml/dom.h"
#include "xmldsig/transforms.h"

namespace discsec {

class ThreadPool;

namespace crypto {
class DigestCache;
}  // namespace crypto

namespace xmldsig {

/// How the verifier establishes trust in the signing key — the player-side
/// policy from the paper's Fig. 3 (Verifier component) and §5.5 (certificate
/// chains to a trusted root).
struct VerifyOptions {
  /// When set, a certificate chain in <ds:X509Data> is REQUIRED and must
  /// validate against this store at time `now`; the verification key is the
  /// leaf certificate's key.
  const pki::CertStore* cert_store = nullptr;
  int64_t now = 0;

  /// Trust this key directly (pre-provisioned), ignoring KeyInfo.
  std::optional<crypto::RsaPublicKey> trusted_key;

  /// Shared secret for hmac-sha1 signatures.
  std::optional<Bytes> hmac_secret;

  /// Accept a bare <ds:KeyValue> as the verification key when no store and
  /// no trusted key are set. This proves integrity but NOT authenticity
  /// (anyone can re-sign); off by default, used in tests and for
  /// inner-layer integrity checks.
  bool allow_bare_key_value = false;

  /// For external Reference URIs.
  ExternalResolver resolver;

  /// For the Decryption Transform.
  DecryptHook decrypt_hook;

  /// Limits applied when a transform re-parses an octet stream (and
  /// forwarded to the Decryption Transform's inner parse).
  xml::ParseOptions parse_options;

  /// See-what-is-signed policy: require at least one verified reference to
  /// cover the document root (URI "" or an Id on the root element). Defeats
  /// relocation attacks where only an attacker-chosen fragment is signed.
  bool require_signed_root = false;

  /// See-what-is-signed policy: when non-empty, every same-document
  /// reference that does NOT cover the root must resolve to an element
  /// whose name is in this list. Defeats wrapping attacks that point a
  /// reference at a decoy element outside the schema the player consumes.
  std::vector<std::string> allowed_reference_roots;

  /// When set, each <Reference> canonicalizes and digests on its own pool
  /// task (the SignedInfo signature check still happens after every
  /// reference joined). Null keeps the serial path; results are identical
  /// either way — on multi-reference signatures the first failing
  /// reference in document order still decides the error.
  ThreadPool* pool = nullptr;

  /// When set, reference digests are served through this content-addressed
  /// cache (keyed by digest algorithm + SHA-256 of the exact reference
  /// octets). Safe to share across verifiers and threads; see DESIGN.md §9
  /// for why a hit cannot weaken the wrapping defenses.
  crypto::DigestCache* digest_cache = nullptr;

  /// Single-pass streaming verify fast path (DESIGN.md §14). When non-empty
  /// this must be the EXACT source text `doc` was parsed from (same bytes,
  /// and `parse_options` no stricter than the original parse). Same-document
  /// references whose transform chain is [], [C14N(±comments)],
  /// [enveloped-signature], or [enveloped-signature, C14N(±comments)] are
  /// then digested by re-lexing the source straight into the digest — no
  /// document clone, no canonicalization tree walk. Everything else falls
  /// back to the DOM pipeline transparently. The fast path can only change
  /// performance, never the verdict: a divergent canonical form produces a
  /// digest mismatch (rejection), and error/resolution reporting mirrors
  /// the DOM pipeline string-for-string.
  std::string_view source_text;

  /// Observability (DESIGN.md §10): when `tracer` is set the verifier emits
  /// an "xmldsig.verify" span, one "xmldsig.reference" span per <Reference>
  /// (attributes: uri, transforms, digest_alg, cache hit/miss — parented
  /// correctly even when references digest on `pool` workers) and an
  /// "xmldsig.signed_info" span for the SignedInfo signature check. When
  /// `metrics` is set, "xmldsig.references_verified" / ".cache_hits" /
  /// ".cache_misses" counters and the "xmldsig.verify_us" histogram are
  /// recorded. Both null (the default) costs nothing.
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
};

/// Where one verified Reference resolved — the per-reference
/// see-what-is-signed report surfaced in VerifyInfo.
struct VerifiedReference {
  /// The Reference URI as written ("", "#id", or external).
  std::string uri;
  /// Qualified name of the resolved element (empty for external URIs).
  std::string resolved_name;
  /// xml::ElementPath of the resolved element (empty for external URIs).
  std::string resolved_path;
  /// True when the reference covers the whole document.
  bool covers_root = false;
  /// True for same-document ("" / "#id") references.
  bool same_document = false;
};

/// Outcome details for a successful verification.
struct VerifyInfo {
  /// Subject of the leaf certificate (empty when verified by raw key/HMAC).
  std::string signer_subject;
  /// The URIs of all verified references.
  std::vector<std::string> reference_uris;
  /// Where each verified reference resolved (parallel to reference_uris).
  std::vector<VerifiedReference> references;
  /// The signature algorithm that was checked.
  std::string signature_algorithm;
  /// KeyName content, when present (XKMS lookup hint).
  std::string key_name;
};

/// Verifies XML Digital Signatures.
class Verifier {
 public:
  /// Verifies `signature` (a ds:Signature element inside `doc`, or
  /// standalone when doc is null for external-only references).
  /// Returns VerifyInfo on success; VerificationFailed (or a more specific
  /// status) otherwise. All references must validate.
  static Result<VerifyInfo> Verify(const xml::Document* doc,
                                   const xml::Element& signature,
                                   const VerifyOptions& options);

  /// Convenience: finds the first ds:Signature descendant of the root and
  /// verifies it.
  static Result<VerifyInfo> VerifyFirstSignature(const xml::Document& doc,
                                                 const VerifyOptions& options);

  /// Wire-level fast path (DESIGN.md §14): verifies the first ds:Signature
  /// straight from the source bytes WITHOUT building the document's DOM.
  /// One streaming scan locates the signature, the Id targets and the
  /// parse-error verdict; only the (small) Signature subtree is parsed, and
  /// each Reference digests through StreamCanonicalize. Equivalent to
  /// xml::Parse + VerifyFirstSignature with source_text set — documents or
  /// references the streaming pipeline cannot handle transparently fall
  /// back to exactly that, so the verdict (status code, message, and
  /// VerifyInfo) is identical by construction; only the cost changes.
  static Result<VerifyInfo> VerifyStream(std::string_view source,
                                         const VerifyOptions& options);

  /// Finds every ds:Signature element under `root` (including nested ones).
  static std::vector<xml::Element*> FindSignatures(xml::Element* root);

 private:
  static Result<VerifyInfo> VerifyWithIndex(const xml::Document* doc,
                                            const xml::Element& signature,
                                            const VerifyOptions& options,
                                            const StreamIndex* index);
};

}  // namespace xmldsig
}  // namespace discsec

#endif  // DISCSEC_XMLDSIG_VERIFIER_H_
