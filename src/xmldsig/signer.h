#ifndef DISCSEC_XMLDSIG_SIGNER_H_
#define DISCSEC_XMLDSIG_SIGNER_H_

#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/algorithms.h"
#include "crypto/rsa.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pki/certificate.h"
#include "xml/c14n.h"
#include "xml/dom.h"
#include "xmldsig/transforms.h"

namespace discsec {
namespace xmldsig {

/// What to digest: one <ds:Reference> in the signature.
struct ReferenceSpec {
  /// "" = whole enclosing document (enveloped), "#id" = same-document
  /// element, anything else = external resource resolved by the context.
  std::string uri;
  /// Transform algorithm URIs applied in order (crypto/algorithms.h).
  /// SignEnveloped automatically prepends the enveloped-signature transform
  /// to the "" reference.
  std::vector<std::string> transforms;
  std::string digest_algorithm = crypto::kAlgSha1;
  /// Extra parameter children for a transform (currently: dcrpt:Except ids
  /// for the Decryption Transform, keyed by transform URI).
  std::vector<std::string> decrypt_except_ids;
};

/// The signing key: RSA private key or HMAC shared secret.
struct SigningKey {
  enum class Kind { kRsa, kHmac };
  Kind kind = Kind::kRsa;
  crypto::RsaPrivateKey rsa;
  Bytes hmac_secret;
  /// kAlgRsaSha1 (default), kAlgRsaSha256 or kAlgHmacSha1.
  std::string signature_algorithm = crypto::kAlgRsaSha1;

  static SigningKey Rsa(crypto::RsaPrivateKey key,
                        std::string algorithm = crypto::kAlgRsaSha1) {
    SigningKey out;
    out.kind = Kind::kRsa;
    out.rsa = std::move(key);
    out.signature_algorithm = std::move(algorithm);
    return out;
  }
  static SigningKey HmacSecret(Bytes secret) {
    SigningKey out;
    out.kind = Kind::kHmac;
    out.hmac_secret = std::move(secret);
    out.signature_algorithm = crypto::kAlgHmacSha1;
    return out;
  }
};

/// What goes into <ds:KeyInfo>.
struct KeyInfoSpec {
  /// Emit <ds:KeyValue> with the raw public key.
  bool include_key_value = false;
  /// Emit <ds:KeyName> with this value (e.g. a key fingerprint for XKMS
  /// lookup).
  std::string key_name;
  /// Emit <ds:X509Data> carrying this chain, leaf first (certificates are
  /// base64-wrapped XML, this library's certificate encoding).
  std::vector<pki::Certificate> certificate_chain;
};

/// Creates XML Digital Signatures in the three forms the paper's Fig. 6
/// distinguishes: enveloped (Signature is a child of the signed markup),
/// enveloping (content lives inside ds:Object), and detached (the target is
/// a sibling element or an external resource).
class Signer {
 public:
  Signer(SigningKey key, KeyInfoSpec key_info)
      : key_(std::move(key)), key_info_(std::move(key_info)) {}

  /// Selects the CanonicalizationMethod for SignedInfo (default: inclusive
  /// Canonical XML 1.0). Use kAlgExcC14N when the signature may be moved
  /// between namespace contexts (e.g. a detached signature shipped inside
  /// different packaging documents).
  void set_canonicalization_method(std::string uri) {
    c14n_method_ = std::move(uri);
  }

  /// Observability (DESIGN.md §10): spans "xmldsig.sign" (one per
  /// BuildUnsigned, attribute: reference count) and "xmldsig.sign.finalize"
  /// (SignedInfo canonicalize + sign), plus the "xmldsig.signatures_created"
  /// counter. Null (the default) costs nothing.
  void set_observability(obs::Tracer* tracer, obs::MetricsRegistry* metrics) {
    tracer_ = tracer;
    metrics_ = metrics;
  }

  /// Builds a detached/standalone <ds:Signature> over `refs` and returns it
  /// (not attached to any document). `ctx.document` must be set when any
  /// reference is same-document.
  Result<std::unique_ptr<xml::Element>> CreateSignature(
      const std::vector<ReferenceSpec>& refs, const ReferenceContext& ctx,
      const std::string& signature_id = {}) const;

  /// Signs the whole document with an enveloped signature appended as the
  /// last child of `parent` (usually the root). Returns the inserted
  /// <ds:Signature>.
  Result<xml::Element*> SignEnveloped(xml::Document* doc, xml::Element* parent,
                                      const std::string& digest_algorithm =
                                          crypto::kAlgSha1) const;

  /// Signs the subtree `target` (which must carry — or will be given — the
  /// Id `target_id`) with a detached same-document signature appended to
  /// `parent`.
  Result<xml::Element*> SignDetached(xml::Document* doc, xml::Element* target,
                                     const std::string& target_id,
                                     xml::Element* parent) const;

  /// Builds an enveloping signature: `content` is cloned into
  /// <ds:Object Id="object">, referenced by "#object".
  Result<std::unique_ptr<xml::Element>> SignEnveloping(
      const xml::Element& content) const;

  /// Two-phase API used by the helpers above (and available to advanced
  /// callers): BuildUnsigned computes the reference digests and the full
  /// element structure but leaves <ds:SignatureValue> empty; Finalize
  /// canonicalizes SignedInfo *where the signature is attached* — so its
  /// inherited namespace context matches what the verifier will see — and
  /// fills in the value.
  Result<std::unique_ptr<xml::Element>> BuildUnsigned(
      const std::vector<ReferenceSpec>& refs, const ReferenceContext& ctx,
      const std::string& signature_id = {}) const;
  Status Finalize(xml::Element* signature) const;

 private:
  /// Canonicalizes `signed_info` with `options`, streaming straight into
  /// the signature primitive (HMAC or message digest) — the canonical form
  /// is never materialized.
  Result<Bytes> ComputeSignatureValue(const xml::Element& signed_info,
                                      const xml::C14NOptions& options) const;

  SigningKey key_;
  KeyInfoSpec key_info_;
  std::string c14n_method_ = crypto::kAlgC14N;
  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace xmldsig
}  // namespace discsec

#endif  // DISCSEC_XMLDSIG_SIGNER_H_
