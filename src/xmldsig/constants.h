#ifndef DISCSEC_XMLDSIG_CONSTANTS_H_
#define DISCSEC_XMLDSIG_CONSTANTS_H_

namespace discsec {
namespace xmldsig {

/// The XML-DSig namespace and the conventional prefix this library emits.
inline constexpr char kDsNamespace[] = "http://www.w3.org/2000/09/xmldsig#";
inline constexpr char kDsPrefix[] = "ds";

/// The Decryption Transform namespace (W3C xmlenc-decrypt).
inline constexpr char kDcrptNamespace[] = "http://www.w3.org/2002/07/decrypt#";

}  // namespace xmldsig
}  // namespace discsec

#endif  // DISCSEC_XMLDSIG_CONSTANTS_H_
