#include "xmldsig/signer.h"

#include "common/base64.h"
#include "crypto/digest.h"
#include "crypto/hmac.h"
#include "crypto/sha1.h"
#include "pki/key_codec.h"
#include "xml/c14n.h"
#include "xmldsig/constants.h"

namespace discsec {
namespace xmldsig {

namespace {

std::string Ds(const std::string& local) {
  return std::string(kDsPrefix) + ":" + local;
}

/// Builds the ds:Reference element (without DigestValue yet).
std::unique_ptr<xml::Element> BuildReferenceElement(const ReferenceSpec& spec) {
  auto ref = std::make_unique<xml::Element>(Ds("Reference"));
  ref->SetAttribute("URI", spec.uri);
  if (!spec.transforms.empty()) {
    xml::Element* transforms = ref->AppendElement(Ds("Transforms"));
    for (const std::string& alg : spec.transforms) {
      xml::Element* t = transforms->AppendElement(Ds("Transform"));
      t->SetAttribute("Algorithm", alg);
      if (alg == crypto::kAlgDecryptionTransform) {
        for (const std::string& id : spec.decrypt_except_ids) {
          xml::Element* except = t->AppendElement("dcrpt:Except");
          except->SetAttribute("xmlns:dcrpt", kDcrptNamespace);
          except->SetAttribute("URI", "#" + id);
        }
      }
    }
  }
  ref->AppendElement(Ds("DigestMethod"))
      ->SetAttribute("Algorithm", spec.digest_algorithm);
  ref->AppendElement(Ds("DigestValue"));
  return ref;
}

}  // namespace

Result<Bytes> Signer::ComputeSignatureValue(
    const xml::Element& signed_info, const xml::C14NOptions& options) const {
  if (key_.kind == SigningKey::Kind::kHmac) {
    if (key_.signature_algorithm != crypto::kAlgHmacSha1) {
      return Status::Unsupported("HMAC signature algorithm: " +
                                 key_.signature_algorithm);
    }
    crypto::Hmac hmac(std::make_unique<crypto::Sha1>(), key_.hmac_secret);
    crypto::HmacSink sink(&hmac);
    xml::CanonicalizeElement(signed_info, options, &sink);
    return hmac.Finalize();
  }
  std::string digest_uri;
  if (key_.signature_algorithm == crypto::kAlgRsaSha1) {
    digest_uri = crypto::kAlgSha1;
  } else if (key_.signature_algorithm == crypto::kAlgRsaSha256) {
    digest_uri = crypto::kAlgSha256;
  } else {
    return Status::Unsupported("signature algorithm: " +
                               key_.signature_algorithm);
  }
  DISCSEC_ASSIGN_OR_RETURN(auto digest, crypto::MakeDigest(digest_uri));
  crypto::DigestSink sink(digest.get());
  xml::CanonicalizeElement(signed_info, options, &sink);
  return crypto::RsaSignDigest(key_.rsa, digest_uri, digest->Finalize());
}

Result<std::unique_ptr<xml::Element>> Signer::BuildUnsigned(
    const std::vector<ReferenceSpec>& refs, const ReferenceContext& ctx,
    const std::string& signature_id) const {
  obs::ScopedSpan span(tracer_, "xmldsig.sign");
  span.SetAttr("references", static_cast<uint64_t>(refs.size()));
  if (metrics_ != nullptr) {
    metrics_->GetCounter("xmldsig.signatures_created")->Add();
  }
  if (refs.empty()) {
    return Status::InvalidArgument("signature needs at least one reference");
  }
  auto signature = std::make_unique<xml::Element>(Ds("Signature"));
  signature->SetAttribute("xmlns:" + std::string(kDsPrefix), kDsNamespace);
  if (!signature_id.empty()) signature->SetAttribute("Id", signature_id);

  xml::Element* signed_info = signature->AppendElement(Ds("SignedInfo"));
  signed_info->AppendElement(Ds("CanonicalizationMethod"))
      ->SetAttribute("Algorithm", c14n_method_);
  signed_info->AppendElement(Ds("SignatureMethod"))
      ->SetAttribute("Algorithm", key_.signature_algorithm);

  for (const ReferenceSpec& spec : refs) {
    xml::Element* ref = static_cast<xml::Element*>(
        signed_info->AppendChild(BuildReferenceElement(spec)));
    DISCSEC_ASSIGN_OR_RETURN(auto digest,
                             crypto::MakeDigest(spec.digest_algorithm));
    // The reference octets stream into the digest as they are produced.
    crypto::DigestSink sink(digest.get());
    DISCSEC_RETURN_IF_ERROR(ProcessReferenceTo(*ref, ctx, &sink));
    ref->FirstChildElementByLocalName("DigestValue")
        ->SetTextContent(Base64Encode(digest->Finalize()));
  }

  signature->AppendElement(Ds("SignatureValue"));

  // KeyInfo.
  bool want_key_info = key_info_.include_key_value ||
                       !key_info_.key_name.empty() ||
                       !key_info_.certificate_chain.empty();
  if (want_key_info) {
    xml::Element* key_info = signature->AppendElement(Ds("KeyInfo"));
    if (!key_info_.key_name.empty()) {
      key_info->AppendElement(Ds("KeyName"))
          ->SetTextContent(key_info_.key_name);
    }
    if (key_info_.include_key_value && key_.kind == SigningKey::Kind::kRsa) {
      xml::Element* key_value = key_info->AppendElement(Ds("KeyValue"));
      key_value->AppendChild(
          pki::RsaKeyToXml(key_.rsa.PublicKey(), Ds("RSAKeyValue")));
    }
    if (!key_info_.certificate_chain.empty()) {
      xml::Element* x509 = key_info->AppendElement(Ds("X509Data"));
      for (const pki::Certificate& cert : key_info_.certificate_chain) {
        x509->AppendElement(Ds("X509Certificate"))
            ->SetTextContent(Base64Encode(ToBytes(cert.ToXmlString())));
      }
    }
  }
  return signature;
}

Status Signer::Finalize(xml::Element* signature) const {
  obs::ScopedSpan span(tracer_, "xmldsig.sign.finalize");
  xml::Element* signed_info =
      signature->FirstChildElementByLocalName("SignedInfo");
  xml::Element* sig_value =
      signature->FirstChildElementByLocalName("SignatureValue");
  if (signed_info == nullptr || sig_value == nullptr) {
    return Status::InvalidArgument("Finalize: not an unsigned ds:Signature");
  }
  // SignedInfo is canonicalized exactly where it sits — attached signatures
  // inherit their ancestors' namespace context, which the verifier will see
  // identically (and which exclusive C14N makes context-free). The method
  // is read back from the element so Finalize agrees with what BuildUnsigned
  // recorded.
  xml::C14NOptions options;
  options.tracer = tracer_;
  const xml::Element* method =
      signed_info->FirstChildElementByLocalName("CanonicalizationMethod");
  if (method != nullptr && method->GetAttribute("Algorithm") != nullptr) {
    const std::string& alg = *method->GetAttribute("Algorithm");
    options.exclusive =
        alg == crypto::kAlgExcC14N || alg == crypto::kAlgExcC14NWithComments;
    options.with_comments = alg == crypto::kAlgC14NWithComments ||
                            alg == crypto::kAlgExcC14NWithComments;
  }
  DISCSEC_ASSIGN_OR_RETURN(Bytes value,
                           ComputeSignatureValue(*signed_info, options));
  sig_value->SetTextContent(Base64Encode(value));
  return Status::OK();
}

Result<std::unique_ptr<xml::Element>> Signer::CreateSignature(
    const std::vector<ReferenceSpec>& refs, const ReferenceContext& ctx,
    const std::string& signature_id) const {
  DISCSEC_ASSIGN_OR_RETURN(auto signature,
                           BuildUnsigned(refs, ctx, signature_id));
  DISCSEC_RETURN_IF_ERROR(Finalize(signature.get()));
  return signature;
}

Result<xml::Element*> Signer::SignEnveloped(
    xml::Document* doc, xml::Element* parent,
    const std::string& digest_algorithm) const {
  if (doc == nullptr || parent == nullptr) {
    return Status::InvalidArgument(
        "SignEnveloped needs a document and parent");
  }
  // Attach a placeholder first so the enveloped-signature transform knows
  // which element to remove while digesting; the real signature replaces it
  // at the same path.
  xml::Element* placeholder = parent->AppendElement(Ds("Signature"));
  size_t index = parent->IndexOfChild(placeholder);
  ReferenceContext ctx;
  ctx.document = doc;
  ctx.signature_path = ComputePath(placeholder);
  ctx.resolver = nullptr;

  ReferenceSpec spec;
  spec.uri = "";
  spec.transforms = {crypto::kAlgEnvelopedSignature, crypto::kAlgC14N};
  spec.digest_algorithm = digest_algorithm;

  auto built = BuildUnsigned({spec}, ctx);
  if (!built.ok()) {
    parent->RemoveChild(placeholder);
    return built.status();
  }
  parent->ReplaceChild(placeholder, std::move(built).value());
  auto* signature = static_cast<xml::Element*>(parent->ChildAt(index));
  DISCSEC_RETURN_IF_ERROR(Finalize(signature));
  return signature;
}

Result<xml::Element*> Signer::SignDetached(xml::Document* doc,
                                           xml::Element* target,
                                           const std::string& target_id,
                                           xml::Element* parent) const {
  if (doc == nullptr || target == nullptr || parent == nullptr) {
    return Status::InvalidArgument("SignDetached needs doc, target, parent");
  }
  if (target_id.empty()) {
    return Status::InvalidArgument("SignDetached needs a target id");
  }
  const std::string* existing = target->GetAttribute("Id");
  if (existing != nullptr && *existing != target_id) {
    return Status::InvalidArgument("target already has a different Id");
  }
  target->SetAttribute("Id", target_id);

  ReferenceContext ctx;
  ctx.document = doc;
  ReferenceSpec spec;
  spec.uri = "#" + target_id;
  spec.transforms = {crypto::kAlgC14N};
  DISCSEC_ASSIGN_OR_RETURN(auto built, BuildUnsigned({spec}, ctx));
  auto* signature =
      static_cast<xml::Element*>(parent->AppendChild(std::move(built)));
  DISCSEC_RETURN_IF_ERROR(Finalize(signature));
  return signature;
}

Result<std::unique_ptr<xml::Element>> Signer::SignEnveloping(
    const xml::Element& content) const {
  // The Object carrying the content is part of the Signature itself; build
  // the full element first, digest "#object" against a scratch document that
  // mirrors the final layout, then finalize standalone.
  auto signature = std::make_unique<xml::Element>(Ds("Signature"));
  signature->SetAttribute("xmlns:" + std::string(kDsPrefix), kDsNamespace);
  xml::Element* object = signature->AppendElement(Ds("Object"));
  object->SetAttribute("Id", "object");
  object->AppendChild(content.Clone());

  xml::Document scratch = xml::Document::WithRoot(signature->CloneElement());
  ReferenceContext ctx;
  ctx.document = &scratch;
  ReferenceSpec spec;
  spec.uri = "#object";
  spec.transforms = {crypto::kAlgC14N};
  DISCSEC_ASSIGN_OR_RETURN(auto built, BuildUnsigned({spec}, ctx));
  built->AppendChild(signature->RemoveChild(object));
  DISCSEC_RETURN_IF_ERROR(Finalize(built.get()));
  return built;
}

}  // namespace xmldsig
}  // namespace discsec
