#include "xmldsig/transforms.h"

#include <optional>

#include "common/base64.h"
#include "common/strings.h"
#include "crypto/algorithms.h"
#include "xml/c14n.h"
#include "xml/parser.h"
#include "xmldsig/constants.h"

namespace discsec {
namespace xmldsig {

std::vector<size_t> ComputePath(const xml::Element* e) {
  std::vector<size_t> path;
  const xml::Element* cur = e;
  while (cur->parent() != nullptr) {
    path.push_back(cur->parent()->IndexOfChild(cur));
    cur = cur->parent();
  }
  std::reverse(path.begin(), path.end());
  return path;
}

xml::Element* ResolvePath(const xml::Document& doc,
                          const std::vector<size_t>& path) {
  xml::Element* cur = doc.root();
  for (size_t idx : path) {
    if (cur == nullptr || idx >= cur->ChildCount()) return nullptr;
    xml::Node* child = cur->ChildAt(idx);
    if (!child->IsElement()) return nullptr;
    cur = static_cast<xml::Element*>(child);
  }
  return cur;
}

namespace {

/// The transform pipeline state: either a node-set (a working clone of the
/// source document, optionally narrowed to a subtree apex) or raw octets.
struct PipelineState {
  std::optional<xml::Document> working;
  xml::Element* apex = nullptr;  // inside *working; null = whole document
  Bytes octets;
  bool is_octets = false;
};

Status ToOctets(PipelineState* state, const xml::C14NOptions& options) {
  if (state->is_octets) return Status::OK();
  std::string canonical =
      state->apex != nullptr
          ? xml::CanonicalizeElement(*state->apex, options)
          : xml::Canonicalize(*state->working, options);
  state->octets = ToBytes(canonical);
  state->is_octets = true;
  state->working.reset();
  state->apex = nullptr;
  return Status::OK();
}

Status ToOctets(PipelineState* state, bool with_comments) {
  xml::C14NOptions options;
  options.with_comments = with_comments;
  return ToOctets(state, options);
}

/// Reads the ec:InclusiveNamespaces PrefixList parameter of an exclusive
/// canonicalization transform (space-separated prefixes; "#default" names
/// the default namespace).
std::vector<std::string> ReadInclusivePrefixes(const xml::Element& transform) {
  std::vector<std::string> out;
  const xml::Element* inclusive =
      transform.FirstChildElementByLocalName("InclusiveNamespaces");
  if (inclusive == nullptr) return out;
  const std::string* list = inclusive->GetAttribute("PrefixList");
  if (list == nullptr) return out;
  for (const std::string& prefix : SplitString(*list, ' ')) {
    if (!prefix.empty()) out.push_back(prefix);
  }
  return out;
}

Status ToNodeSet(PipelineState* state) {
  if (!state->is_octets) return Status::OK();
  // Per XML-DSig, a transform requiring a node-set parses the octet stream.
  DISCSEC_ASSIGN_OR_RETURN(xml::Document doc,
                           xml::Parse(ToString(state->octets)));
  state->working = std::move(doc);
  state->apex = nullptr;
  state->is_octets = false;
  state->octets.clear();
  return Status::OK();
}

Status ApplyEnvelopedSignature(PipelineState* state,
                               const ReferenceContext& ctx) {
  DISCSEC_RETURN_IF_ERROR(ToNodeSet(state));
  if (ctx.signature_path.empty()) {
    return Status::InvalidArgument(
        "enveloped-signature transform without an in-document signature");
  }
  xml::Element* sig = ResolvePath(*state->working, ctx.signature_path);
  if (sig == nullptr) {
    return Status::Corruption(
        "enveloped-signature: signature element not found in working copy");
  }
  if (sig->parent() == nullptr) {
    return Status::InvalidArgument(
        "enveloped-signature: signature is the document root");
  }
  sig->parent()->RemoveChild(sig);
  return Status::OK();
}

Status ApplyBase64(PipelineState* state) {
  std::string text;
  if (state->is_octets) {
    text = ToString(state->octets);
  } else if (state->apex != nullptr) {
    text = state->apex->TextContent();
  } else if (state->working->root() != nullptr) {
    text = state->working->root()->TextContent();
  }
  DISCSEC_ASSIGN_OR_RETURN(Bytes decoded, Base64Decode(text));
  state->octets = std::move(decoded);
  state->is_octets = true;
  state->working.reset();
  state->apex = nullptr;
  return Status::OK();
}

Status ApplyDecryption(const xml::Element& transform, PipelineState* state,
                       const ReferenceContext& ctx) {
  if (!ctx.decrypt_hook) {
    return Status::Unsupported(
        "decryption transform requires a decrypt hook (player decryptor)");
  }
  DISCSEC_RETURN_IF_ERROR(ToNodeSet(state));
  // Collect dcrpt:Except URIs ("#id" references naming EncryptedData
  // elements that must stay encrypted for digesting).
  std::vector<std::string> except_ids;
  for (const auto& child : transform.children()) {
    if (!child->IsElement()) continue;
    auto* e = static_cast<xml::Element*>(child.get());
    if (e->LocalName() != "Except") continue;
    const std::string* uri = e->GetAttribute("URI");
    if (uri == nullptr || uri->empty() || (*uri)[0] != '#') {
      return Status::ParseError("dcrpt:Except requires a #id URI");
    }
    except_ids.push_back(uri->substr(1));
  }
  return ctx.decrypt_hook(&*state->working, state->apex, except_ids);
}

}  // namespace

Result<Bytes> ProcessReference(const xml::Element& reference,
                               const ReferenceContext& ctx) {
  const std::string* uri_attr = reference.GetAttribute("URI");
  std::string uri = uri_attr != nullptr ? *uri_attr : std::string();

  PipelineState state;
  if (uri.empty()) {
    if (ctx.document == nullptr) {
      return Status::InvalidArgument(
          "same-document reference without a document");
    }
    state.working = ctx.document->Clone();
  } else if (uri[0] == '#') {
    if (ctx.document == nullptr) {
      return Status::InvalidArgument(
          "same-document reference without a document");
    }
    state.working = ctx.document->Clone();
    state.apex = state.working->FindById(uri.substr(1));
    if (state.apex == nullptr) {
      return Status::NotFound("reference target '" + uri + "' not found");
    }
  } else {
    if (!ctx.resolver) {
      return Status::NotFound("no resolver for external reference '" + uri +
                              "'");
    }
    DISCSEC_ASSIGN_OR_RETURN(state.octets, ctx.resolver(uri));
    state.is_octets = true;
  }

  // Apply the ds:Transforms chain in document order.
  const xml::Element* transforms =
      reference.FirstChildElementByLocalName("Transforms");
  if (transforms != nullptr) {
    for (const auto& child : transforms->children()) {
      if (!child->IsElement()) continue;
      const auto* t = static_cast<const xml::Element*>(child.get());
      if (t->LocalName() != "Transform") continue;
      const std::string* alg = t->GetAttribute("Algorithm");
      if (alg == nullptr) {
        return Status::ParseError("Transform missing Algorithm attribute");
      }
      if (*alg == crypto::kAlgC14N) {
        DISCSEC_RETURN_IF_ERROR(ToOctets(&state, /*with_comments=*/false));
      } else if (*alg == crypto::kAlgC14NWithComments) {
        DISCSEC_RETURN_IF_ERROR(ToOctets(&state, /*with_comments=*/true));
      } else if (*alg == crypto::kAlgExcC14N ||
                 *alg == crypto::kAlgExcC14NWithComments) {
        xml::C14NOptions options;
        options.exclusive = true;
        options.with_comments = (*alg == crypto::kAlgExcC14NWithComments);
        options.inclusive_prefixes = ReadInclusivePrefixes(*t);
        DISCSEC_RETURN_IF_ERROR(ToOctets(&state, options));
      } else if (*alg == crypto::kAlgEnvelopedSignature) {
        DISCSEC_RETURN_IF_ERROR(ApplyEnvelopedSignature(&state, ctx));
      } else if (*alg == crypto::kAlgBase64Transform) {
        DISCSEC_RETURN_IF_ERROR(ApplyBase64(&state));
      } else if (*alg == crypto::kAlgDecryptionTransform) {
        DISCSEC_RETURN_IF_ERROR(ApplyDecryption(*t, &state, ctx));
      } else {
        return Status::Unsupported("transform algorithm: " + *alg);
      }
    }
  }

  // Implicit final canonicalization when still in node-set form.
  DISCSEC_RETURN_IF_ERROR(ToOctets(&state, /*with_comments=*/false));
  return state.octets;
}

}  // namespace xmldsig
}  // namespace discsec
