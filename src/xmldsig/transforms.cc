#include "xmldsig/transforms.h"

#include <optional>

#include "common/base64.h"
#include "common/strings.h"
#include "crypto/algorithms.h"
#include "xml/c14n.h"
#include "xml/parser.h"
#include "xmldsig/constants.h"

namespace discsec {
namespace xmldsig {

std::vector<size_t> ComputePath(const xml::Element* e) {
  std::vector<size_t> path;
  const xml::Element* cur = e;
  while (cur->parent() != nullptr) {
    path.push_back(cur->parent()->IndexOfChild(cur));
    cur = cur->parent();
  }
  std::reverse(path.begin(), path.end());
  return path;
}

xml::Element* ResolvePath(const xml::Document& doc,
                          const std::vector<size_t>& path) {
  xml::Element* cur = doc.root();
  for (size_t idx : path) {
    if (cur == nullptr || idx >= cur->ChildCount()) return nullptr;
    xml::Node* child = cur->ChildAt(idx);
    if (!child->IsElement()) return nullptr;
    cur = static_cast<xml::Element*>(child);
  }
  return cur;
}

namespace {

/// The transform pipeline state: either a node-set (a working clone of the
/// source document, optionally narrowed to a subtree apex) or raw octets.
struct PipelineState {
  std::optional<xml::Document> working;
  xml::Element* apex = nullptr;  // inside *working; null = whole document
  Bytes octets;
  bool is_octets = false;
};

/// Streams the current node-set's canonical form into `sink` (no-op
/// conversion for octet state: the buffered octets are appended as-is).
void CanonicalizeStateTo(const PipelineState& state,
                         const xml::C14NOptions& options, ByteSink* sink) {
  if (state.is_octets) {
    sink->Append(state.octets);
    return;
  }
  if (state.apex != nullptr) {
    xml::CanonicalizeElement(*state.apex, options, sink);
  } else {
    xml::Canonicalize(*state.working, options, sink);
  }
}

/// Buffering fallback: a later transform needs the full octet stream, so
/// the canonical form must be materialized here.
Status ToOctets(PipelineState* state, const xml::C14NOptions& options) {
  if (state->is_octets) return Status::OK();
  xml::internal::NoteBufferedCanonicalization();
  Bytes canonical;
  BytesSink sink(&canonical);
  CanonicalizeStateTo(*state, options, &sink);
  state->octets = std::move(canonical);
  state->is_octets = true;
  state->working.reset();
  state->apex = nullptr;
  return Status::OK();
}

/// Reads the ec:InclusiveNamespaces PrefixList parameter of an exclusive
/// canonicalization transform (space-separated prefixes; "#default" names
/// the default namespace).
std::vector<std::string> ReadInclusivePrefixes(const xml::Element& transform) {
  std::vector<std::string> out;
  const xml::Element* inclusive =
      transform.FirstChildElementByLocalName("InclusiveNamespaces");
  if (inclusive == nullptr) return out;
  const std::string* list = inclusive->GetAttribute("PrefixList");
  if (list == nullptr) return out;
  for (const std::string& prefix : SplitString(*list, ' ')) {
    if (!prefix.empty()) out.push_back(prefix);
  }
  return out;
}

Status ToNodeSet(PipelineState* state, const xml::ParseOptions& options) {
  if (!state->is_octets) return Status::OK();
  // Per XML-DSig, a transform requiring a node-set parses the octet stream
  // — under the same input limits as the top-level document parse.
  DISCSEC_ASSIGN_OR_RETURN(xml::Document doc,
                           xml::Parse(ToString(state->octets), options));
  state->working = std::move(doc);
  state->apex = nullptr;
  state->is_octets = false;
  state->octets.clear();
  return Status::OK();
}

Status ApplyEnvelopedSignature(PipelineState* state,
                               const ReferenceContext& ctx) {
  DISCSEC_RETURN_IF_ERROR(ToNodeSet(state, ctx.parse_options));
  if (ctx.signature_path.empty()) {
    return Status::InvalidArgument(
        "enveloped-signature transform without an in-document signature");
  }
  xml::Element* sig = ResolvePath(*state->working, ctx.signature_path);
  if (sig == nullptr) {
    return Status::Corruption(
        "enveloped-signature: signature element not found in working copy");
  }
  if (sig->parent() == nullptr) {
    return Status::InvalidArgument(
        "enveloped-signature: signature is the document root");
  }
  sig->parent()->RemoveChild(sig);
  return Status::OK();
}

Status ApplyBase64(PipelineState* state) {
  std::string text;
  if (state->is_octets) {
    text = ToString(state->octets);
  } else if (state->apex != nullptr) {
    text = state->apex->TextContent();
  } else if (state->working->root() != nullptr) {
    text = state->working->root()->TextContent();
  }
  DISCSEC_ASSIGN_OR_RETURN(Bytes decoded, Base64Decode(text));
  state->octets = std::move(decoded);
  state->is_octets = true;
  state->working.reset();
  state->apex = nullptr;
  return Status::OK();
}

Status ApplyDecryption(const xml::Element& transform, PipelineState* state,
                       const ReferenceContext& ctx) {
  if (!ctx.decrypt_hook) {
    return Status::Unsupported(
        "decryption transform requires a decrypt hook (player decryptor)");
  }
  DISCSEC_RETURN_IF_ERROR(ToNodeSet(state, ctx.parse_options));
  // Collect dcrpt:Except URIs ("#id" references naming EncryptedData
  // elements that must stay encrypted for digesting).
  std::vector<std::string> except_ids;
  for (const auto& child : transform.children()) {
    if (!child->IsElement()) continue;
    auto* e = static_cast<xml::Element*>(child.get());
    if (e->LocalName() != "Except") continue;
    const std::string* uri = e->GetAttribute("URI");
    if (uri == nullptr || uri->empty() || (*uri)[0] != '#') {
      return Status::ParseError("dcrpt:Except requires a #id URI");
    }
    except_ids.push_back(uri->substr(1));
  }
  return ctx.decrypt_hook(&*state->working, state->apex, except_ids);
}

}  // namespace

namespace {

/// True for the canonicalization transform algorithms, filling `options`.
bool ReadC14NTransform(const xml::Element& transform, const std::string& alg,
                       xml::C14NOptions* options) {
  if (alg == crypto::kAlgC14N || alg == crypto::kAlgC14NWithComments) {
    options->with_comments = (alg == crypto::kAlgC14NWithComments);
    return true;
  }
  if (alg == crypto::kAlgExcC14N || alg == crypto::kAlgExcC14NWithComments) {
    options->exclusive = true;
    options->with_comments = (alg == crypto::kAlgExcC14NWithComments);
    options->inclusive_prefixes = ReadInclusivePrefixes(transform);
    return true;
  }
  return false;
}

}  // namespace

Status ProcessReferenceTo(const xml::Element& reference,
                          const ReferenceContext& ctx, ByteSink* sink,
                          ReferenceResolution* resolution) {
  const std::string* uri_attr = reference.GetAttribute("URI");
  std::string uri = uri_attr != nullptr ? *uri_attr : std::string();

  PipelineState state;
  if (uri.empty()) {
    if (ctx.document == nullptr) {
      return Status::InvalidArgument(
          "same-document reference without a document");
    }
    state.working = ctx.document->Clone();
    if (resolution != nullptr && state.working->root() != nullptr) {
      resolution->same_document = true;
      resolution->covers_root = true;
      resolution->element_name = state.working->root()->name();
      resolution->element_path = xml::ElementPath(state.working->root());
    }
  } else if (uri[0] == '#') {
    if (ctx.document == nullptr) {
      return Status::InvalidArgument(
          "same-document reference without a document");
    }
    state.working = ctx.document->Clone();
    // Strict resolution: a duplicate Id is the classic signature-wrapping
    // vector, so it is a hard verification failure, never a first-match.
    std::string id = uri.substr(1);
    Result<xml::Element*> apex = xml::IdRegistry(*state.working).Find(id);
    if (!apex.ok()) {
      if (apex.status().IsNotFound()) {
        return Status::NotFound("reference target '" + uri + "' not found");
      }
      return Status::VerificationFailed("reference " +
                                        apex.status().message());
    }
    state.apex = apex.value();
    if (resolution != nullptr) {
      resolution->same_document = true;
      resolution->covers_root = (state.apex == state.working->root());
      resolution->element_name = state.apex->name();
      resolution->element_path = xml::ElementPath(state.apex);
    }
  } else {
    if (!ctx.resolver) {
      return Status::NotFound("no resolver for external reference '" + uri +
                              "'");
    }
    DISCSEC_ASSIGN_OR_RETURN(state.octets, ctx.resolver(uri));
    state.is_octets = true;
  }

  // Collect the ds:Transform chain so the terminal transform is known:
  // only a canonicalization with transforms still after it must buffer.
  std::vector<const xml::Element*> chain;
  const xml::Element* transforms =
      reference.FirstChildElementByLocalName("Transforms");
  if (transforms != nullptr) {
    for (const auto& child : transforms->children()) {
      if (!child->IsElement()) continue;
      const auto* t = static_cast<const xml::Element*>(child.get());
      if (t->LocalName() == "Transform") chain.push_back(t);
    }
  }

  // Apply the chain in document order.
  for (size_t i = 0; i < chain.size(); ++i) {
    const xml::Element* t = chain[i];
    const std::string* alg = t->GetAttribute("Algorithm");
    if (alg == nullptr) {
      return Status::ParseError("Transform missing Algorithm attribute");
    }
    xml::C14NOptions c14n_options;
    c14n_options.tracer = ctx.parse_options.tracer;
    if (ReadC14NTransform(*t, *alg, &c14n_options)) {
      if (i + 1 == chain.size()) {
        // Terminal canonicalization: stream straight into the sink.
        CanonicalizeStateTo(state, c14n_options, sink);
        return Status::OK();
      }
      DISCSEC_RETURN_IF_ERROR(ToOctets(&state, c14n_options));
    } else if (*alg == crypto::kAlgEnvelopedSignature) {
      DISCSEC_RETURN_IF_ERROR(ApplyEnvelopedSignature(&state, ctx));
    } else if (*alg == crypto::kAlgBase64Transform) {
      DISCSEC_RETURN_IF_ERROR(ApplyBase64(&state));
    } else if (*alg == crypto::kAlgDecryptionTransform) {
      DISCSEC_RETURN_IF_ERROR(ApplyDecryption(*t, &state, ctx));
    } else {
      return Status::Unsupported("transform algorithm: " + *alg);
    }
  }

  // Implicit final canonicalization when still in node-set form; buffered
  // octet state (external URI, base64 output) is forwarded as-is.
  xml::C14NOptions final_c14n;
  final_c14n.tracer = ctx.parse_options.tracer;
  CanonicalizeStateTo(state, final_c14n, sink);
  return Status::OK();
}

Result<Bytes> ProcessReference(const xml::Element& reference,
                               const ReferenceContext& ctx) {
  Bytes out;
  BytesSink sink(&out);
  DISCSEC_RETURN_IF_ERROR(ProcessReferenceTo(reference, ctx, &sink));
  return out;
}

}  // namespace xmldsig
}  // namespace discsec
