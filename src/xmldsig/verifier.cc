#include "xmldsig/verifier.h"

#include <algorithm>
#include <optional>
#include <unordered_map>

#include "common/base64.h"
#include "common/task_graph.h"
#include "common/thread_pool.h"
#include "crypto/algorithms.h"
#include "crypto/digest.h"
#include "crypto/digest_cache.h"
#include "crypto/hmac.h"
#include "crypto/sha1.h"
#include "pki/key_codec.h"
#include "xml/c14n.h"
#include "xml/parser.h"
#include "xml/stream_verify.h"
#include "xmldsig/constants.h"

namespace discsec {
namespace xmldsig {

/// Declared in transforms.h. What VerifyStream's scan pass substitutes for
/// a DOM: the signature's own path plus the Id → element index, all in
/// xmldsig::ComputePath / xml::ElementPath form.
struct StreamIndex {
  std::vector<size_t> signature_path;
  std::string root_name;
  std::string root_path_string;
  const std::unordered_map<std::string, xml::ScannedId>* ids = nullptr;
  /// The fused pass's speculative output: the whole document's canonical
  /// form (no comments) with the signature subtree omitted — exactly the
  /// reference octets of a [enveloped-signature, C14N] URI="" reference.
  /// References matching that plan append this buffer instead of walking
  /// the source again.
  const std::string* enveloped_c14n = nullptr;
};

namespace {

bool IsDsElement(const xml::Element& e, std::string_view local) {
  return e.LocalName() == local && e.NamespaceUri() == kDsNamespace;
}

Result<std::vector<pki::Certificate>> ParseCertificateChain(
    const xml::Element& key_info) {
  std::vector<pki::Certificate> chain;
  const xml::Element* x509 = key_info.FirstChildElementByLocalName("X509Data");
  if (x509 == nullptr) return chain;
  for (const auto& child : x509->children()) {
    if (!child->IsElement()) continue;
    const auto* e = static_cast<const xml::Element*>(child.get());
    if (e->LocalName() != "X509Certificate") continue;
    DISCSEC_ASSIGN_OR_RETURN(Bytes der, Base64Decode(e->TextContent()));
    DISCSEC_ASSIGN_OR_RETURN(pki::Certificate cert,
                             pki::Certificate::FromXmlString(ToString(der)));
    chain.push_back(std::move(cert));
  }
  return chain;
}

/// Establishes the verification key per the options' trust policy.
struct ResolvedKey {
  bool is_hmac = false;
  Bytes hmac_secret;
  crypto::RsaPublicKey rsa;
  std::string signer_subject;
};

Result<ResolvedKey> ResolveKey(const xml::Element* key_info,
                               const std::string& signature_algorithm,
                               const VerifyOptions& options) {
  ResolvedKey out;
  if (signature_algorithm == crypto::kAlgHmacSha1) {
    if (!options.hmac_secret.has_value()) {
      return Status::VerificationFailed(
          "hmac-sha1 signature but no shared secret configured");
    }
    out.is_hmac = true;
    out.hmac_secret = *options.hmac_secret;
    return out;
  }
  if (options.trusted_key.has_value()) {
    out.rsa = *options.trusted_key;
    return out;
  }
  if (options.cert_store != nullptr) {
    if (key_info == nullptr) {
      return Status::VerificationFailed(
          "certificate chain required but KeyInfo missing");
    }
    DISCSEC_ASSIGN_OR_RETURN(std::vector<pki::Certificate> chain,
                             ParseCertificateChain(*key_info));
    if (chain.empty()) {
      return Status::VerificationFailed(
          "certificate chain required but X509Data missing/empty");
    }
    DISCSEC_RETURN_IF_ERROR(
        options.cert_store->ValidateChain(chain, options.now));
    out.rsa = chain.front().info().public_key;
    out.signer_subject = chain.front().info().subject;
    // Cross-check: when a KeyValue is also present it must match the leaf
    // certificate (prevents mix-and-match confusion).
    if (key_info->FirstChildElementByLocalName("KeyValue") != nullptr) {
      const xml::Element* kv =
          key_info->FirstChildElementByLocalName("KeyValue")
              ->FirstChildElementByLocalName("RSAKeyValue");
      if (kv != nullptr) {
        DISCSEC_ASSIGN_OR_RETURN(crypto::RsaPublicKey declared,
                                 pki::RsaKeyFromXml(*kv));
        if (!(declared == out.rsa)) {
          return Status::VerificationFailed(
              "KeyValue does not match leaf certificate key");
        }
      }
    }
    return out;
  }
  if (options.allow_bare_key_value) {
    if (key_info == nullptr) {
      return Status::VerificationFailed("no KeyInfo to take KeyValue from");
    }
    const xml::Element* key_value =
        key_info->FirstChildElementByLocalName("KeyValue");
    if (key_value == nullptr) {
      return Status::VerificationFailed("KeyInfo has no KeyValue");
    }
    const xml::Element* rsa =
        key_value->FirstChildElementByLocalName("RSAKeyValue");
    if (rsa == nullptr) {
      return Status::VerificationFailed("KeyValue has no RSAKeyValue");
    }
    DISCSEC_ASSIGN_OR_RETURN(out.rsa, pki::RsaKeyFromXml(*rsa));
    return out;
  }
  return Status::VerificationFailed(
      "no trust source configured (cert store, trusted key, or bare "
      "KeyValue opt-in)");
}

/// What the streaming fast path will do for one Reference, decided fully
/// before any byte is emitted (fallback must leave the sink untouched).
struct StreamPlan {
  bool whole_document = false;  // URI "" (else "#id")
  std::string id;               // the fragment, for "#id"
  bool enveloped = false;
  bool with_comments = false;
};

bool IsPathPrefixOrEqual(const std::vector<size_t>& prefix,
                         const std::vector<size_t>& path) {
  if (prefix.size() > path.size()) return false;
  return std::equal(prefix.begin(), prefix.end(), path.begin());
}

/// Streaming eligibility (DESIGN.md §14): same-document URI and a transform
/// chain of exactly [enveloped-signature]? then [inclusive C14N]? with
/// nothing after. Anything else — external URIs, exclusive C14N, base64,
/// decryption, mid-chain canonicalization, malformed Transform elements —
/// returns false and the DOM pipeline handles (or rejects) it, so the fast
/// path never has to reproduce an error it can avoid encountering.
bool PlanStreamReference(const xml::Element& ref, const ReferenceContext& ctx,
                         StreamPlan* plan) {
  if (ctx.document == nullptr && ctx.stream_index == nullptr) return false;
  const std::string* uri_attr = ref.GetAttribute("URI");
  std::string_view uri = uri_attr != nullptr ? *uri_attr : std::string_view();
  if (!uri.empty() && uri[0] != '#') return false;
  plan->whole_document = uri.empty();
  if (!plan->whole_document) plan->id = std::string(uri.substr(1));

  std::vector<std::string_view> algs;
  const xml::Element* transforms =
      ref.FirstChildElementByLocalName("Transforms");
  if (transforms != nullptr) {
    for (const auto& child : transforms->children()) {
      if (!child->IsElement()) continue;
      const auto* t = static_cast<const xml::Element*>(child.get());
      if (t->LocalName() != "Transform") continue;
      const std::string* alg = t->GetAttribute("Algorithm");
      if (alg == nullptr) return false;  // DOM path raises the ParseError
      algs.push_back(*alg);
    }
  }
  size_t i = 0;
  if (i < algs.size() && algs[i] == crypto::kAlgEnvelopedSignature) {
    plan->enveloped = true;
    ++i;
  }
  if (i < algs.size() && (algs[i] == crypto::kAlgC14N ||
                          algs[i] == crypto::kAlgC14NWithComments)) {
    plan->with_comments = (algs[i] == crypto::kAlgC14NWithComments);
    ++i;
  }
  if (i != algs.size()) return false;
  // Enveloped without an in-document signature is the DOM path's error.
  if (plan->enveloped && ctx.signature_path.empty()) return false;
  return true;
}

/// Runs one Reference through the streaming pipeline. Returns true when the
/// reference was handled (out_status holds the verdict, resolution is
/// filled on success); false means fall back to the DOM pipeline with the
/// sink guaranteed untouched. `id_registry` indexes the ORIGINAL document —
/// no clone exists on this path.
bool TryStreamReference(const xml::Element& ref, const ReferenceContext& ctx,
                        std::string_view source_text,
                        const xml::IdRegistry* id_registry, ByteSink* sink,
                        ReferenceResolution* resolution, Status* out_status) {
  StreamPlan plan;
  if (!PlanStreamReference(ref, ctx, &plan)) return false;

  std::vector<size_t> apex_path;
  xml::StreamingC14NOptions c14n;
  c14n.with_comments = plan.with_comments;
  if (plan.whole_document) {
    if (resolution != nullptr) {
      if (ctx.stream_index != nullptr) {
        resolution->same_document = true;
        resolution->covers_root = true;
        resolution->element_name = ctx.stream_index->root_name;
        resolution->element_path = ctx.stream_index->root_path_string;
      } else if (ctx.document->root() != nullptr) {
        resolution->same_document = true;
        resolution->covers_root = true;
        resolution->element_name = ctx.document->root()->name();
        resolution->element_path = xml::ElementPath(ctx.document->root());
      }
    }
  } else if (ctx.stream_index != nullptr) {
    // Wire-level path: the scan index answers Id lookups with the same
    // strictness and error strings as IdRegistry below.
    auto it = ctx.stream_index->ids->find(plan.id);
    if (it == ctx.stream_index->ids->end()) {
      *out_status =
          Status::NotFound("reference target '#" + plan.id + "' not found");
      return true;
    }
    if (it->second.count > 1) {
      *out_status = Status::VerificationFailed(
          "reference Id '" + plan.id + "' is ambiguous: declared by " +
          std::to_string(it->second.count) +
          " elements (duplicate-ID wrapping)");
      return true;
    }
    apex_path = it->second.path;
    // VerifyStream's pre-flight already rejected this shape; keep the
    // check so a `false` here can never reach the (absent) DOM pipeline.
    if (plan.enveloped && IsPathPrefixOrEqual(ctx.signature_path, apex_path)) {
      return false;
    }
    c14n.apex_path = &apex_path;
    if (resolution != nullptr) {
      resolution->same_document = true;
      resolution->covers_root = apex_path.empty();
      resolution->element_name = it->second.element_name;
      resolution->element_path = it->second.element_path;
    }
  } else {
    // Same strictness and error strings as the DOM pipeline
    // (transforms.cc): duplicate Ids are a hard failure, not first-match.
    Result<xml::Element*> apex = id_registry->Find(plan.id);
    if (!apex.ok()) {
      if (apex.status().IsNotFound()) {
        *out_status =
            Status::NotFound("reference target '#" + plan.id + "' not found");
      } else {
        *out_status =
            Status::VerificationFailed("reference " + apex.status().message());
      }
      return true;
    }
    apex_path = ComputePath(apex.value());
    // An apex at or inside the signature would be detached by the enveloped
    // transform — let the DOM pipeline define that edge case's behavior.
    if (plan.enveloped && IsPathPrefixOrEqual(ctx.signature_path, apex_path)) {
      return false;
    }
    c14n.apex_path = &apex_path;
    if (resolution != nullptr) {
      resolution->same_document = true;
      resolution->covers_root = (apex.value() == ctx.document->root());
      resolution->element_name = apex.value()->name();
      resolution->element_path = xml::ElementPath(apex.value());
    }
  }
  if (plan.enveloped) c14n.skip_path = &ctx.signature_path;
  // The one-pass shortcut: the fused scan already produced exactly these
  // octets (whole document, enveloped skip, no comments) — reuse them
  // instead of lexing the source a second time.
  if (ctx.stream_index != nullptr &&
      ctx.stream_index->enveloped_c14n != nullptr && plan.whole_document &&
      plan.enveloped && !plan.with_comments) {
    sink->Append(*ctx.stream_index->enveloped_c14n);
    *out_status = Status::OK();
    return true;
  }
  *out_status =
      xml::StreamCanonicalize(source_text, ctx.parse_options, c14n, sink);
  return true;
}

/// Escapes an attribute value for the synthetic wrapper element so it
/// round-trips the lexer's unescaped form exactly (whitespace as character
/// references, or attribute-value normalization would fold it to spaces).
std::string EscapeWrapAttr(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '"': out += "&quot;"; break;
      case '\t': out += "&#9;"; break;
      case '\n': out += "&#10;"; break;
      case '\r': out += "&#13;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

}  // namespace

std::vector<xml::Element*> Verifier::FindSignatures(xml::Element* root) {
  std::vector<xml::Element*> out;
  if (root == nullptr) return out;
  root->ForEachElement([&](xml::Element* e) {
    if (IsDsElement(*e, "Signature")) out.push_back(e);
  });
  return out;
}

Result<VerifyInfo> Verifier::Verify(const xml::Document* doc,
                                    const xml::Element& signature,
                                    const VerifyOptions& options) {
  return VerifyWithIndex(doc, signature, options, nullptr);
}

Result<VerifyInfo> Verifier::VerifyWithIndex(const xml::Document* doc,
                                             const xml::Element& signature,
                                             const VerifyOptions& options,
                                             const StreamIndex* index) {
  obs::ScopedSpan verify_span(options.tracer, "xmldsig.verify");
  obs::ScopedLatency verify_latency(
      options.metrics != nullptr
          ? options.metrics->GetHistogram("xmldsig.verify_us")
          : nullptr);
  if (!IsDsElement(signature, "Signature")) {
    return Status::InvalidArgument("element is not a ds:Signature");
  }
  const xml::Element* signed_info =
      signature.FirstChildElementByLocalName("SignedInfo");
  const xml::Element* sig_value_elem =
      signature.FirstChildElementByLocalName("SignatureValue");
  if (signed_info == nullptr || sig_value_elem == nullptr) {
    return Status::ParseError("Signature missing SignedInfo/SignatureValue");
  }

  // Canonicalization method: only Canonical XML 1.0 variants are accepted.
  const xml::Element* c14n_method =
      signed_info->FirstChildElementByLocalName("CanonicalizationMethod");
  if (c14n_method == nullptr || c14n_method->GetAttribute("Algorithm") ==
                                    nullptr) {
    return Status::ParseError("missing CanonicalizationMethod");
  }
  const std::string& c14n_alg = *c14n_method->GetAttribute("Algorithm");
  xml::C14NOptions signed_info_c14n;
  if (c14n_alg == crypto::kAlgC14N) {
    signed_info_c14n.with_comments = false;
  } else if (c14n_alg == crypto::kAlgC14NWithComments) {
    signed_info_c14n.with_comments = true;
  } else if (c14n_alg == crypto::kAlgExcC14N) {
    signed_info_c14n.exclusive = true;
  } else if (c14n_alg == crypto::kAlgExcC14NWithComments) {
    signed_info_c14n.exclusive = true;
    signed_info_c14n.with_comments = true;
  } else {
    return Status::Unsupported("canonicalization algorithm: " + c14n_alg);
  }

  const xml::Element* sig_method =
      signed_info->FirstChildElementByLocalName("SignatureMethod");
  if (sig_method == nullptr ||
      sig_method->GetAttribute("Algorithm") == nullptr) {
    return Status::ParseError("missing SignatureMethod");
  }
  std::string signature_algorithm = *sig_method->GetAttribute("Algorithm");

  // Reference validation.
  ReferenceContext ctx;
  ctx.document = doc;
  ctx.resolver = options.resolver;
  ctx.decrypt_hook = options.decrypt_hook;
  ctx.parse_options = options.parse_options;
  // Transforms may re-parse octet streams on pool workers; the bump arena
  // is single-threaded, so inner parses always allocate from the heap.
  ctx.parse_options.arena.reset();
  // The tracer rides ReferenceContext::parse_options into the transform
  // pipeline, so inner re-parses and canonicalizations emit child spans.
  if (ctx.parse_options.tracer == nullptr) {
    ctx.parse_options.tracer = options.tracer;
  }
  if (index != nullptr) {
    // Wire-level path: the signature element lives in a detached subtree
    // parse, so its path in the ORIGINAL document comes from the scan.
    ctx.stream_index = index;
    ctx.signature_path = index->signature_path;
  } else if (doc != nullptr && signature.parent() != nullptr) {
    ctx.signature_path = ComputePath(&signature);
  }

  // Streaming fast path (DESIGN.md §14): one Id index over the ORIGINAL
  // document, shared read-only by every reference (and pool worker) —
  // the DOM pipeline instead builds one registry per reference clone.
  // The wire-level path resolves Ids from the scan index instead.
  std::optional<xml::IdRegistry> stream_ids;
  if (index == nullptr && !options.source_text.empty() && doc != nullptr) {
    stream_ids.emplace(*doc);
  }
  const bool stream_capable = stream_ids.has_value() || index != nullptr;

  VerifyInfo info;
  info.signature_algorithm = signature_algorithm;
  std::vector<const xml::Element*> refs;
  for (const auto& child : signed_info->children()) {
    if (!child->IsElement()) continue;
    const auto* ref = static_cast<const xml::Element*>(child.get());
    if (ref->LocalName() == "Reference") refs.push_back(ref);
  }
  if (refs.empty()) {
    return Status::VerificationFailed("signature has no references");
  }
  verify_span.SetAttr("algorithm", signature_algorithm);
  verify_span.SetAttr("references", static_cast<uint64_t>(refs.size()));

  // Each Reference canonicalizes + digests independently: same-document
  // targets clone the source document into a private working copy and the
  // shared context is read-only, so references fan out over the pool and
  // join before the SignedInfo signature check below. With a null pool
  // this degrades to the serial loop. The first failing reference in
  // document order decides the error either way, so parallel and serial
  // verification are observably identical.
  struct RefOutcome {
    Status status;
    VerifiedReference verified;
  };
  std::vector<RefOutcome> outcomes(refs.size());
  // Reference spans parent onto the verify span via its captured context —
  // thread-local nesting alone would orphan them on pool workers.
  const obs::SpanContext verify_ctx = verify_span.context();
  auto process_reference = [&](const xml::Element& ref) -> RefOutcome {
    obs::ScopedSpan ref_span(verify_ctx, "xmldsig.reference");
    RefOutcome out;
    const std::string* uri = ref.GetAttribute("URI");
    std::string uri_str = uri != nullptr ? *uri : std::string();
    ref_span.SetAttr("uri", uri_str);
    if (ref_span.enabled()) {
      // Transform chain as written, comma-joined in document order.
      std::string chain;
      const xml::Element* transforms =
          ref.FirstChildElementByLocalName("Transforms");
      if (transforms != nullptr) {
        for (const auto& child : transforms->children()) {
          if (!child->IsElement()) continue;
          const auto* t = static_cast<const xml::Element*>(child.get());
          if (t->LocalName() != "Transform") continue;
          const std::string* alg = t->GetAttribute("Algorithm");
          if (alg == nullptr) continue;
          if (!chain.empty()) chain += ",";
          chain += *alg;
        }
      }
      ref_span.SetAttr("transforms", chain);
    }
    const xml::Element* digest_method =
        ref.FirstChildElementByLocalName("DigestMethod");
    const xml::Element* digest_value =
        ref.FirstChildElementByLocalName("DigestValue");
    if (digest_method == nullptr || digest_value == nullptr ||
        digest_method->GetAttribute("Algorithm") == nullptr) {
      out.status = Status::ParseError("Reference missing digest method/value");
      return out;
    }
    const std::string& digest_alg = *digest_method->GetAttribute("Algorithm");
    ref_span.SetAttr("digest_alg", digest_alg);
    auto digest = crypto::MakeDigest(digest_alg);
    if (!digest.ok()) {
      out.status = digest.status();
      return out;
    }
    // The reference octets stream into the digest as they are produced —
    // through the content-addressed cache when one is configured.
    crypto::CachingDigestSink sink(options.digest_cache, digest->get(),
                                   digest_alg);
    ReferenceResolution resolution;
    bool streamed =
        stream_capable &&
        TryStreamReference(ref, ctx, options.source_text,
                           stream_ids.has_value() ? &*stream_ids : nullptr,
                           &sink, &resolution, &out.status);
    ref_span.SetAttr("pipeline", streamed ? "streaming" : "dom");
    if (!streamed) {
      out.status = ProcessReferenceTo(ref, ctx, &sink, &resolution);
    }
    if (!out.status.ok()) return out;
    Bytes actual = sink.Finalize();
    if (options.digest_cache != nullptr) {
      ref_span.SetAttr("cache", sink.was_hit() ? "hit" : "miss");
      if (options.metrics != nullptr) {
        options.metrics
            ->GetCounter(sink.was_hit() ? "xmldsig.cache_hits"
                                        : "xmldsig.cache_misses")
            ->Add();
      }
    } else {
      ref_span.SetAttr("cache", "off");
    }
    auto expected = Base64Decode(digest_value->TextContent());
    if (!expected.ok()) {
      out.status = expected.status();
      return out;
    }
    if (!ConstantTimeEquals(actual, expected.value())) {
      out.status = Status::VerificationFailed(
          "digest mismatch for reference '" + uri_str + "'");
      return out;
    }
    out.verified.uri = std::move(uri_str);
    out.verified.resolved_name = resolution.element_name;
    out.verified.resolved_path = resolution.element_path;
    out.verified.covers_root = resolution.covers_root;
    out.verified.same_document = resolution.same_document;
    return out;
  };
  if (options.pool == nullptr) {
    // Serial path, untouched: references digest in document order.
    for (size_t i = 0; i < refs.size(); ++i) {
      outcomes[i] = process_reference(*refs[i]);
    }
  } else {
    // Each Reference is an independent task-graph node. Fail-fast cancels
    // only nodes *after* the lowest failing reference, so every reference
    // the serial sweep would have reached still runs and the document-order
    // fold below reproduces the serial verdict byte-for-byte.
    taskgraph::TaskGraph graph;
    for (size_t i = 0; i < refs.size(); ++i) {
      graph.AddNode("xmldsig.reference#" + std::to_string(i),
                    [&outcomes, &process_reference, &refs, i]() -> Status {
                      outcomes[i] = process_reference(*refs[i]);
                      return outcomes[i].status;
                    });
    }
    taskgraph::TaskGraph::RunOptions run;
    run.pool = options.pool;
    run.fail_fast = true;
    // The verdict is re-derived from `outcomes` in document order below;
    // Run's return (the lowest failing node) is the same status by
    // construction.
    (void)graph.Run(run);
  }
  for (RefOutcome& outcome : outcomes) {
    if (!outcome.status.ok()) return outcome.status;
    info.reference_uris.push_back(outcome.verified.uri);
    info.references.push_back(std::move(outcome.verified));
  }
  if (options.metrics != nullptr) {
    options.metrics->GetCounter("xmldsig.references_verified")
        ->Add(info.references.size());
  }

  // See-what-is-signed policy over the resolved reference set.
  bool any_covers_root = false;
  for (const VerifiedReference& r : info.references) {
    if (r.covers_root) any_covers_root = true;
    if (!r.same_document || r.covers_root ||
        options.allowed_reference_roots.empty()) {
      continue;
    }
    bool allowed = false;
    for (const std::string& name : options.allowed_reference_roots) {
      if (r.resolved_name == name) {
        allowed = true;
        break;
      }
    }
    if (!allowed) {
      return Status::VerificationFailed(
          "reference '" + r.uri + "' resolved to disallowed element <" +
          r.resolved_name + "> at " + r.resolved_path +
          " (possible signature wrapping)");
    }
  }
  if (options.require_signed_root && !any_covers_root) {
    return Status::VerificationFailed(
        "policy requires a reference covering the document root, but none "
        "does (possible signature relocation)");
  }

  DISCSEC_ASSIGN_OR_RETURN(Bytes sig_value,
                           Base64Decode(sig_value_elem->TextContent()));

  const xml::Element* key_info =
      signature.FirstChildElementByLocalName("KeyInfo");
  if (key_info != nullptr) {
    const xml::Element* key_name =
        key_info->FirstChildElementByLocalName("KeyName");
    if (key_name != nullptr) info.key_name = key_name->TextContent();
  }
  DISCSEC_ASSIGN_OR_RETURN(
      ResolvedKey key, ResolveKey(key_info, signature_algorithm, options));
  info.signer_subject = key.signer_subject;

  // Signature value over canonical SignedInfo, streamed straight into the
  // MAC/digest so the canonical form is never materialized.
  obs::ScopedSpan si_span(options.tracer, "xmldsig.signed_info");
  si_span.SetAttr("algorithm", signature_algorithm);
  signed_info_c14n.tracer = options.tracer;
  if (key.is_hmac) {
    crypto::Hmac hmac(std::make_unique<crypto::Sha1>(), key.hmac_secret);
    crypto::HmacSink sink(&hmac);
    xml::CanonicalizeElement(*signed_info, signed_info_c14n, &sink);
    if (!ConstantTimeEquals(hmac.Finalize(), sig_value)) {
      return Status::VerificationFailed("HMAC signature mismatch");
    }
  } else {
    std::string digest_uri;
    if (signature_algorithm == crypto::kAlgRsaSha1) {
      digest_uri = crypto::kAlgSha1;
    } else if (signature_algorithm == crypto::kAlgRsaSha256) {
      digest_uri = crypto::kAlgSha256;
    } else {
      return Status::Unsupported("signature algorithm: " +
                                 signature_algorithm);
    }
    DISCSEC_ASSIGN_OR_RETURN(auto digest, crypto::MakeDigest(digest_uri));
    crypto::DigestSink sink(digest.get());
    xml::CanonicalizeElement(*signed_info, signed_info_c14n, &sink);
    DISCSEC_RETURN_IF_ERROR(crypto::RsaVerifyDigest(
        key.rsa, digest_uri, digest->Finalize(), sig_value));
  }
  return info;
}

Result<VerifyInfo> Verifier::VerifyFirstSignature(
    const xml::Document& doc, const VerifyOptions& options) {
  auto signatures = FindSignatures(doc.root());
  if (signatures.empty()) {
    return Status::NotFound("document contains no ds:Signature");
  }
  return Verify(&doc, *signatures.front(), options);
}

Result<VerifyInfo> Verifier::VerifyStream(std::string_view source,
                                          const VerifyOptions& options) {
  // The classic pipeline, for every shape the scan index cannot carry.
  // Running it from here keeps VerifyStream a drop-in for parse+verify:
  // same statuses, same VerifyInfo, different cost.
  auto full_pipeline = [&]() -> Result<VerifyInfo> {
    DISCSEC_ASSIGN_OR_RETURN(xml::Document doc,
                             xml::Parse(source, options.parse_options));
    VerifyOptions with_text = options;
    with_text.source_text = source;
    return VerifyFirstSignature(doc, with_text);
  };

  // ONE pass over the wire bytes: scan (signature location, Id index,
  // parse-error verdict) and speculative canonicalization fused over a
  // single lexer run — see ScanAndCanonicalize.
  std::string enveloped_c14n;
  Result<xml::SignatureScanResult> scan = xml::ScanAndCanonicalize(
      source, options.parse_options, kDsNamespace, "Signature",
      &enveloped_c14n);
  // Scan errors ARE the DOM parser's errors (the lexer reproduces them
  // token-for-token), so malformed input fails here exactly as it would
  // have failed in xml::Parse.
  if (!scan.ok()) return scan.status();
  if (scan.value().signatures.empty()) {
    return Status::NotFound("document contains no ds:Signature");
  }
  const xml::ScannedSignature& target = scan.value().signatures.front();

  // Parse ONLY the signature subtree — a few KB regardless of document
  // size — wrapped in a synthetic element that re-establishes the
  // namespace and xml:* environment its ancestors provided, so prefix
  // resolution and C14N inheritance behave as in the original document.
  std::string wrapped;
  wrapped.reserve(target.end - target.begin + 256);
  wrapped += "<stream-verify-wrap";
  for (const std::vector<xml::Attribute>* attrs :
       {&target.ns_in_scope, &target.xml_attrs}) {
    for (const xml::Attribute& attr : *attrs) {
      wrapped += ' ';
      wrapped += attr.name;
      wrapped += "=\"";
      wrapped += EscapeWrapAttr(attr.value);
      wrapped += '"';
    }
  }
  wrapped += '>';
  wrapped.append(source.substr(target.begin, target.end - target.begin));
  wrapped += "</stream-verify-wrap>";
  xml::ParseOptions subtree_options = options.parse_options;
  subtree_options.arena.reset();
  Result<xml::Document> subtree = xml::Parse(wrapped, subtree_options);
  if (!subtree.ok()) return full_pipeline();
  xml::Element* sig_elem = nullptr;
  if (subtree.value().root() != nullptr) {
    for (const auto& child : subtree.value().root()->children()) {
      if (child->IsElement()) {
        sig_elem = static_cast<xml::Element*>(child.get());
        break;
      }
    }
  }
  if (sig_elem == nullptr || !IsDsElement(*sig_elem, "Signature")) {
    return full_pipeline();
  }

  StreamIndex index;
  index.signature_path = target.path;
  index.root_name = scan.value().root_name;
  index.root_path_string = "/" + scan.value().root_name;
  index.enveloped_c14n = &enveloped_c14n;

  // Pre-flight: every Reference must be fully handled by the streaming
  // pipeline, because VerifyWithIndex has no DOM to fall back to. Exotic
  // transform chains, external URIs, or an enveloped reference whose
  // target sits at/inside the signature rerun the classic pipeline.
  ReferenceContext plan_ctx;
  plan_ctx.stream_index = &index;
  plan_ctx.signature_path = index.signature_path;
  std::vector<StreamPlan> plans;
  const xml::Element* signed_info =
      sig_elem->FirstChildElementByLocalName("SignedInfo");
  if (signed_info != nullptr) {
    for (const auto& child : signed_info->children()) {
      if (!child->IsElement()) continue;
      const auto* ref = static_cast<const xml::Element*>(child.get());
      if (ref->LocalName() != "Reference") continue;
      StreamPlan plan;
      if (!PlanStreamReference(*ref, plan_ctx, &plan)) return full_pipeline();
      plans.push_back(std::move(plan));
    }
  }

  // The fused pass runs id-free (indexing thousands of unrelated Id
  // attributes costs more than a second pass); #id references trigger one
  // dedicated scan for exactly the ids SignedInfo names.
  xml::SignatureScanResult id_scan;
  std::vector<std::string> wanted_ids;
  for (const StreamPlan& plan : plans) {
    if (!plan.whole_document) wanted_ids.push_back(plan.id);
  }
  if (!wanted_ids.empty()) {
    Result<xml::SignatureScanResult> ids =
        xml::ScanForIds(source, options.parse_options, wanted_ids);
    if (!ids.ok()) return ids.status();  // unreachable: first scan succeeded
    id_scan = std::move(ids.value());
  }
  index.ids = &id_scan.ids;
  for (const StreamPlan& plan : plans) {
    if (plan.whole_document || !plan.enveloped) continue;
    // An enveloped reference whose target sits at/inside the signature is
    // the DOM pipeline's edge case to define.
    auto it = id_scan.ids.find(plan.id);
    if (it != id_scan.ids.end() && it->second.count == 1 &&
        IsPathPrefixOrEqual(index.signature_path, it->second.path)) {
      return full_pipeline();
    }
  }

  VerifyOptions stream_options = options;
  stream_options.source_text = source;
  return VerifyWithIndex(nullptr, *sig_elem, stream_options, &index);
}

}  // namespace xmldsig
}  // namespace discsec
