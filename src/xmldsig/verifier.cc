#include "xmldsig/verifier.h"

#include "common/base64.h"
#include "common/task_graph.h"
#include "common/thread_pool.h"
#include "crypto/algorithms.h"
#include "crypto/digest.h"
#include "crypto/digest_cache.h"
#include "crypto/hmac.h"
#include "crypto/sha1.h"
#include "pki/key_codec.h"
#include "xml/c14n.h"
#include "xmldsig/constants.h"

namespace discsec {
namespace xmldsig {

namespace {

bool IsDsElement(const xml::Element& e, std::string_view local) {
  return e.LocalName() == local && e.NamespaceUri() == kDsNamespace;
}

Result<std::vector<pki::Certificate>> ParseCertificateChain(
    const xml::Element& key_info) {
  std::vector<pki::Certificate> chain;
  const xml::Element* x509 = key_info.FirstChildElementByLocalName("X509Data");
  if (x509 == nullptr) return chain;
  for (const auto& child : x509->children()) {
    if (!child->IsElement()) continue;
    const auto* e = static_cast<const xml::Element*>(child.get());
    if (e->LocalName() != "X509Certificate") continue;
    DISCSEC_ASSIGN_OR_RETURN(Bytes der, Base64Decode(e->TextContent()));
    DISCSEC_ASSIGN_OR_RETURN(pki::Certificate cert,
                             pki::Certificate::FromXmlString(ToString(der)));
    chain.push_back(std::move(cert));
  }
  return chain;
}

/// Establishes the verification key per the options' trust policy.
struct ResolvedKey {
  bool is_hmac = false;
  Bytes hmac_secret;
  crypto::RsaPublicKey rsa;
  std::string signer_subject;
};

Result<ResolvedKey> ResolveKey(const xml::Element* key_info,
                               const std::string& signature_algorithm,
                               const VerifyOptions& options) {
  ResolvedKey out;
  if (signature_algorithm == crypto::kAlgHmacSha1) {
    if (!options.hmac_secret.has_value()) {
      return Status::VerificationFailed(
          "hmac-sha1 signature but no shared secret configured");
    }
    out.is_hmac = true;
    out.hmac_secret = *options.hmac_secret;
    return out;
  }
  if (options.trusted_key.has_value()) {
    out.rsa = *options.trusted_key;
    return out;
  }
  if (options.cert_store != nullptr) {
    if (key_info == nullptr) {
      return Status::VerificationFailed(
          "certificate chain required but KeyInfo missing");
    }
    DISCSEC_ASSIGN_OR_RETURN(std::vector<pki::Certificate> chain,
                             ParseCertificateChain(*key_info));
    if (chain.empty()) {
      return Status::VerificationFailed(
          "certificate chain required but X509Data missing/empty");
    }
    DISCSEC_RETURN_IF_ERROR(
        options.cert_store->ValidateChain(chain, options.now));
    out.rsa = chain.front().info().public_key;
    out.signer_subject = chain.front().info().subject;
    // Cross-check: when a KeyValue is also present it must match the leaf
    // certificate (prevents mix-and-match confusion).
    if (key_info->FirstChildElementByLocalName("KeyValue") != nullptr) {
      const xml::Element* kv =
          key_info->FirstChildElementByLocalName("KeyValue")
              ->FirstChildElementByLocalName("RSAKeyValue");
      if (kv != nullptr) {
        DISCSEC_ASSIGN_OR_RETURN(crypto::RsaPublicKey declared,
                                 pki::RsaKeyFromXml(*kv));
        if (!(declared == out.rsa)) {
          return Status::VerificationFailed(
              "KeyValue does not match leaf certificate key");
        }
      }
    }
    return out;
  }
  if (options.allow_bare_key_value) {
    if (key_info == nullptr) {
      return Status::VerificationFailed("no KeyInfo to take KeyValue from");
    }
    const xml::Element* key_value =
        key_info->FirstChildElementByLocalName("KeyValue");
    if (key_value == nullptr) {
      return Status::VerificationFailed("KeyInfo has no KeyValue");
    }
    const xml::Element* rsa =
        key_value->FirstChildElementByLocalName("RSAKeyValue");
    if (rsa == nullptr) {
      return Status::VerificationFailed("KeyValue has no RSAKeyValue");
    }
    DISCSEC_ASSIGN_OR_RETURN(out.rsa, pki::RsaKeyFromXml(*rsa));
    return out;
  }
  return Status::VerificationFailed(
      "no trust source configured (cert store, trusted key, or bare "
      "KeyValue opt-in)");
}

}  // namespace

std::vector<xml::Element*> Verifier::FindSignatures(xml::Element* root) {
  std::vector<xml::Element*> out;
  if (root == nullptr) return out;
  root->ForEachElement([&](xml::Element* e) {
    if (IsDsElement(*e, "Signature")) out.push_back(e);
  });
  return out;
}

Result<VerifyInfo> Verifier::Verify(const xml::Document* doc,
                                    const xml::Element& signature,
                                    const VerifyOptions& options) {
  obs::ScopedSpan verify_span(options.tracer, "xmldsig.verify");
  obs::ScopedLatency verify_latency(
      options.metrics != nullptr
          ? options.metrics->GetHistogram("xmldsig.verify_us")
          : nullptr);
  if (!IsDsElement(signature, "Signature")) {
    return Status::InvalidArgument("element is not a ds:Signature");
  }
  const xml::Element* signed_info =
      signature.FirstChildElementByLocalName("SignedInfo");
  const xml::Element* sig_value_elem =
      signature.FirstChildElementByLocalName("SignatureValue");
  if (signed_info == nullptr || sig_value_elem == nullptr) {
    return Status::ParseError("Signature missing SignedInfo/SignatureValue");
  }

  // Canonicalization method: only Canonical XML 1.0 variants are accepted.
  const xml::Element* c14n_method =
      signed_info->FirstChildElementByLocalName("CanonicalizationMethod");
  if (c14n_method == nullptr || c14n_method->GetAttribute("Algorithm") ==
                                    nullptr) {
    return Status::ParseError("missing CanonicalizationMethod");
  }
  const std::string& c14n_alg = *c14n_method->GetAttribute("Algorithm");
  xml::C14NOptions signed_info_c14n;
  if (c14n_alg == crypto::kAlgC14N) {
    signed_info_c14n.with_comments = false;
  } else if (c14n_alg == crypto::kAlgC14NWithComments) {
    signed_info_c14n.with_comments = true;
  } else if (c14n_alg == crypto::kAlgExcC14N) {
    signed_info_c14n.exclusive = true;
  } else if (c14n_alg == crypto::kAlgExcC14NWithComments) {
    signed_info_c14n.exclusive = true;
    signed_info_c14n.with_comments = true;
  } else {
    return Status::Unsupported("canonicalization algorithm: " + c14n_alg);
  }

  const xml::Element* sig_method =
      signed_info->FirstChildElementByLocalName("SignatureMethod");
  if (sig_method == nullptr ||
      sig_method->GetAttribute("Algorithm") == nullptr) {
    return Status::ParseError("missing SignatureMethod");
  }
  std::string signature_algorithm = *sig_method->GetAttribute("Algorithm");

  // Reference validation.
  ReferenceContext ctx;
  ctx.document = doc;
  ctx.resolver = options.resolver;
  ctx.decrypt_hook = options.decrypt_hook;
  ctx.parse_options = options.parse_options;
  // The tracer rides ReferenceContext::parse_options into the transform
  // pipeline, so inner re-parses and canonicalizations emit child spans.
  if (ctx.parse_options.tracer == nullptr) {
    ctx.parse_options.tracer = options.tracer;
  }
  if (doc != nullptr && signature.parent() != nullptr) {
    ctx.signature_path = ComputePath(&signature);
  }

  VerifyInfo info;
  info.signature_algorithm = signature_algorithm;
  std::vector<const xml::Element*> refs;
  for (const auto& child : signed_info->children()) {
    if (!child->IsElement()) continue;
    const auto* ref = static_cast<const xml::Element*>(child.get());
    if (ref->LocalName() == "Reference") refs.push_back(ref);
  }
  if (refs.empty()) {
    return Status::VerificationFailed("signature has no references");
  }
  verify_span.SetAttr("algorithm", signature_algorithm);
  verify_span.SetAttr("references", static_cast<uint64_t>(refs.size()));

  // Each Reference canonicalizes + digests independently: same-document
  // targets clone the source document into a private working copy and the
  // shared context is read-only, so references fan out over the pool and
  // join before the SignedInfo signature check below. With a null pool
  // this degrades to the serial loop. The first failing reference in
  // document order decides the error either way, so parallel and serial
  // verification are observably identical.
  struct RefOutcome {
    Status status;
    VerifiedReference verified;
  };
  std::vector<RefOutcome> outcomes(refs.size());
  // Reference spans parent onto the verify span via its captured context —
  // thread-local nesting alone would orphan them on pool workers.
  const obs::SpanContext verify_ctx = verify_span.context();
  auto process_reference = [&](const xml::Element& ref) -> RefOutcome {
    obs::ScopedSpan ref_span(verify_ctx, "xmldsig.reference");
    RefOutcome out;
    const std::string* uri = ref.GetAttribute("URI");
    std::string uri_str = uri != nullptr ? *uri : std::string();
    ref_span.SetAttr("uri", uri_str);
    if (ref_span.enabled()) {
      // Transform chain as written, comma-joined in document order.
      std::string chain;
      const xml::Element* transforms =
          ref.FirstChildElementByLocalName("Transforms");
      if (transforms != nullptr) {
        for (const auto& child : transforms->children()) {
          if (!child->IsElement()) continue;
          const auto* t = static_cast<const xml::Element*>(child.get());
          if (t->LocalName() != "Transform") continue;
          const std::string* alg = t->GetAttribute("Algorithm");
          if (alg == nullptr) continue;
          if (!chain.empty()) chain += ",";
          chain += *alg;
        }
      }
      ref_span.SetAttr("transforms", chain);
    }
    const xml::Element* digest_method =
        ref.FirstChildElementByLocalName("DigestMethod");
    const xml::Element* digest_value =
        ref.FirstChildElementByLocalName("DigestValue");
    if (digest_method == nullptr || digest_value == nullptr ||
        digest_method->GetAttribute("Algorithm") == nullptr) {
      out.status = Status::ParseError("Reference missing digest method/value");
      return out;
    }
    const std::string& digest_alg = *digest_method->GetAttribute("Algorithm");
    ref_span.SetAttr("digest_alg", digest_alg);
    auto digest = crypto::MakeDigest(digest_alg);
    if (!digest.ok()) {
      out.status = digest.status();
      return out;
    }
    // The reference octets stream into the digest as they are produced —
    // through the content-addressed cache when one is configured.
    crypto::CachingDigestSink sink(options.digest_cache, digest->get(),
                                   digest_alg);
    ReferenceResolution resolution;
    out.status = ProcessReferenceTo(ref, ctx, &sink, &resolution);
    if (!out.status.ok()) return out;
    Bytes actual = sink.Finalize();
    if (options.digest_cache != nullptr) {
      ref_span.SetAttr("cache", sink.was_hit() ? "hit" : "miss");
      if (options.metrics != nullptr) {
        options.metrics
            ->GetCounter(sink.was_hit() ? "xmldsig.cache_hits"
                                        : "xmldsig.cache_misses")
            ->Add();
      }
    } else {
      ref_span.SetAttr("cache", "off");
    }
    auto expected = Base64Decode(digest_value->TextContent());
    if (!expected.ok()) {
      out.status = expected.status();
      return out;
    }
    if (!ConstantTimeEquals(actual, expected.value())) {
      out.status = Status::VerificationFailed(
          "digest mismatch for reference '" + uri_str + "'");
      return out;
    }
    out.verified.uri = std::move(uri_str);
    out.verified.resolved_name = resolution.element_name;
    out.verified.resolved_path = resolution.element_path;
    out.verified.covers_root = resolution.covers_root;
    out.verified.same_document = resolution.same_document;
    return out;
  };
  if (options.pool == nullptr) {
    // Serial path, untouched: references digest in document order.
    for (size_t i = 0; i < refs.size(); ++i) {
      outcomes[i] = process_reference(*refs[i]);
    }
  } else {
    // Each Reference is an independent task-graph node. Fail-fast cancels
    // only nodes *after* the lowest failing reference, so every reference
    // the serial sweep would have reached still runs and the document-order
    // fold below reproduces the serial verdict byte-for-byte.
    taskgraph::TaskGraph graph;
    for (size_t i = 0; i < refs.size(); ++i) {
      graph.AddNode("xmldsig.reference#" + std::to_string(i),
                    [&outcomes, &process_reference, &refs, i]() -> Status {
                      outcomes[i] = process_reference(*refs[i]);
                      return outcomes[i].status;
                    });
    }
    taskgraph::TaskGraph::RunOptions run;
    run.pool = options.pool;
    run.fail_fast = true;
    // The verdict is re-derived from `outcomes` in document order below;
    // Run's return (the lowest failing node) is the same status by
    // construction.
    (void)graph.Run(run);
  }
  for (RefOutcome& outcome : outcomes) {
    if (!outcome.status.ok()) return outcome.status;
    info.reference_uris.push_back(outcome.verified.uri);
    info.references.push_back(std::move(outcome.verified));
  }
  if (options.metrics != nullptr) {
    options.metrics->GetCounter("xmldsig.references_verified")
        ->Add(info.references.size());
  }

  // See-what-is-signed policy over the resolved reference set.
  bool any_covers_root = false;
  for (const VerifiedReference& r : info.references) {
    if (r.covers_root) any_covers_root = true;
    if (!r.same_document || r.covers_root ||
        options.allowed_reference_roots.empty()) {
      continue;
    }
    bool allowed = false;
    for (const std::string& name : options.allowed_reference_roots) {
      if (r.resolved_name == name) {
        allowed = true;
        break;
      }
    }
    if (!allowed) {
      return Status::VerificationFailed(
          "reference '" + r.uri + "' resolved to disallowed element <" +
          r.resolved_name + "> at " + r.resolved_path +
          " (possible signature wrapping)");
    }
  }
  if (options.require_signed_root && !any_covers_root) {
    return Status::VerificationFailed(
        "policy requires a reference covering the document root, but none "
        "does (possible signature relocation)");
  }

  DISCSEC_ASSIGN_OR_RETURN(Bytes sig_value,
                           Base64Decode(sig_value_elem->TextContent()));

  const xml::Element* key_info =
      signature.FirstChildElementByLocalName("KeyInfo");
  if (key_info != nullptr) {
    const xml::Element* key_name =
        key_info->FirstChildElementByLocalName("KeyName");
    if (key_name != nullptr) info.key_name = key_name->TextContent();
  }
  DISCSEC_ASSIGN_OR_RETURN(
      ResolvedKey key, ResolveKey(key_info, signature_algorithm, options));
  info.signer_subject = key.signer_subject;

  // Signature value over canonical SignedInfo, streamed straight into the
  // MAC/digest so the canonical form is never materialized.
  obs::ScopedSpan si_span(options.tracer, "xmldsig.signed_info");
  si_span.SetAttr("algorithm", signature_algorithm);
  signed_info_c14n.tracer = options.tracer;
  if (key.is_hmac) {
    crypto::Hmac hmac(std::make_unique<crypto::Sha1>(), key.hmac_secret);
    crypto::HmacSink sink(&hmac);
    xml::CanonicalizeElement(*signed_info, signed_info_c14n, &sink);
    if (!ConstantTimeEquals(hmac.Finalize(), sig_value)) {
      return Status::VerificationFailed("HMAC signature mismatch");
    }
  } else {
    std::string digest_uri;
    if (signature_algorithm == crypto::kAlgRsaSha1) {
      digest_uri = crypto::kAlgSha1;
    } else if (signature_algorithm == crypto::kAlgRsaSha256) {
      digest_uri = crypto::kAlgSha256;
    } else {
      return Status::Unsupported("signature algorithm: " +
                                 signature_algorithm);
    }
    DISCSEC_ASSIGN_OR_RETURN(auto digest, crypto::MakeDigest(digest_uri));
    crypto::DigestSink sink(digest.get());
    xml::CanonicalizeElement(*signed_info, signed_info_c14n, &sink);
    DISCSEC_RETURN_IF_ERROR(crypto::RsaVerifyDigest(
        key.rsa, digest_uri, digest->Finalize(), sig_value));
  }
  return info;
}

Result<VerifyInfo> Verifier::VerifyFirstSignature(
    const xml::Document& doc, const VerifyOptions& options) {
  auto signatures = FindSignatures(doc.root());
  if (signatures.empty()) {
    return Status::NotFound("document contains no ds:Signature");
  }
  return Verify(&doc, *signatures.front(), options);
}

}  // namespace xmldsig
}  // namespace discsec
