#ifndef DISCSEC_XMLDSIG_TRANSFORMS_H_
#define DISCSEC_XMLDSIG_TRANSFORMS_H_

#include <functional>
#include <string>
#include <vector>

#include "common/byte_sink.h"
#include "common/bytes.h"
#include "common/result.h"
#include "xml/dom.h"
#include "xml/parser.h"

namespace discsec {
namespace xmldsig {

/// Resolver for external (non-same-document) Reference URIs — e.g. a disc
/// resource path or a server URL. Returns the raw octets of the resource.
using ExternalResolver = std::function<Result<Bytes>(const std::string& uri)>;

/// Hook invoked by the Decryption Transform (W3C xmlenc-decrypt): must
/// decrypt every EncryptedData element in `working` (within the subtree at
/// `apex`, or the whole document when apex is null) whose Id is NOT in
/// `except_ids`, replacing ciphertext with plaintext in place. The xmlenc
/// module provides the standard implementation (MakeDecryptHook).
using DecryptHook = std::function<Status(
    xml::Document* working, xml::Element* apex,
    const std::vector<std::string>& except_ids)>;

/// Wire-level verify fast path (verifier.cc): resolves same-document
/// targets from a streaming scan of the source text instead of a DOM.
struct StreamIndex;

/// Everything reference processing needs besides the Reference element.
struct ReferenceContext {
  /// The document containing same-document targets; null when every
  /// Reference is external.
  const xml::Document* document = nullptr;
  /// When set (Verifier::VerifyStream), same-document targets resolve via
  /// the scan index — no DOM exists. Only the streaming pipeline consults
  /// this; the caller guarantees every Reference is stream-eligible.
  const StreamIndex* stream_index = nullptr;
  /// Child-index path from the document root to the ds:Signature element
  /// being created/validated (for the enveloped-signature transform).
  /// Empty when the signature is not inside the document.
  std::vector<size_t> signature_path;
  ExternalResolver resolver;
  DecryptHook decrypt_hook;
  /// Limits applied when a transform must re-parse an octet stream into a
  /// node-set (the same input-bomb caps the top-level parser enforces).
  xml::ParseOptions parse_options;
};

/// Where a Reference's URI actually resolved — the verifier's
/// see-what-is-signed report. Same-document references record the element
/// path so wrapping/relocation is visible to policy layers.
struct ReferenceResolution {
  /// True for URI "" and "#id" references (resolved inside ctx.document).
  bool same_document = false;
  /// True when the reference covers the whole document (URI "" or an Id
  /// resolving to the document root).
  bool covers_root = false;
  /// Qualified name of the resolved element; empty for external references.
  std::string element_name;
  /// xml::ElementPath of the resolved element; empty for external
  /// references.
  std::string element_path;
};

/// Computes the child-index path of `e` from its document root. The element
/// at ResolvePath(clone, ComputePath(e)) is the corresponding element in any
/// structural clone of the original document.
std::vector<size_t> ComputePath(const xml::Element* e);

/// Resolves a child-index path inside `doc`. Returns null when out of range
/// or when an index lands on a non-element node.
xml::Element* ResolvePath(const xml::Document& doc,
                          const std::vector<size_t>& path);

/// Dereferences a ds:Reference URI, applies its ds:Transform chain in
/// order, and emits the octets to digest into `sink` (applying the
/// implicit final canonicalization when the chain ends in node-set form).
///
/// The terminal canonicalization — implicit, or an explicit C14N transform
/// in last position — is streamed straight into the sink, so the common
/// same-document reference never materializes its canonical form. Only a
/// mid-chain node-set -> octet boundary (an explicit C14N followed by more
/// transforms, a base64 transform, an external URI) buffers, because the
/// next stage needs the full octet stream.
///
/// Supported URIs: "" (whole document), "#id" (same-document element), and
/// anything else via ctx.resolver. Supported transforms: Canonical XML
/// (inclusive/exclusive, with/without comments), enveloped-signature,
/// base64, and the Decryption Transform (via ctx.decrypt_hook).
///
/// "#id" resolution is strict: an Id declared by more than one element in
/// the document fails with VerificationFailed instead of silently picking
/// the first match (the duplicate-ID wrapping vector). When `resolution` is
/// non-null it receives where the reference resolved.
Status ProcessReferenceTo(const xml::Element& reference,
                          const ReferenceContext& ctx, ByteSink* sink,
                          ReferenceResolution* resolution = nullptr);

/// Buffer-returning wrapper over ProcessReferenceTo (a BytesSink).
Result<Bytes> ProcessReference(const xml::Element& reference,
                               const ReferenceContext& ctx);

}  // namespace xmldsig
}  // namespace discsec

#endif  // DISCSEC_XMLDSIG_TRANSFORMS_H_
