#include "common/status.h"

namespace discsec {

namespace {
const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kCorruption:
      return "Corruption";
    case Status::Code::kParseError:
      return "ParseError";
    case Status::Code::kCryptoError:
      return "CryptoError";
    case Status::Code::kVerificationFailed:
      return "VerificationFailed";
    case Status::Code::kPermissionDenied:
      return "PermissionDenied";
    case Status::Code::kUnsupported:
      return "Unsupported";
    case Status::Code::kIOError:
      return "IOError";
    case Status::Code::kResourceExhausted:
      return "ResourceExhausted";
    case Status::Code::kUnavailable:
      return "Unavailable";
    case Status::Code::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  if (retry_after_us_ > 0) {
    out += " [retry-after ";
    out += std::to_string(retry_after_us_);
    out += "us]";
  }
  return out;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) return *this;
  Status copy = *this;
  copy.message_ = std::string(context) + ": " + message_;
  return copy;
}

}  // namespace discsec
