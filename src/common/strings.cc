#include "common/strings.h"

#include <cstdarg>
#include <cstdio>

namespace discsec {

std::vector<std::string> SplitString(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view TrimWhitespace(std::string_view s) {
  auto is_ws = [](char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n';
  };
  size_t b = 0;
  size_t e = s.size();
  while (b < e && is_ws(s[b])) ++b;
  while (e > b && is_ws(s[e - 1])) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string StringFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace discsec
