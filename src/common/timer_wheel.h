#ifndef DISCSEC_COMMON_TIMER_WHEEL_H_
#define DISCSEC_COMMON_TIMER_WHEEL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

namespace discsec {

/// A deadline queue for non-blocking waits: callbacks parked here fire when
/// their deadline passes instead of a thread sleeping through the interval.
/// This is what lets a network-bound task-graph node (an XKMS retry backing
/// off, an injected transport delay) release its pool worker between
/// attempts — the paper's §7 broadband round-trips stop costing a CPU each.
///
/// Two modes:
///  - Real time (default constructor): one dedicated timer thread waits on
///    the earliest deadline (steady clock, microseconds) and runs callbacks
///    as they come due. Callbacks run on the timer thread and must be cheap
///    and non-blocking — hand real work to a ThreadPool.
///  - Manual clock (TimerWheel(ManualClock{})): no thread is spawned and
///    time only moves when the test calls AdvanceTo/AdvanceBy, which fire
///    every due callback on the calling thread. Deterministic by
///    construction.
///
/// Firing order is strict (deadline, schedule-sequence): two entries with
/// the same deadline fire in the order they were scheduled.
///
/// Thread-safe. The destructor stops the timer thread and *drops* pending
/// entries without firing them; owners must outlive every user that might
/// still schedule (task-graph runs join all async completions first, so the
/// usual wheel-outlives-pool-outlives-graph layering is safe).
class TimerWheel {
 public:
  using Callback = std::function<void()>;

  /// Tag type selecting the manual (test) clock.
  struct ManualClock {};

  TimerWheel();
  explicit TimerWheel(ManualClock);
  ~TimerWheel();

  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  /// Current time in microseconds: steady clock in real mode, the manually
  /// advanced clock otherwise.
  int64_t NowUs() const;

  /// Schedules `cb` to fire once `delay_us` has elapsed (non-positive delay
  /// fires at the next dispatch opportunity). Returns a token for Cancel.
  uint64_t ScheduleAfter(int64_t delay_us, Callback cb);

  /// Schedules `cb` at an absolute NowUs()-based deadline.
  uint64_t ScheduleAt(int64_t deadline_us, Callback cb);

  /// Cancels a pending entry. Returns false when it already fired (or was
  /// never scheduled); the callback will not run after Cancel returns true.
  bool Cancel(uint64_t id);

  /// Entries scheduled but not yet fired.
  size_t pending() const;

  /// Manual mode only: advances the clock and fires everything now due, in
  /// (deadline, sequence) order, on the calling thread. AdvanceTo with a
  /// time in the past is a no-op (the clock never moves backwards).
  void AdvanceTo(int64_t now_us);
  void AdvanceBy(int64_t delta_us);

 private:
  struct Entry {
    uint64_t id = 0;
    Callback cb;
  };

  void ThreadLoop();
  /// Pops and runs every entry due at `now`, releasing the lock around each
  /// callback. Caller holds `lock`.
  void FireDue(std::unique_lock<std::mutex>& lock, int64_t now);

  const bool manual_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  /// Ordered by (deadline_us, sequence); the map key *is* the firing order.
  std::map<std::pair<int64_t, uint64_t>, Entry> entries_;
  std::map<uint64_t, std::pair<int64_t, uint64_t>> by_id_;
  uint64_t next_seq_ = 0;
  uint64_t next_id_ = 1;
  int64_t manual_now_us_ = 0;
  bool shutdown_ = false;
  std::thread thread_;
};

}  // namespace discsec

#endif  // DISCSEC_COMMON_TIMER_WHEEL_H_
