#include "common/base64.h"

#include <array>

namespace discsec {

namespace {
const char kAlphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

std::array<int8_t, 256> BuildDecodeTable() {
  std::array<int8_t, 256> table;
  table.fill(-1);
  for (int i = 0; i < 64; ++i) {
    table[static_cast<uint8_t>(kAlphabet[i])] = static_cast<int8_t>(i);
  }
  return table;
}
}  // namespace

std::string Base64Encode(const Bytes& data) {
  std::string out;
  out.reserve(((data.size() + 2) / 3) * 4);
  size_t i = 0;
  while (i + 3 <= data.size()) {
    uint32_t v = (static_cast<uint32_t>(data[i]) << 16) |
                 (static_cast<uint32_t>(data[i + 1]) << 8) | data[i + 2];
    out.push_back(kAlphabet[(v >> 18) & 63]);
    out.push_back(kAlphabet[(v >> 12) & 63]);
    out.push_back(kAlphabet[(v >> 6) & 63]);
    out.push_back(kAlphabet[v & 63]);
    i += 3;
  }
  size_t rem = data.size() - i;
  if (rem == 1) {
    uint32_t v = static_cast<uint32_t>(data[i]) << 16;
    out.push_back(kAlphabet[(v >> 18) & 63]);
    out.push_back(kAlphabet[(v >> 12) & 63]);
    out.push_back('=');
    out.push_back('=');
  } else if (rem == 2) {
    uint32_t v = (static_cast<uint32_t>(data[i]) << 16) |
                 (static_cast<uint32_t>(data[i + 1]) << 8);
    out.push_back(kAlphabet[(v >> 18) & 63]);
    out.push_back(kAlphabet[(v >> 12) & 63]);
    out.push_back(kAlphabet[(v >> 6) & 63]);
    out.push_back('=');
  }
  return out;
}

Result<Bytes> Base64Decode(std::string_view text) {
  static const std::array<int8_t, 256> kDecode = BuildDecodeTable();
  Bytes out;
  out.reserve(text.size() / 4 * 3);
  uint32_t acc = 0;
  int bits = 0;
  int pad = 0;
  for (char c : text) {
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') continue;
    if (c == '=') {
      ++pad;
      continue;
    }
    if (pad > 0) {
      return Status::InvalidArgument("base64: data after padding");
    }
    int8_t v = kDecode[static_cast<uint8_t>(c)];
    if (v < 0) {
      return Status::InvalidArgument("base64: invalid character");
    }
    acc = (acc << 6) | static_cast<uint32_t>(v);
    bits += 6;
    if (bits >= 8) {
      bits -= 8;
      out.push_back(static_cast<uint8_t>((acc >> bits) & 0xff));
    }
  }
  if (pad > 2) {
    return Status::InvalidArgument("base64: too much padding");
  }
  // Leftover bits must be zero-padding only.
  if (bits > 0 && (acc & ((1u << bits) - 1)) != 0) {
    return Status::InvalidArgument("base64: trailing bits set");
  }
  return out;
}

}  // namespace discsec
