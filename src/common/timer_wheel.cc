#include "common/timer_wheel.h"

#include <chrono>

namespace discsec {

namespace {

int64_t SteadyNowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

TimerWheel::TimerWheel() : manual_(false) {
  thread_ = std::thread([this] { ThreadLoop(); });
}

TimerWheel::TimerWheel(ManualClock) : manual_(true) {}

TimerWheel::~TimerWheel() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

int64_t TimerWheel::NowUs() const {
  if (!manual_) return SteadyNowUs();
  std::lock_guard<std::mutex> lock(mu_);
  return manual_now_us_;
}

uint64_t TimerWheel::ScheduleAfter(int64_t delay_us, Callback cb) {
  return ScheduleAt(NowUs() + (delay_us > 0 ? delay_us : 0), std::move(cb));
}

uint64_t TimerWheel::ScheduleAt(int64_t deadline_us, Callback cb) {
  uint64_t id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = next_id_++;
    std::pair<int64_t, uint64_t> key{deadline_us, next_seq_++};
    entries_[key] = Entry{id, std::move(cb)};
    by_id_[id] = key;
  }
  cv_.notify_all();
  return id;
}

bool TimerWheel::Cancel(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_id_.find(id);
  if (it == by_id_.end()) return false;
  entries_.erase(it->second);
  by_id_.erase(it);
  return true;
}

size_t TimerWheel::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void TimerWheel::FireDue(std::unique_lock<std::mutex>& lock, int64_t now) {
  while (!entries_.empty() && entries_.begin()->first.first <= now) {
    Entry entry = std::move(entries_.begin()->second);
    entries_.erase(entries_.begin());
    by_id_.erase(entry.id);
    lock.unlock();
    entry.cb();
    lock.lock();
  }
}

void TimerWheel::AdvanceTo(int64_t now_us) {
  std::unique_lock<std::mutex> lock(mu_);
  if (now_us > manual_now_us_) manual_now_us_ = now_us;
  FireDue(lock, manual_now_us_);
}

void TimerWheel::AdvanceBy(int64_t delta_us) {
  std::unique_lock<std::mutex> lock(mu_);
  if (delta_us > 0) manual_now_us_ += delta_us;
  FireDue(lock, manual_now_us_);
}

void TimerWheel::ThreadLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (shutdown_) return;
    if (entries_.empty()) {
      cv_.wait(lock, [this] { return shutdown_ || !entries_.empty(); });
      continue;
    }
    const int64_t next_deadline = entries_.begin()->first.first;
    const int64_t now = SteadyNowUs();
    if (now < next_deadline) {
      // Wake early on shutdown or when a sooner entry is scheduled.
      cv_.wait_for(lock, std::chrono::microseconds(next_deadline - now));
      continue;
    }
    FireDue(lock, now);
  }
}

}  // namespace discsec
