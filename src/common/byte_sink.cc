#include "common/byte_sink.h"

namespace discsec {

// Out-of-line key function anchors the vtable in this translation unit.
ByteSink::~ByteSink() = default;

}  // namespace discsec
