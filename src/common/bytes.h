#ifndef DISCSEC_COMMON_BYTES_H_
#define DISCSEC_COMMON_BYTES_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace discsec {

/// The library-wide octet-buffer type.
using Bytes = std::vector<uint8_t>;

/// Converts a std::string (treated as raw octets) to Bytes.
Bytes ToBytes(std::string_view s);

/// Converts Bytes to a std::string holding the same octets.
std::string ToString(const Bytes& b);

/// Lower-case hex encoding, e.g. {0xde, 0xad} -> "dead".
std::string ToHex(const Bytes& b);

/// Parses a hex string (case-insensitive, even length) into Bytes.
Result<Bytes> FromHex(std::string_view hex);

/// Constant-time equality comparison. Always examines every byte of the
/// longer input so timing does not leak the position of the first mismatch.
/// Used for MAC and digest comparison.
bool ConstantTimeEquals(const Bytes& a, const Bytes& b);

/// Appends `src` to `dst`.
void Append(Bytes* dst, const Bytes& src);

/// Appends the octets of `s` to `dst`.
void Append(Bytes* dst, std::string_view s);

/// Appends `value` to `dst` in big-endian order.
void AppendUint32BE(Bytes* dst, uint32_t value);
void AppendUint64BE(Bytes* dst, uint64_t value);

/// Reads a big-endian integer from `data + offset`. The caller must ensure
/// the buffer is large enough.
uint32_t ReadUint32BE(const uint8_t* data);
uint64_t ReadUint64BE(const uint8_t* data);

}  // namespace discsec

#endif  // DISCSEC_COMMON_BYTES_H_
