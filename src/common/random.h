#ifndef DISCSEC_COMMON_RANDOM_H_
#define DISCSEC_COMMON_RANDOM_H_

#include <cstdint>

#include "common/bytes.h"

namespace discsec {

/// Deterministic random bit generator used for key, IV and nonce generation.
///
/// The generator is a counter-mode construction over a 64-bit mixing
/// function (splitmix64 core). It is *not* a certified DRBG, but it is a
/// faithful substitute for the JCE SecureRandom the paper's prototype used:
/// the library only needs an unpredictable-to-the-application byte stream,
/// and tests need reproducibility, which the explicit seed provides.
class Rng {
 public:
  /// Seeds from a fixed value; equal seeds give equal streams (used by tests
  /// and benchmarks for reproducibility).
  explicit Rng(uint64_t seed);

  /// Seeds from the OS entropy source (std::random_device).
  Rng();

  /// Returns the next 64 pseudo-random bits.
  uint64_t NextUint64();

  /// Returns a uniformly distributed value in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound);

  /// Fills `out` with `n` pseudo-random bytes.
  Bytes NextBytes(size_t n);

  /// Fills an existing buffer in place.
  void Fill(uint8_t* out, size_t n);

 private:
  uint64_t state_;
};

/// Returns this thread's generator, seeded from OS entropy on first use.
/// Each thread owns an independent stream, so concurrent callers (the
/// parallel verification engine, pool workers) never contend or interleave
/// state. Do not hand the returned reference to another thread.
Rng& GlobalRng();

}  // namespace discsec

#endif  // DISCSEC_COMMON_RANDOM_H_
