#include "common/random.h"

#include <random>

namespace discsec {

Rng::Rng(uint64_t seed) : state_(seed) {}

Rng::Rng() {
  std::random_device rd;
  state_ = (static_cast<uint64_t>(rd()) << 32) ^ rd();
}

uint64_t Rng::NextUint64() {
  // splitmix64: passes BigCrush, one 64-bit word of state.
  state_ += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rng::NextBelow(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

Bytes Rng::NextBytes(size_t n) {
  Bytes out(n);
  Fill(out.data(), n);
  return out;
}

void Rng::Fill(uint8_t* out, size_t n) {
  size_t i = 0;
  while (i < n) {
    uint64_t w = NextUint64();
    for (int b = 0; b < 8 && i < n; ++b, ++i) {
      out[i] = static_cast<uint8_t>(w >> (8 * b));
    }
  }
}

Rng& GlobalRng() {
  thread_local Rng rng;
  return rng;
}

}  // namespace discsec
