#include "common/bytes.h"

namespace discsec {

Bytes ToBytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string ToString(const Bytes& b) {
  return std::string(b.begin(), b.end());
}

std::string ToHex(const Bytes& b) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(b.size() * 2);
  for (uint8_t byte : b) {
    out.push_back(kDigits[byte >> 4]);
    out.push_back(kDigits[byte & 0x0f]);
  }
  return out;
}

namespace {
int HexNibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

Result<Bytes> FromHex(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    return Status::InvalidArgument("hex string has odd length");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = HexNibble(hex[i]);
    int lo = HexNibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return Status::InvalidArgument("hex string has non-hex character");
    }
    out.push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return out;
}

bool ConstantTimeEquals(const Bytes& a, const Bytes& b) {
  // Lengths of MACs/digests are public; only the contents must not leak
  // through early exit.
  if (a.size() != b.size()) return false;
  uint8_t acc = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    acc |= static_cast<uint8_t>(a[i] ^ b[i]);
  }
  return acc == 0;
}

void Append(Bytes* dst, const Bytes& src) {
  dst->insert(dst->end(), src.begin(), src.end());
}

void Append(Bytes* dst, std::string_view s) {
  dst->insert(dst->end(), s.begin(), s.end());
}

void AppendUint32BE(Bytes* dst, uint32_t value) {
  dst->push_back(static_cast<uint8_t>(value >> 24));
  dst->push_back(static_cast<uint8_t>(value >> 16));
  dst->push_back(static_cast<uint8_t>(value >> 8));
  dst->push_back(static_cast<uint8_t>(value));
}

void AppendUint64BE(Bytes* dst, uint64_t value) {
  AppendUint32BE(dst, static_cast<uint32_t>(value >> 32));
  AppendUint32BE(dst, static_cast<uint32_t>(value));
}

uint32_t ReadUint32BE(const uint8_t* data) {
  return (static_cast<uint32_t>(data[0]) << 24) |
         (static_cast<uint32_t>(data[1]) << 16) |
         (static_cast<uint32_t>(data[2]) << 8) | static_cast<uint32_t>(data[3]);
}

uint64_t ReadUint64BE(const uint8_t* data) {
  return (static_cast<uint64_t>(ReadUint32BE(data)) << 32) |
         ReadUint32BE(data + 4);
}

}  // namespace discsec
