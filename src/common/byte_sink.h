#ifndef DISCSEC_COMMON_BYTE_SINK_H_
#define DISCSEC_COMMON_BYTE_SINK_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/bytes.h"

namespace discsec {

/// Destination for a stream of octets.
///
/// The serialization layers (xml::Serialize, xml::Canonicalize and friends)
/// emit into a ByteSink, so a consumer chooses where the bytes land: an
/// owned buffer (StringSink/BytesSink), a running hash (crypto::DigestSink,
/// crypto::HmacSink), or nowhere at all (CountingSink). The hot
/// canonicalize-then-digest path of XML-DSig streams through a DigestSink
/// and never materializes the canonical form.
class ByteSink {
 public:
  virtual ~ByteSink();

  /// Appends `len` octets starting at `data`.
  virtual void Append(const uint8_t* data, size_t len) = 0;

  // Convenience overloads. Implementations that override Append(ptr, len)
  // should `using ByteSink::Append;` to keep these visible.
  void Append(std::string_view s) {
    Append(reinterpret_cast<const uint8_t*>(s.data()), s.size());
  }
  void Append(const Bytes& b) { Append(b.data(), b.size()); }
  void Append(char c) {
    const uint8_t byte = static_cast<uint8_t>(c);
    Append(&byte, 1);
  }
};

/// Appends to a caller-owned std::string.
class StringSink : public ByteSink {
 public:
  explicit StringSink(std::string* out) : out_(out) {}
  using ByteSink::Append;
  void Append(const uint8_t* data, size_t len) override {
    out_->append(reinterpret_cast<const char*>(data), len);
  }

 private:
  std::string* out_;
};

/// Appends to a caller-owned Bytes buffer.
class BytesSink : public ByteSink {
 public:
  explicit BytesSink(Bytes* out) : out_(out) {}
  using ByteSink::Append;
  void Append(const uint8_t* data, size_t len) override {
    out_->insert(out_->end(), data, data + len);
  }

 private:
  Bytes* out_;
};

/// Discards the bytes, keeping only their count. Measures output size
/// (e.g. the signed_bytes counters in the benches) without allocating.
class CountingSink : public ByteSink {
 public:
  using ByteSink::Append;
  void Append(const uint8_t* /*data*/, size_t len) override { count_ += len; }

  size_t count() const { return count_; }
  void Reset() { count_ = 0; }

 private:
  size_t count_ = 0;
};

}  // namespace discsec

#endif  // DISCSEC_COMMON_BYTE_SINK_H_
