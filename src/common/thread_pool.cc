#include "common/thread_pool.h"

#include <algorithm>

namespace discsec {

ThreadPool::ThreadPool(size_t threads) {
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

size_t ThreadPool::HardwareThreads() {
  return std::max<size_t>(1, std::thread::hardware_concurrency());
}

namespace {

/// Shared state of one ParallelFor section. Heap-allocated, owns a copy of
/// `fn`, and is shared with the helper tasks, so a worker that dequeues a
/// helper after the section already finished (every index claimed and run
/// by faster threads) touches valid memory and drains as a no-op instead of
/// reading the caller's dead stack frame.
struct ForSection {
  ForSection(size_t n, std::function<void(size_t)> f)
      : limit(n), fn(std::move(f)) {}

  void Drain() {
    for (;;) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= limit) return;
      fn(i);
      std::lock_guard<std::mutex> lock(mu);
      if (++done == limit) cv.notify_all();
    }
  }

  std::atomic<size_t> next{0};
  const size_t limit;
  const std::function<void(size_t)> fn;

  std::mutex mu;
  std::condition_variable cv;
  size_t done = 0;  // guarded by mu; fn(i) completions, not helper exits
};

}  // namespace

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const size_t helpers =
      (pool == nullptr || n < 2) ? 0 : std::min(pool->thread_count(), n - 1);
  if (helpers == 0) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  auto section = std::make_shared<ForSection>(n, fn);
  for (size_t h = 0; h < helpers; ++h) {
    pool->Submit([section] { section->Drain(); });
  }
  // The caller always participates, and it waits for iteration COMPLETIONS,
  // not for the helper tasks to run: when every worker is tied up in outer
  // sections (nested ParallelFor), the caller simply drains all n indices
  // itself and returns while the queued helpers later no-op. Waiting for
  // helper exits here would deadlock that nesting.
  section->Drain();
  std::unique_lock<std::mutex> lock(section->mu);
  section->cv.wait(lock, [&] { return section->done == section->limit; });
}

}  // namespace discsec
