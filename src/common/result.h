#ifndef DISCSEC_COMMON_RESULT_H_
#define DISCSEC_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace discsec {

/// Result<T> holds either a value of type T or a non-OK Status, following
/// the Arrow/RocksDB idiom for fallible value-returning functions.
///
/// Usage:
///   Result<Document> doc = Parser::Parse(text);
///   if (!doc.ok()) return doc.status();
///   Use(doc.value());
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a failed result from a non-OK status. Passing an OK status
  /// is a programming error.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Accessors; must only be called when ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when not ok().
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of a Result expression to `lhs`, or returns its status
/// from the enclosing function when the Result is an error.
#define DISCSEC_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value();

#define DISCSEC_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define DISCSEC_ASSIGN_OR_RETURN_NAME(a, b) \
  DISCSEC_ASSIGN_OR_RETURN_CONCAT(a, b)

#define DISCSEC_ASSIGN_OR_RETURN(lhs, expr)                               \
  DISCSEC_ASSIGN_OR_RETURN_IMPL(                                          \
      DISCSEC_ASSIGN_OR_RETURN_NAME(_result_tmp_, __COUNTER__), lhs, expr)

}  // namespace discsec

#endif  // DISCSEC_COMMON_RESULT_H_
