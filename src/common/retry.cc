#include "common/retry.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <thread>

#include "common/timer_wheel.h"

namespace discsec {

namespace {

int64_t SteadyNowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void RealSleepUs(int64_t us) {
  if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
}

}  // namespace

Retryer::Retryer(RetryPolicy policy, Clock clock, SleepFn sleep,
                 uint64_t jitter_seed)
    : policy_(policy),
      clock_(clock ? std::move(clock) : Clock(SteadyNowUs)),
      sleep_(sleep ? std::move(sleep) : SleepFn(RealSleepUs)),
      rng_(jitter_seed) {}

int64_t Retryer::BackoffForAttempt(int attempt) const {
  double backoff = static_cast<double>(policy_.initial_backoff_us);
  for (int i = 1; i < attempt; ++i) backoff *= policy_.backoff_multiplier;
  backoff = std::min(backoff, static_cast<double>(policy_.max_backoff_us));
  return static_cast<int64_t>(backoff);
}

Status Retryer::Run(const std::function<Status()>& attempt) {
  const int max_attempts = std::max(policy_.max_attempts, 1);
  const int64_t start_us = clock_();
  Status last;
  for (int n = 1; n <= max_attempts; ++n) {
    const int64_t attempt_start_us = clock_();
    last = attempt();
    const int64_t now_us = clock_();
    if (last.ok()) return last;
    if (!last.IsRetryable()) return last;
    if (policy_.attempt_deadline_us > 0 &&
        now_us - attempt_start_us > policy_.attempt_deadline_us) {
      return Status::DeadlineExceeded(
          "attempt " + std::to_string(n) + " ran " +
          std::to_string(now_us - attempt_start_us) +
          "us, past the per-attempt deadline of " +
          std::to_string(policy_.attempt_deadline_us) + "us: " +
          last.ToString());
    }
    if (n == max_attempts) break;
    // A server-supplied hint (an overloaded responder's shed status)
    // overrides the exponential step: the responder knows how long its
    // queues need to drain better than our local schedule does. Jitter
    // still applies below, so a whole shed fleet re-spreads instead of
    // returning in lockstep at hint expiry.
    int64_t backoff_us = last.retry_after_us() > 0 ? last.retry_after_us()
                                                   : BackoffForAttempt(n);
    if (policy_.jitter > 0.0) {
      double fraction = static_cast<double>(rng_.NextUint64() >> 11) *
                        0x1.0p-53;  // [0, 1)
      backoff_us -= static_cast<int64_t>(static_cast<double>(backoff_us) *
                                         policy_.jitter * fraction);
    }
    if (policy_.overall_deadline_us > 0 &&
        (now_us - start_us) + backoff_us >= policy_.overall_deadline_us) {
      return Status::DeadlineExceeded(
          "retry budget of " + std::to_string(policy_.overall_deadline_us) +
          "us exhausted after " + std::to_string(n) + " attempt(s): " +
          last.ToString());
    }
    sleep_(backoff_us);
  }
  return last.WithContext("after " + std::to_string(max_attempts) +
                          " attempts");
}

bool CircuitBreaker::Allow(int64_t now_us) {
  if (!open_) return true;
  if (now_us - opened_at_us_ < options_.open_duration_us) return false;
  if (probe_in_flight_) return false;
  probe_in_flight_ = true;  // half-open: admit a single probe
  return true;
}

void CircuitBreaker::RecordSuccess() {
  failures_ = 0;
  open_ = false;
  probe_in_flight_ = false;
}

void CircuitBreaker::RecordFailure(int64_t now_us) {
  ++failures_;
  if (open_) {
    // The half-open probe failed: re-open for a fresh cool-down.
    opened_at_us_ = now_us;
    probe_in_flight_ = false;
    return;
  }
  if (failures_ >= options_.failure_threshold) {
    open_ = true;
    opened_at_us_ = now_us;
    probe_in_flight_ = false;
  }
}

CircuitBreaker::State CircuitBreaker::state(int64_t now_us) const {
  if (!open_) return State::kClosed;
  if (now_us - opened_at_us_ >= options_.open_duration_us) {
    return State::kHalfOpen;
  }
  return State::kOpen;
}

namespace {

/// One in-flight RetryAsync loop. Kept alive by the attempt callbacks and
/// wheel entries that reference it; state is only touched by the single
/// outstanding continuation, so no lock is needed.
struct AsyncRetryLoop : std::enable_shared_from_this<AsyncRetryLoop> {
  AsyncRetryLoop(const RetryPolicy& p, TimerWheel* w, Retryer::Clock c,
                 uint64_t jitter_seed, RetryAsyncAttempt a,
                 std::function<void(Status)> d)
      : policy(p),
        wheel(w),
        clock(c ? std::move(c) : Retryer::Clock(SteadyNowUs)),
        rng(jitter_seed),
        attempt(std::move(a)),
        done(std::move(d)),
        max_attempts(std::max(p.max_attempts, 1)) {}

  RetryPolicy policy;
  TimerWheel* wheel;
  Retryer::Clock clock;
  Rng rng;
  RetryAsyncAttempt attempt;
  std::function<void(Status)> done;
  const int max_attempts;
  int n = 1;
  int64_t start_us = 0;
  int64_t attempt_start_us = 0;

  // Mirrors Retryer::BackoffForAttempt.
  int64_t BackoffForAttempt(int a) const {
    double backoff = static_cast<double>(policy.initial_backoff_us);
    for (int i = 1; i < a; ++i) backoff *= policy.backoff_multiplier;
    backoff = std::min(backoff, static_cast<double>(policy.max_backoff_us));
    return static_cast<int64_t>(backoff);
  }

  void Start() {
    start_us = clock();
    StartAttempt();
  }

  void StartAttempt() {
    attempt_start_us = clock();
    auto self = shared_from_this();
    attempt([self](Status s) { self->OnAttemptDone(std::move(s)); });
  }

  // The verdict ladder below is Retryer::Run's loop body, verbatim, so the
  // sync and async paths cannot drift apart in messages or edge cases.
  void OnAttemptDone(Status last) {
    const int64_t now_us = clock();
    if (last.ok() || !last.IsRetryable()) {
      done(std::move(last));
      return;
    }
    if (policy.attempt_deadline_us > 0 &&
        now_us - attempt_start_us > policy.attempt_deadline_us) {
      done(Status::DeadlineExceeded(
          "attempt " + std::to_string(n) + " ran " +
          std::to_string(now_us - attempt_start_us) +
          "us, past the per-attempt deadline of " +
          std::to_string(policy.attempt_deadline_us) + "us: " +
          last.ToString()));
      return;
    }
    if (n == max_attempts) {
      done(last.WithContext("after " + std::to_string(max_attempts) +
                            " attempts"));
      return;
    }
    // Same hint-over-schedule rule as Retryer::Run above.
    int64_t backoff_us = last.retry_after_us() > 0 ? last.retry_after_us()
                                                   : BackoffForAttempt(n);
    if (policy.jitter > 0.0) {
      double fraction = static_cast<double>(rng.NextUint64() >> 11) *
                        0x1.0p-53;  // [0, 1)
      backoff_us -= static_cast<int64_t>(static_cast<double>(backoff_us) *
                                         policy.jitter * fraction);
    }
    if (policy.overall_deadline_us > 0 &&
        (now_us - start_us) + backoff_us >= policy.overall_deadline_us) {
      done(Status::DeadlineExceeded(
          "retry budget of " + std::to_string(policy.overall_deadline_us) +
          "us exhausted after " + std::to_string(n) + " attempt(s): " +
          last.ToString()));
      return;
    }
    ++n;
    auto self = shared_from_this();
    if (wheel != nullptr) {
      wheel->ScheduleAfter(backoff_us, [self] { self->StartAttempt(); });
    } else {
      RealSleepUs(backoff_us);
      StartAttempt();
    }
  }
};

}  // namespace

void RetryAsync(const RetryPolicy& policy, TimerWheel* wheel,
                Retryer::Clock clock, uint64_t jitter_seed,
                RetryAsyncAttempt attempt, std::function<void(Status)> done) {
  auto loop = std::make_shared<AsyncRetryLoop>(policy, wheel, std::move(clock),
                                               jitter_seed, std::move(attempt),
                                               std::move(done));
  loop->Start();
}

const char* CircuitStateName(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::kClosed:
      return "closed";
    case CircuitBreaker::State::kOpen:
      return "open";
    case CircuitBreaker::State::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

}  // namespace discsec
