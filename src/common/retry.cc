#include "common/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace discsec {

namespace {

int64_t SteadyNowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void RealSleepUs(int64_t us) {
  if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
}

}  // namespace

Retryer::Retryer(RetryPolicy policy, Clock clock, SleepFn sleep,
                 uint64_t jitter_seed)
    : policy_(policy),
      clock_(clock ? std::move(clock) : Clock(SteadyNowUs)),
      sleep_(sleep ? std::move(sleep) : SleepFn(RealSleepUs)),
      rng_(jitter_seed) {}

int64_t Retryer::BackoffForAttempt(int attempt) const {
  double backoff = static_cast<double>(policy_.initial_backoff_us);
  for (int i = 1; i < attempt; ++i) backoff *= policy_.backoff_multiplier;
  backoff = std::min(backoff, static_cast<double>(policy_.max_backoff_us));
  return static_cast<int64_t>(backoff);
}

Status Retryer::Run(const std::function<Status()>& attempt) {
  const int max_attempts = std::max(policy_.max_attempts, 1);
  const int64_t start_us = clock_();
  Status last;
  for (int n = 1; n <= max_attempts; ++n) {
    const int64_t attempt_start_us = clock_();
    last = attempt();
    const int64_t now_us = clock_();
    if (last.ok()) return last;
    if (!last.IsRetryable()) return last;
    if (policy_.attempt_deadline_us > 0 &&
        now_us - attempt_start_us > policy_.attempt_deadline_us) {
      return Status::DeadlineExceeded(
          "attempt " + std::to_string(n) + " ran " +
          std::to_string(now_us - attempt_start_us) +
          "us, past the per-attempt deadline of " +
          std::to_string(policy_.attempt_deadline_us) + "us: " +
          last.ToString());
    }
    if (n == max_attempts) break;
    int64_t backoff_us = BackoffForAttempt(n);
    if (policy_.jitter > 0.0) {
      double fraction = static_cast<double>(rng_.NextUint64() >> 11) *
                        0x1.0p-53;  // [0, 1)
      backoff_us -= static_cast<int64_t>(static_cast<double>(backoff_us) *
                                         policy_.jitter * fraction);
    }
    if (policy_.overall_deadline_us > 0 &&
        (now_us - start_us) + backoff_us >= policy_.overall_deadline_us) {
      return Status::DeadlineExceeded(
          "retry budget of " + std::to_string(policy_.overall_deadline_us) +
          "us exhausted after " + std::to_string(n) + " attempt(s): " +
          last.ToString());
    }
    sleep_(backoff_us);
  }
  return last.WithContext("after " + std::to_string(max_attempts) +
                          " attempts");
}

bool CircuitBreaker::Allow(int64_t now_us) {
  if (!open_) return true;
  if (now_us - opened_at_us_ < options_.open_duration_us) return false;
  if (probe_in_flight_) return false;
  probe_in_flight_ = true;  // half-open: admit a single probe
  return true;
}

void CircuitBreaker::RecordSuccess() {
  failures_ = 0;
  open_ = false;
  probe_in_flight_ = false;
}

void CircuitBreaker::RecordFailure(int64_t now_us) {
  ++failures_;
  if (open_) {
    // The half-open probe failed: re-open for a fresh cool-down.
    opened_at_us_ = now_us;
    probe_in_flight_ = false;
    return;
  }
  if (failures_ >= options_.failure_threshold) {
    open_ = true;
    opened_at_us_ = now_us;
    probe_in_flight_ = false;
  }
}

CircuitBreaker::State CircuitBreaker::state(int64_t now_us) const {
  if (!open_) return State::kClosed;
  if (now_us - opened_at_us_ >= options_.open_duration_us) {
    return State::kHalfOpen;
  }
  return State::kOpen;
}

const char* CircuitStateName(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::kClosed:
      return "closed";
    case CircuitBreaker::State::kOpen:
      return "open";
    case CircuitBreaker::State::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

}  // namespace discsec
