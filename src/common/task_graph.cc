#include "common/task_graph.h"

#include <condition_variable>
#include <mutex>
#include <queue>

namespace discsec {
namespace taskgraph {

/// Mutable per-run scheduling state, shared (via shared_ptr) with helper
/// tasks on the pool and with async completion handles, so a helper that
/// dequeues after the run already finished — or a completion firing from a
/// timer thread — touches live memory and no-ops instead of a dead frame.
struct TaskGraph::RunState {
  enum class NState {
    kPending,
    kReady,
    kRunning,
    kDoneOk,
    kDoneFailed,
    kCancelled,
  };

  struct NodeRun {
    NState state = NState::kPending;
    size_t preds_remaining = 0;
    /// Some predecessor failed or was cancelled; the node can never run.
    bool poisoned = false;
    /// Fail-fast marked the node for cancellation; honored lazily when it
    /// would otherwise start.
    bool cancel_requested = false;
    Status status;
  };

  static bool Terminal(NState s) {
    return s == NState::kDoneOk || s == NState::kDoneFailed ||
           s == NState::kCancelled;
  }

  std::mutex mu;
  std::condition_variable cv;
  const TaskGraph* graph = nullptr;
  ThreadPool* pool = nullptr;
  bool fail_fast = true;
  std::vector<NodeRun> nodes;
  /// Min-heap: the lowest ready id always starts first, which is what makes
  /// the null-pool path a deterministic topological order.
  std::priority_queue<NodeId, std::vector<NodeId>, std::greater<NodeId>>
      ready;
  size_t terminal = 0;
  NodeId lowest_failed = kNoNode;
};

NodeId TaskGraph::AddNode(std::string label, std::function<Status()> fn) {
  Node node;
  node.label = std::move(label);
  node.fn = std::move(fn);
  nodes_.push_back(std::move(node));
  return nodes_.size() - 1;
}

NodeId TaskGraph::AddAsyncNode(std::string label,
                               std::function<void(CompletionHandle)> fn) {
  Node node;
  node.label = std::move(label);
  node.async_fn = std::move(fn);
  nodes_.push_back(std::move(node));
  return nodes_.size() - 1;
}

void TaskGraph::AddEdge(NodeId before, NodeId after) {
  if (before >= nodes_.size() || after >= nodes_.size() || before == after) {
    if (definition_error_.ok()) {
      definition_error_ = Status::InvalidArgument(
          "task graph edge " + std::to_string(before) + " -> " +
          std::to_string(after) + " references invalid nodes");
    }
    return;
  }
  nodes_[before].dependents.push_back(after);
  ++nodes_[after].preds;
}

Status TaskGraph::CheckAcyclic() const {
  std::vector<size_t> preds(nodes_.size());
  std::vector<NodeId> frontier;
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    preds[i] = nodes_[i].preds;
    if (preds[i] == 0) frontier.push_back(i);
  }
  size_t visited = 0;
  while (!frontier.empty()) {
    NodeId id = frontier.back();
    frontier.pop_back();
    ++visited;
    for (NodeId d : nodes_[id].dependents) {
      if (--preds[d] == 0) frontier.push_back(d);
    }
  }
  if (visited != nodes_.size()) {
    return Status::InvalidArgument("task graph contains a dependency cycle");
  }
  return Status::OK();
}

void TaskGraph::MakeReadyLocked(const std::shared_ptr<RunState>& state,
                                NodeId id) {
  state->nodes[id].state = RunState::NState::kReady;
  state->ready.push(id);
  if (state->pool != nullptr) {
    state->pool->Submit([state] { Drain(state, /*is_caller=*/false); });
  }
}

/// Settles `id` into a terminal state and walks the consequences: newly
/// unblocked dependents become ready, dependents of a failure cancel
/// transitively, and a failure under fail-fast marks every unstarted
/// higher-id node for cancellation. Caller holds state->mu.
void TaskGraph::FinishLocked(const std::shared_ptr<RunState>& state,
                             NodeId id, Status status) {
  using NState = RunState::NState;
  // Worklist of freshly-terminal nodes still owing propagation.
  std::vector<std::pair<NodeId, bool>> settled;

  auto settle = [&](NodeId nid, NState final_state, Status st) {
    RunState::NodeRun& nr = state->nodes[nid];
    if (RunState::Terminal(nr.state)) return;  // stale double-completion
    nr.state = final_state;
    nr.status = std::move(st);
    ++state->terminal;
    const bool ok = final_state == NState::kDoneOk;
    if (final_state == NState::kDoneFailed && nid < state->lowest_failed) {
      state->lowest_failed = nid;
    }
    settled.emplace_back(nid, ok);
  };

  settle(id, status.ok() ? NState::kDoneOk : NState::kDoneFailed,
         std::move(status));

  if (state->fail_fast && state->lowest_failed != kNoNode) {
    // Everything after the lowest failure that has not started yet is moot:
    // a serial in-order sweep would never have reached it. Lower ids keep
    // running so a still-earlier failure can claim the verdict.
    for (NodeId i = state->lowest_failed + 1; i < state->nodes.size(); ++i) {
      RunState::NodeRun& nr = state->nodes[i];
      if (nr.state == NState::kPending || nr.state == NState::kReady) {
        nr.cancel_requested = true;
      }
    }
  }

  while (!settled.empty()) {
    auto [nid, ok] = settled.back();
    settled.pop_back();
    for (NodeId d : state->graph->nodes_[nid].dependents) {
      RunState::NodeRun& dr = state->nodes[d];
      if (!ok) dr.poisoned = true;
      if (--dr.preds_remaining != 0) continue;
      if (dr.state != NState::kPending) continue;
      if (dr.poisoned) {
        settle(d, NState::kCancelled,
               Status::Unavailable("cancelled: predecessor '" +
                                   state->graph->nodes_[nid].label +
                                   "' did not succeed"));
      } else if (dr.cancel_requested) {
        settle(d, NState::kCancelled,
               Status::Unavailable("cancelled by fail-fast"));
      } else {
        MakeReadyLocked(state, d);
      }
    }
  }
  state->cv.notify_all();
}

void TaskGraph::CancelLocked(const std::shared_ptr<RunState>& state,
                             NodeId id, Status status) {
  using NState = RunState::NState;
  RunState::NodeRun& nr = state->nodes[id];
  if (RunState::Terminal(nr.state)) return;
  nr.state = NState::kCancelled;
  nr.status = std::move(status);
  ++state->terminal;
  // Dependents are poisoned exactly as by a failure; reuse the propagation
  // walk by replaying through FinishLocked's worklist is not possible here
  // without double-settling, so walk dependents directly.
  std::vector<NodeId> work{id};
  while (!work.empty()) {
    NodeId nid = work.back();
    work.pop_back();
    for (NodeId d : state->graph->nodes_[nid].dependents) {
      RunState::NodeRun& dr = state->nodes[d];
      dr.poisoned = true;
      if (--dr.preds_remaining != 0) continue;
      if (dr.state != NState::kPending) continue;
      dr.state = NState::kCancelled;
      dr.status = Status::Unavailable("cancelled: predecessor '" +
                                      state->graph->nodes_[nid].label +
                                      "' did not succeed");
      ++state->terminal;
      work.push_back(d);
    }
  }
  state->cv.notify_all();
}

void TaskGraph::Drain(const std::shared_ptr<RunState>& state,
                      bool is_caller) {
  using NState = RunState::NState;
  const size_t n = state->nodes.size();
  std::unique_lock<std::mutex> lock(state->mu);
  for (;;) {
    if (state->terminal == n) return;
    if (state->ready.empty()) {
      if (!is_caller) return;  // completions submit fresh helpers
      state->cv.wait(lock, [&] {
        return !state->ready.empty() || state->terminal == n;
      });
      continue;
    }
    const NodeId id = state->ready.top();
    state->ready.pop();
    RunState::NodeRun& nr = state->nodes[id];
    if (nr.state != NState::kReady) continue;  // settled while queued
    if (nr.cancel_requested) {
      CancelLocked(state, id, Status::Unavailable("cancelled by fail-fast"));
      continue;
    }
    nr.state = NState::kRunning;
    const Node& def = state->graph->nodes_[id];
    lock.unlock();
    if (def.async_fn) {
      {
        CompletionHandle handle(std::make_shared<CompletionHandle::Shared>(
            [state, id](Status s) {
              std::lock_guard<std::mutex> inner(state->mu);
              FinishLocked(state, id, std::move(s));
            }));
        def.async_fn(handle);
        // The local reference must die *before* the lock below: if the body
        // abandoned its copies, the last handle's destructor fires the
        // completion, which takes state->mu itself.
      }
      lock.lock();
      continue;  // terminal transition arrives through the handle
    }
    Status status = def.fn ? def.fn() : Status::OK();
    lock.lock();
    FinishLocked(state, id, std::move(status));
  }
}

Status TaskGraph::Run(const RunOptions& options) {
  if (!definition_error_.ok()) return definition_error_;
  if (run_ != nullptr) {
    return Status::InvalidArgument("task graph already ran");
  }
  DISCSEC_RETURN_IF_ERROR(CheckAcyclic());
  auto state = std::make_shared<RunState>();
  run_ = state;
  state->graph = this;
  state->pool = options.pool;
  state->fail_fast = options.fail_fast;
  state->nodes.resize(nodes_.size());
  if (nodes_.empty()) return Status::OK();
  {
    std::lock_guard<std::mutex> lock(state->mu);
    for (NodeId i = 0; i < nodes_.size(); ++i) {
      state->nodes[i].preds_remaining = nodes_[i].preds;
      if (nodes_[i].preds == 0) MakeReadyLocked(state, i);
    }
  }
  Drain(state, /*is_caller=*/true);
  std::lock_guard<std::mutex> lock(state->mu);
  if (state->lowest_failed != kNoNode) {
    return state->nodes[state->lowest_failed].status;
  }
  return Status::OK();
}

const Status& TaskGraph::node_status(NodeId id) const {
  static const Status kNotRun =
      Status::Unavailable("task graph has not run");
  if (run_ == nullptr || id >= run_->nodes.size()) return kNotRun;
  std::lock_guard<std::mutex> lock(run_->mu);
  return run_->nodes[id].status;
}

bool TaskGraph::node_cancelled(NodeId id) const {
  if (run_ == nullptr || id >= run_->nodes.size()) return false;
  std::lock_guard<std::mutex> lock(run_->mu);
  return run_->nodes[id].state == RunState::NState::kCancelled;
}

bool TaskGraph::node_ran(NodeId id) const {
  if (run_ == nullptr || id >= run_->nodes.size()) return false;
  std::lock_guard<std::mutex> lock(run_->mu);
  return run_->nodes[id].state == RunState::NState::kDoneOk ||
         run_->nodes[id].state == RunState::NState::kDoneFailed;
}

}  // namespace taskgraph
}  // namespace discsec
