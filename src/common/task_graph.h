#ifndef DISCSEC_COMMON_TASK_GRAPH_H_
#define DISCSEC_COMMON_TASK_GRAPH_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"

namespace discsec {
namespace taskgraph {

/// Nodes are identified by their insertion index. Results fold back in id
/// order, which is how the executor keeps deterministic, serial-identical
/// reports out of a nondeterministic schedule.
using NodeId = size_t;

inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

/// Completion token handed to an asynchronous node. The node's body returns
/// immediately after arranging for Complete() to be called later — from a
/// TimerWheel thread, an async transport callback, any thread at all. The
/// first Complete() wins; later calls (and completions after the run
/// finished) are ignored. If every copy of the handle is destroyed without
/// completing, the node completes with an error instead of hanging the run.
/// Copyable so it can ride in std::function callbacks.
class CompletionHandle {
 public:
  CompletionHandle() = default;

  void Complete(Status status) const {
    if (shared_ == nullptr) return;
    if (shared_->completed.exchange(true, std::memory_order_acq_rel)) return;
    shared_->finish(std::move(status));
  }

 private:
  friend class TaskGraph;

  struct Shared {
    explicit Shared(std::function<void(Status)> f) : finish(std::move(f)) {}
    ~Shared() {
      if (!completed.load(std::memory_order_acquire)) {
        finish(Status::Unavailable(
            "async node abandoned its completion handle"));
      }
    }
    std::function<void(Status)> finish;
    std::atomic<bool> completed{false};
  };

  explicit CompletionHandle(std::shared_ptr<Shared> shared)
      : shared_(std::move(shared)) {}

  std::shared_ptr<Shared> shared_;
};

/// A dependency-graph executor over the existing ThreadPool — the execution
/// spine behind parallel signature verification, multi-disc playback and
/// async XKMS traffic. Nodes are plain Status-returning callables (or async
/// bodies completing through a CompletionHandle); edges say "before must
/// succeed before after starts". Run() dispatches ready nodes onto the pool
/// in topological order and blocks until every node is terminal.
///
/// Semantics, chosen for byte-parity with the serial code paths:
///  - Failure propagation: a node whose predecessor failed (or was
///    cancelled) never runs; it is cancelled, transitively.
///  - Fail-fast (RunOptions::fail_fast): when a node fails, every
///    not-yet-started node with a *higher* id is cancelled. Lower-id nodes
///    always run to completion, so the reported failure is exactly the
///    lowest-id failure — the same verdict a serial in-order sweep
///    produces, whatever order the pool ran things in. In-flight nodes are
///    never interrupted.
///  - Run() returns OK iff every node succeeded, otherwise the lowest-id
///    failed node's status. Per-node verdicts stay readable afterwards via
///    node_status()/node_cancelled() for callers that fold their own
///    reports (degraded-mode playback collects *all* quarantine reasons).
///
/// Scheduling reuses the ParallelFor discipline: the calling thread always
/// participates in the drain loop and waits on node *completions*, so a
/// graph run nested inside a pool task (or run with a null pool) makes
/// progress even when every worker is busy. With a null pool and no async
/// nodes, execution is serial lowest-ready-id order on the caller — the
/// deterministic topological order.
///
/// A TaskGraph is built once, run once. Not thread-safe during
/// construction; Run() itself is internally synchronized.
class TaskGraph {
 public:
  TaskGraph() = default;

  TaskGraph(const TaskGraph&) = delete;
  TaskGraph& operator=(const TaskGraph&) = delete;

  /// Adds a synchronous node; the label shows up in diagnostics only.
  NodeId AddNode(std::string label, std::function<Status()> fn);

  /// Adds an asynchronous node: `fn` is invoked on a worker (or the
  /// caller) and the node stays in flight until the handle completes.
  NodeId AddAsyncNode(std::string label,
                      std::function<void(CompletionHandle)> fn);

  /// Requires `before` to succeed before `after` may start. Invalid ids or
  /// self-edges poison the graph; Run() reports them as kInvalidArgument.
  void AddEdge(NodeId before, NodeId after);

  struct RunOptions {
    /// Null runs the whole graph on the calling thread.
    ThreadPool* pool = nullptr;
    /// Cancel not-yet-started higher-id nodes once any node fails. Off,
    /// every non-poisoned node still runs (degraded-mode playback).
    bool fail_fast = true;
  };

  /// Executes the graph to quiescence. Detects cycles up front
  /// (kInvalidArgument, nothing runs). Must be called at most once.
  Status Run(const RunOptions& options);
  Status Run() { return Run(RunOptions()); }

  size_t size() const { return nodes_.size(); }
  const std::string& node_label(NodeId id) const { return nodes_[id].label; }

  /// Post-Run accessors. A cancelled node's status explains the
  /// cancellation; node_ran distinguishes "ran and failed" from "never
  /// started".
  const Status& node_status(NodeId id) const;
  bool node_cancelled(NodeId id) const;
  bool node_ran(NodeId id) const;

 private:
  struct Node {
    std::string label;
    std::function<Status()> fn;
    std::function<void(CompletionHandle)> async_fn;
    std::vector<NodeId> dependents;
    size_t preds = 0;
  };

  struct RunState;

  static void Drain(const std::shared_ptr<RunState>& state, bool is_caller);
  static void FinishLocked(const std::shared_ptr<RunState>& state, NodeId id,
                           Status status);
  static void CancelLocked(const std::shared_ptr<RunState>& state, NodeId id,
                           Status status);
  static void MakeReadyLocked(const std::shared_ptr<RunState>& state,
                              NodeId id);
  Status CheckAcyclic() const;

  std::vector<Node> nodes_;
  Status definition_error_;
  std::shared_ptr<RunState> run_;
};

}  // namespace taskgraph
}  // namespace discsec

#endif  // DISCSEC_COMMON_TASK_GRAPH_H_
