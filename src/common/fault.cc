#include "common/fault.h"

#include <chrono>
#include <thread>

namespace discsec {
namespace fault {

const char* KindName(Kind kind) {
  switch (kind) {
    case Kind::kError:
      return "error";
    case Kind::kCorrupt:
      return "corrupt";
    case Kind::kTruncate:
      return "truncate";
    case Kind::kDelay:
      return "delay";
  }
  return "unknown";
}

Result<Kind> KindFromName(std::string_view name) {
  if (name == "error") return Kind::kError;
  if (name == "corrupt") return Kind::kCorrupt;
  if (name == "truncate") return Kind::kTruncate;
  if (name == "delay") return Kind::kDelay;
  return Status::InvalidArgument("unknown fault kind '" + std::string(name) +
                                 "' (want error|corrupt|truncate|delay)");
}

void FaultInjector::Arm(FaultSpec spec) {
  PointState state;
  std::string point = spec.point;
  state.spec = std::move(spec);
  std::lock_guard<std::mutex> lock(mu_);
  points_[point] = std::move(state);
  armed_.store(true, std::memory_order_release);
}

void FaultInjector::Disarm(std::string_view point) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  if (it != points_.end()) points_.erase(it);
  armed_.store(!points_.empty(), std::memory_order_release);
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  points_.clear();
  armed_.store(false, std::memory_order_release);
}

uint64_t FaultInjector::hits(std::string_view point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.hits;
}

uint64_t FaultInjector::fires(std::string_view point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.fires;
}

uint64_t FaultInjector::total_fires() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [point, state] : points_) total += state.fires;
  return total;
}

bool FaultInjector::ShouldFire(PointState* state, std::string_view detail) {
  const FaultSpec& spec = state->spec;
  ++state->hits;
  if (!spec.detail_filter.empty() &&
      detail.find(spec.detail_filter) == std::string_view::npos) {
    return false;
  }
  if (state->hits <= spec.skip_first) return false;
  if (spec.max_fires != 0 && state->fires >= spec.max_fires) return false;
  if (spec.every_nth > 1 && state->hits % spec.every_nth != 0) return false;
  if (spec.probability < 1.0) {
    // 53 uniform bits -> [0, 1); same construction as std::generate_canonical.
    double roll = static_cast<double>(rng_.NextUint64() >> 11) * 0x1.0p-53;
    if (roll >= spec.probability) return false;
  }
  return true;
}

template <typename Container>
bool FaultInjector::ApplyDataFault(Kind kind, Container* data) {
  if (data == nullptr || data->empty()) return false;
  switch (kind) {
    case Kind::kCorrupt: {
      size_t pos = static_cast<size_t>(rng_.NextBelow(data->size()));
      (*data)[pos] ^= static_cast<typename Container::value_type>(
          1u << rng_.NextBelow(8));
      return true;
    }
    case Kind::kTruncate:
      data->resize(static_cast<size_t>(rng_.NextBelow(data->size())));
      return true;
    case Kind::kError:
    case Kind::kDelay:
      return true;  // unreachable; handled by the caller
  }
  return false;
}

template <typename Container>
Status FaultInjector::HitImpl(std::string_view point, std::string_view detail,
                              Container* data, int64_t* deferred_delay_us) {
  if (deferred_delay_us != nullptr) *deferred_delay_us = 0;
  // Disarmed fast path: no lock, one relaxed-ish load. Arm/Hit races are
  // benign — a hit that overlaps Arm may miss the brand-new spec, exactly
  // as if it had run a moment earlier.
  if (!armed_.load(std::memory_order_acquire)) return Status::OK();
  int64_t sleep_us = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = points_.find(point);
    if (it == points_.end()) return Status::OK();
    PointState& state = it->second;
    if (!ShouldFire(&state, detail)) return Status::OK();
    if (state.spec.kind == Kind::kError) {
      ++state.fires;
      std::string msg = state.spec.message.empty() ? "injected fault"
                                                   : state.spec.message;
      msg += " at '" + std::string(point) + "'";
      if (!detail.empty()) msg += " (" + std::string(detail) + ")";
      return Status::Make(state.spec.code, std::move(msg));
    }
    if (state.spec.kind == Kind::kDelay) {
      if (state.spec.delay_us > 0) {
        ++state.fires;
        sleep_us = state.spec.delay_us;
      }
    } else if (ApplyDataFault(state.spec.kind, data)) {
      // Data faults on payload-less or empty operations have nothing to
      // mangle; they do not count as fires, so a chaos sweep can tell
      // "fault landed" from "fault had no effect here".
      ++state.fires;
    }
  }
  if (sleep_us > 0) {
    // Delay is served outside the injector lock so concurrent hitters are
    // delayed, not serialized. Async callers take the deferred route and
    // park the latency on a timer wheel instead of a sleeping thread.
    if (deferred_delay_us != nullptr) {
      *deferred_delay_us = sleep_us;
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
    }
  }
  return Status::OK();
}

template Status FaultInjector::HitImpl<Bytes>(std::string_view,
                                              std::string_view, Bytes*,
                                              int64_t*);
template Status FaultInjector::HitImpl<std::string>(std::string_view,
                                                    std::string_view,
                                                    std::string*, int64_t*);

FaultInjector& GlobalFaultInjector() {
  static FaultInjector injector;
  return injector;
}

}  // namespace fault
}  // namespace discsec
