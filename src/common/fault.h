#ifndef DISCSEC_COMMON_FAULT_H_
#define DISCSEC_COMMON_FAULT_H_

#include <atomic>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "common/bytes.h"
#include "common/random.h"
#include "common/result.h"

namespace discsec {
namespace fault {

/// Deterministic fault-injection framework (RocksDB FaultInjectionTestFS /
/// SyncPoint lineage): production code is instrumented with *named fault
/// points*; tests and the chaos suite arm an injector with a spec per point
/// and every hit then either passes through untouched, returns an injected
/// Status, or corrupts the bytes in flight. Disarmed, a fault point is a
/// single map-emptiness check — cheap enough to leave in release builds
/// (bench_resilience records the cost).

/// Canonical fault points threaded through the library. The chaos suite
/// sweeps kAllPoints x every Kind; add new points here so they join the
/// sweep automatically.
inline constexpr std::string_view kDiscRead = "disc.read";
inline constexpr std::string_view kStorageRead = "storage.read";
inline constexpr std::string_view kStorageWrite = "storage.write";
inline constexpr std::string_view kNetSeal = "net.seal";
inline constexpr std::string_view kNetOpen = "net.open";
inline constexpr std::string_view kNetWire = "net.wire";
inline constexpr std::string_view kXkmsTransport = "xkms.transport";
inline constexpr std::string_view kToolRead = "tool.read";
/// Server-side (xkmsd) fault points: the admission front door, the
/// authoritative sharded key store, and the degradation snapshot. Hit
/// details are "<op> <key name>" (e.g. "locate studio-1"), so a chaos
/// scenario can break reads while writes stay healthy via detail_filter.
inline constexpr std::string_view kXkmsdQueue = "xkmsd.queue";
inline constexpr std::string_view kXkmsdStore = "xkmsd.store";
inline constexpr std::string_view kXkmsdSnapshot = "xkmsd.snapshot";

inline constexpr std::string_view kAllPoints[] = {
    kDiscRead,  kStorageRead,    kStorageWrite, kNetSeal,
    kNetOpen,   kNetWire,        kXkmsTransport, kToolRead,
    kXkmsdQueue, kXkmsdStore,    kXkmsdSnapshot,
};

/// What a fired fault does to the operation it interrupts.
enum class Kind {
  kError,     ///< the operation fails with an injected Status
  kCorrupt,   ///< one byte of the payload is bit-flipped (silent bit-rot)
  kTruncate,  ///< the payload is cut short (torn read/write)
  kDelay,     ///< the operation succeeds after FaultSpec::delay_us of latency
};

const char* KindName(Kind kind);
Result<Kind> KindFromName(std::string_view name);

/// One armed fault: where it fires, what it does, and when it triggers.
/// Triggers compose: a hit fires only if it passes the detail filter, the
/// skip window, the every-Nth gate, the probability roll, and the max-fires
/// budget (one-shot faults set max_fires = 1).
struct FaultSpec {
  std::string point;
  Kind kind = Kind::kError;
  double probability = 1.0;   ///< chance each eligible hit fires
  uint64_t every_nth = 0;     ///< fire only on hits where index % n == 0
  uint64_t skip_first = 0;    ///< let the first N hits pass untouched
  uint64_t max_fires = 0;     ///< stop firing after N fires (0 = unlimited)
  /// Fire only when the hit's detail (file path, direction, ...) contains
  /// this substring. Empty matches every hit. This is how a test targets
  /// one scratched file on an otherwise healthy disc.
  std::string detail_filter;
  /// Status injected by kError faults.
  Status::Code code = Status::Code::kUnavailable;
  std::string message;        ///< defaults to "injected fault"
  /// Latency injected by kDelay faults, microseconds. A fired delay either
  /// sleeps on the hitting thread (the plain Hit* entry points) or is
  /// handed back through the *Deferred variants so an async caller can park
  /// it on a TimerWheel instead of blocking a worker.
  int64_t delay_us = 0;
};

/// Seedable fault injector: equal seeds give equal corruption positions and
/// probability rolls, so every chaos finding replays exactly.
///
/// Thread-safe: trigger state, counters and the corruption RNG are guarded
/// by one mutex, so chaos runs under the parallel verification engine are
/// data-race-free. The disarmed fast path stays lock-free — a single
/// relaxed atomic load — which keeps the always-compiled-in instrumentation
/// cheap on the production path. Determinism holds per-thread-schedule:
/// equal seeds and equal hit orders replay exactly; concurrent hitters
/// interleave rolls in whatever order the schedule produces.
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed = 20050915) : rng_(seed) {}

  /// Arms `spec` at spec.point, replacing any spec already armed there.
  void Arm(FaultSpec spec);
  void Disarm(std::string_view point);
  /// Disarms everything and zeroes all counters.
  void Reset();
  bool armed() const { return armed_.load(std::memory_order_acquire); }

  /// The single instrumentation entry point: consult the injector at
  /// `point` for an operation whose payload is `data` (null for payload-
  /// less operations). Returns the injected Status for a fired kError
  /// fault; for kCorrupt/kTruncate mangles *data in place and returns OK
  /// (the caller's integrity layer is expected to notice); a fired kDelay
  /// fault sleeps spec.delay_us on this thread and returns OK. `detail`
  /// describes the operation (file path, direction) for filtering.
  Status Hit(std::string_view point, std::string_view detail = {}) {
    return HitImpl(point, detail, static_cast<Bytes*>(nullptr));
  }
  Status HitData(std::string_view point, Bytes* data,
                 std::string_view detail = {}) {
    return HitImpl(point, detail, data);
  }
  Status HitData(std::string_view point, std::string* data,
                 std::string_view detail = {}) {
    return HitImpl(point, detail, data);
  }

  /// Non-blocking variants for async callers: identical to Hit/HitData
  /// except that a fired kDelay fault never sleeps here — its latency is
  /// written to *deferred_delay_us (0 when no delay fired) and the caller
  /// is expected to park the continuation on a TimerWheel for that long.
  /// Every other kind behaves exactly as in the blocking entry points.
  Status HitDeferred(std::string_view point, std::string_view detail,
                     int64_t* deferred_delay_us) {
    return HitImpl(point, detail, static_cast<Bytes*>(nullptr),
                   deferred_delay_us);
  }
  Status HitDataDeferred(std::string_view point, std::string* data,
                         std::string_view detail,
                         int64_t* deferred_delay_us) {
    return HitImpl(point, detail, data, deferred_delay_us);
  }

  /// Instrumentation counters, for "did the fault actually land" asserts.
  uint64_t hits(std::string_view point) const;
  uint64_t fires(std::string_view point) const;
  uint64_t total_fires() const;

 private:
  struct PointState {
    FaultSpec spec;
    uint64_t hits = 0;
    uint64_t fires = 0;
  };

  template <typename Container>
  Status HitImpl(std::string_view point, std::string_view detail,
                 Container* data, int64_t* deferred_delay_us = nullptr);
  bool ShouldFire(PointState* state, std::string_view detail);
  template <typename Container>
  bool ApplyDataFault(Kind kind, Container* data);

  mutable std::mutex mu_;
  std::atomic<bool> armed_{false};
  Rng rng_;  // guarded by mu_
  std::map<std::string, PointState, std::less<>> points_;  // guarded by mu_
};

/// The process-wide injector, disarmed by default. Command-line tools arm
/// it from --inject-fault flags; library layers fall back to it when no
/// per-instance injector is attached.
FaultInjector& GlobalFaultInjector();

/// Resolves the injector a layer should consult: its own, or the global.
inline FaultInjector* Effective(FaultInjector* local) {
  return local != nullptr ? local : &GlobalFaultInjector();
}

}  // namespace fault
}  // namespace discsec

#endif  // DISCSEC_COMMON_FAULT_H_
