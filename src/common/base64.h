#ifndef DISCSEC_COMMON_BASE64_H_
#define DISCSEC_COMMON_BASE64_H_

#include <string>
#include <string_view>

#include "common/bytes.h"
#include "common/result.h"

namespace discsec {

/// Standard Base64 (RFC 4648) encoding with '=' padding, as used by
/// XML-DSig <DigestValue>/<SignatureValue> and XML-Enc <CipherValue>.
std::string Base64Encode(const Bytes& data);

/// Decodes Base64 text. Whitespace (space, tab, CR, LF) is ignored, matching
/// XML-DSig processing rules where encoded values may be line-wrapped.
Result<Bytes> Base64Decode(std::string_view text);

}  // namespace discsec

#endif  // DISCSEC_COMMON_BASE64_H_
