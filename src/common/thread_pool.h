#ifndef DISCSEC_COMMON_THREAD_POOL_H_
#define DISCSEC_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace discsec {

/// A bounded pool of worker threads with a shared FIFO queue — the execution
/// substrate for the parallel verification engine. Deliberately simple: no
/// work stealing, no priorities, no futures; parallel sections are expressed
/// with the blocking ParallelFor/ParallelMap helpers below, which are safe to
/// nest (the calling thread always participates, so a nested section makes
/// progress even when every pool worker is busy).
///
/// A null pool (or a pool of zero threads) degrades every helper to plain
/// serial execution with identical results, so callers thread a `ThreadPool*`
/// through their options and the single-threaded configuration stays the
/// default.
class ThreadPool {
 public:
  /// Spawns `threads` workers. Zero is allowed: Submit still works (tasks run
  /// on the submitting thread inside the helpers' drain loop), which keeps a
  /// 1-thread sweep honest in the benchmarks.
  explicit ThreadPool(size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t thread_count() const { return workers_.size(); }

  /// Enqueues `task` for execution by a worker. Tasks must not throw.
  void Submit(std::function<void()> task);

  /// std::thread::hardware_concurrency with a floor of 1.
  static size_t HardwareThreads();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

/// Runs `fn(i)` for every i in [0, n), distributing iterations over the pool
/// workers and the calling thread, and blocks until all n complete. Iteration
/// order across threads is unspecified; `fn` must be safe to invoke
/// concurrently with itself. With a null pool (or n < 2) the loop runs
/// serially on the caller in index order.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn);

/// Maps `fn` over `items`, preserving order in the returned vector: out[i] is
/// fn(items[i]). The result type only needs to be movable.
template <typename T, typename Fn>
auto ParallelMap(ThreadPool* pool, const std::vector<T>& items, Fn fn)
    -> std::vector<decltype(fn(items[size_t{0}]))> {
  using R = decltype(fn(items[size_t{0}]));
  std::vector<std::optional<R>> slots(items.size());
  ParallelFor(pool, items.size(),
              [&](size_t i) { slots[i].emplace(fn(items[i])); });
  std::vector<R> out;
  out.reserve(items.size());
  for (auto& slot : slots) out.push_back(std::move(*slot));
  return out;
}

}  // namespace discsec

#endif  // DISCSEC_COMMON_THREAD_POOL_H_
