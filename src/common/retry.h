#ifndef DISCSEC_COMMON_RETRY_H_
#define DISCSEC_COMMON_RETRY_H_

#include <functional>
#include <string>

#include "common/random.h"
#include "common/result.h"

namespace discsec {

/// gRPC-style retry policy: bounded attempts, exponential backoff with
/// jitter, and two deadlines. All times are microseconds. Only statuses
/// with Status::IsRetryable() (kUnavailable) are retried; everything else
/// is returned to the caller on the first attempt. A failed attempt whose
/// Status carries a retry_after_us() hint (a shedding responder's
/// retry-after) replaces the exponential step for that backoff — jitter
/// still applies, so hinted fleets decorrelate.
struct RetryPolicy {
  int max_attempts = 3;
  int64_t initial_backoff_us = 1000;
  double backoff_multiplier = 2.0;
  int64_t max_backoff_us = 1000000;
  /// Fraction of the computed backoff randomized away (0 = deterministic,
  /// 0.2 = sleep in [0.8b, b]). Decorrelates retry storms across clients.
  double jitter = 0.0;
  /// An attempt that fails after running longer than this is not retried
  /// (the operation is too slow to be worth hammering). 0 = unbounded.
  int64_t attempt_deadline_us = 0;
  /// Total budget across attempts and backoffs; once the next backoff
  /// would cross it, the retryer gives up with kDeadlineExceeded.
  /// 0 = unbounded.
  int64_t overall_deadline_us = 0;
};

/// Executes an operation under a RetryPolicy. Clock and sleep are
/// injectable so tests drive deadlines with a fake clock and *no real
/// sleeping*; the defaults use the steady clock and a real sleep.
class Retryer {
 public:
  using Clock = std::function<int64_t()>;        ///< now, microseconds
  using SleepFn = std::function<void(int64_t)>;  ///< sleep N microseconds

  explicit Retryer(RetryPolicy policy, Clock clock = {}, SleepFn sleep = {},
                   uint64_t jitter_seed = 0);

  /// Runs `attempt` until it returns OK, a non-retryable status, or the
  /// policy is exhausted. The returned status keeps the last attempt's
  /// code; exhaustion annotates the message with the attempt count and
  /// deadline overruns surface as kDeadlineExceeded.
  Status Run(const std::function<Status()>& attempt);

  /// Result-returning convenience over Run().
  template <typename T>
  Result<T> Call(const std::function<Result<T>()>& attempt) {
    std::optional<T> value;
    Status status = Run([&]() -> Status {
      Result<T> result = attempt();
      if (!result.ok()) return result.status();
      value = std::move(result).value();
      return Status::OK();
    });
    if (!status.ok()) return status;
    return std::move(*value);
  }

  /// The backoff before retry number `attempt` (1-based, pre-jitter);
  /// exposed so tests can assert the exponential schedule.
  int64_t BackoffForAttempt(int attempt) const;

 private:
  RetryPolicy policy_;
  Clock clock_;
  SleepFn sleep_;
  Rng rng_;
};

class TimerWheel;

/// An attempt that completes through a callback — possibly on another
/// thread — instead of returning. The attempt must invoke its callback
/// exactly once.
using RetryAsyncAttempt =
    std::function<void(std::function<void(Status)> attempt_done)>;

/// Asynchronous counterpart of Retryer::Run with identical verdicts: same
/// retryability rules, per-attempt and overall deadline messages, backoff
/// schedule and jitter stream (equal seeds replay equal schedules). The
/// difference is mechanical — between attempts the continuation parks on
/// `wheel` instead of a thread sleeping through the backoff, so a pool
/// worker is never held hostage by a struggling trust service. `done`
/// fires exactly once, on whatever thread finished the last attempt (or
/// the wheel thread when the verdict was reached during a backoff wait).
/// With a null wheel the backoff degrades to a blocking sleep on the
/// completing thread, which keeps the call usable in fully-sync setups.
void RetryAsync(const RetryPolicy& policy, TimerWheel* wheel,
                Retryer::Clock clock, uint64_t jitter_seed,
                RetryAsyncAttempt attempt, std::function<void(Status)> done);

/// A minimal circuit breaker (closed -> open -> half-open): after
/// `failure_threshold` consecutive failures the circuit opens and calls are
/// rejected outright until `open_duration_us` has passed; then one probe is
/// let through — success closes the circuit, failure re-opens it. Callers
/// supply timestamps so tests use a fake clock.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  struct Options {
    int failure_threshold = 5;
    int64_t open_duration_us = 5000000;
  };

  CircuitBreaker() : CircuitBreaker(Options()) {}
  explicit CircuitBreaker(Options options) : options_(options) {}

  /// Whether a call may proceed at time `now_us`. In the half-open state
  /// exactly one probe is admitted per open period.
  bool Allow(int64_t now_us);
  void RecordSuccess();
  void RecordFailure(int64_t now_us);

  State state(int64_t now_us) const;
  int consecutive_failures() const { return failures_; }

 private:
  Options options_;
  int failures_ = 0;
  bool open_ = false;
  bool probe_in_flight_ = false;
  int64_t opened_at_us_ = 0;
};

const char* CircuitStateName(CircuitBreaker::State state);

}  // namespace discsec

#endif  // DISCSEC_COMMON_RETRY_H_
