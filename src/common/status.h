#ifndef DISCSEC_COMMON_STATUS_H_
#define DISCSEC_COMMON_STATUS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

namespace discsec {

/// A Status encapsulates the result of an operation. It may indicate success,
/// or it may indicate an error with an associated error message.
///
/// No exceptions cross the public API of this library; every fallible
/// operation returns a Status (or a Result<T>, see result.h).
class Status {
 public:
  /// Error categories used throughout the library.
  enum class Code {
    kOk = 0,
    kInvalidArgument,     ///< caller passed something malformed
    kNotFound,            ///< a referenced entity does not exist
    kCorruption,          ///< stored/transmitted data failed structural checks
    kParseError,          ///< XML or script text could not be parsed
    kCryptoError,         ///< a cryptographic primitive failed
    kVerificationFailed,  ///< a signature / MAC / certificate check failed
    kPermissionDenied,    ///< access-control policy denied the request
    kUnsupported,         ///< algorithm or feature not implemented
    kIOError,             ///< filesystem or channel failure
    kResourceExhausted,   ///< embedded-profile budget exceeded
    kUnavailable,         ///< transient failure; a retry may succeed
    kDeadlineExceeded,    ///< operation (or its retry budget) timed out
  };

  /// Creates an OK (success) status.
  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(Code::kParseError, std::move(msg));
  }
  static Status CryptoError(std::string msg) {
    return Status(Code::kCryptoError, std::move(msg));
  }
  static Status VerificationFailed(std::string msg) {
    return Status(Code::kVerificationFailed, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(Code::kPermissionDenied, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(Code::kUnsupported, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(Code::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(Code::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(Code::kDeadlineExceeded, std::move(msg));
  }

  /// Builds a status from a code chosen at runtime (fault injection, wire
  /// decoding). Make(Code::kOk, ...) returns OK and drops the message.
  static Status Make(Code code, std::string msg) {
    if (code == Code::kOk) return Status();
    return Status(code, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsParseError() const { return code_ == Code::kParseError; }
  bool IsCryptoError() const { return code_ == Code::kCryptoError; }
  bool IsVerificationFailed() const {
    return code_ == Code::kVerificationFailed;
  }
  bool IsPermissionDenied() const { return code_ == Code::kPermissionDenied; }
  bool IsUnsupported() const { return code_ == Code::kUnsupported; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsResourceExhausted() const {
    return code_ == Code::kResourceExhausted;
  }
  bool IsUnavailable() const { return code_ == Code::kUnavailable; }
  bool IsDeadlineExceeded() const {
    return code_ == Code::kDeadlineExceeded;
  }

  /// gRPC-style retryability taxonomy: only kUnavailable marks a transient
  /// condition a retry may cure. Deadline expiry is terminal (the budget is
  /// spent), and every logic/corruption/security error is deterministic.
  bool IsRetryable() const { return code_ == Code::kUnavailable; }

  /// Human-readable rendering, e.g. "VerificationFailed: digest mismatch".
  std::string ToString() const;

  /// Returns a copy of this status with extra context prepended to the
  /// message, preserving the code (and any retry-after hint). OK statuses
  /// are returned unchanged.
  /// Chains: st.WithContext("a").WithContext("b") reads "b: a: <msg>".
  Status WithContext(std::string_view context) const;

  /// Server-supplied backoff hint: how long the caller should wait before
  /// retrying, microseconds. 0 means "no hint" (the normal case); an
  /// overloaded responder sets it on the kUnavailable it sheds with, and
  /// common::Retryer then uses it in place of its own exponential step (its
  /// jitter still applies, so a shed fleet re-spreads instead of retrying
  /// in lockstep). Carried by value through WithContext/Result plumbing.
  int64_t retry_after_us() const { return retry_after_us_; }

  /// Returns a copy of this status carrying `retry_after_us` as its backoff
  /// hint. OK statuses are returned unchanged (a success carries no hint).
  Status WithRetryAfter(int64_t retry_after_us) const {
    if (ok()) return *this;
    Status copy = *this;
    copy.retry_after_us_ = retry_after_us < 0 ? 0 : retry_after_us;
    return copy;
  }

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
  int64_t retry_after_us_ = 0;
};

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define DISCSEC_RETURN_IF_ERROR(expr)              \
  do {                                             \
    ::discsec::Status _st = (expr);                \
    if (!_st.ok()) return _st;                     \
  } while (0)

}  // namespace discsec

#endif  // DISCSEC_COMMON_STATUS_H_
