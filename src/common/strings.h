#ifndef DISCSEC_COMMON_STRINGS_H_
#define DISCSEC_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace discsec {

/// Splits `s` at every occurrence of `sep`; empty fields are preserved.
std::vector<std::string> SplitString(std::string_view s, char sep);

/// Removes ASCII whitespace (space, tab, CR, LF) from both ends.
std::string_view TrimWhitespace(std::string_view s);

/// True when `s` begins with `prefix` / ends with `suffix`.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Joins `parts` with `sep` between consecutive elements.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// printf-style formatting into a std::string.
std::string StringFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace discsec

#endif  // DISCSEC_COMMON_STRINGS_H_
