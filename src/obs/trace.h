#ifndef DISCSEC_OBS_TRACE_H_
#define DISCSEC_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace discsec {
namespace obs {

/// One recorded span. Spans form a tree via parent_id; id 0 means "no span"
/// (roots have parent_id 0). Timestamps are microseconds on a steady clock
/// whose epoch is the Tracer's construction.
struct SpanRecord {
  uint64_t id = 0;
  uint64_t parent_id = 0;
  std::string name;
  uint64_t start_us = 0;
  uint64_t duration_us = 0;
  uint64_t thread_id = 0;  ///< small dense id assigned per OS thread
  std::vector<std::pair<std::string, std::string>> attributes;
};

class Tracer;

/// Identifies a live span so children started on *other* threads (e.g.
/// ThreadPool workers) can attach to the right parent. Copyable and cheap;
/// a default-constructed context means "no parent".
struct SpanContext {
  Tracer* tracer = nullptr;
  uint64_t span_id = 0;
};

/// Collects spans from any number of threads. The tracer itself is always
/// "on" — the disabled fast path is expressed by passing a null Tracer* to
/// ScopedSpan, which then does no work and allocates nothing.
///
/// Span begin/end cost: one steady_clock read each plus, at end, a short
/// mutex-guarded append to the record vector. Attributes are buffered in the
/// ScopedSpan (no tracer lock) until the span ends.
class Tracer {
 public:
  Tracer();

  /// Snapshot of every finished span, in completion order.
  std::vector<SpanRecord> Snapshot() const;

  /// Number of finished spans so far.
  size_t size() const;

  /// Discards all recorded spans (epoch is preserved).
  void Clear();

  /// Serializes finished spans in Chrome trace-event format — a JSON object
  /// with a "traceEvents" array of complete ("ph":"X") events. Load the
  /// output in chrome://tracing or https://ui.perfetto.dev.
  std::string ChromeTraceJson() const;

  /// Plain-text rendering: one line per span, indented by tree depth,
  /// ordered by start time. For terminals and test diagnostics.
  std::string TextReport() const;

 private:
  friend class ScopedSpan;

  uint64_t NowMicros() const;
  uint64_t NextSpanId();
  void Record(SpanRecord&& span);
  static uint64_t CurrentThreadId();

  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;
  std::atomic<uint64_t> next_id_{1};
};

/// RAII span handle. Constructing with a null tracer is the disabled fast
/// path: every method returns immediately and nothing is allocated (name and
/// attribute strings are only copied when a tracer is attached).
///
/// Parenting: by default a new span becomes a child of the innermost live
/// ScopedSpan *on the same thread* (tracked thread-locally). To nest across
/// threads, capture `context()` before handing work to another thread and
/// pass it to the child's constructor there.
class ScopedSpan {
 public:
  /// Child of the current thread's innermost span (or a root).
  ScopedSpan(Tracer* tracer, std::string_view name);

  /// Child of an explicit parent — used across ThreadPool workers. The
  /// parent context's tracer is used; a default context makes a root span.
  ScopedSpan(const SpanContext& parent, std::string_view name);

  ~ScopedSpan() { End(); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attaches a key-value attribute. No-op when disabled.
  void SetAttr(std::string_view key, std::string_view value);
  void SetAttr(std::string_view key, uint64_t value);

  /// Context for parenting child spans on other threads.
  SpanContext context() const { return {tracer_, record_.id}; }

  bool enabled() const { return tracer_ != nullptr; }

  /// Ends the span now (idempotent; the destructor calls this).
  void End();

 private:
  void Begin(Tracer* tracer, uint64_t parent_id, std::string_view name);

  Tracer* tracer_ = nullptr;
  SpanRecord record_;
  SpanContext saved_current_;  ///< restored on End (LIFO per thread)
  bool installed_ = false;     ///< did we push onto the thread-local stack?
};

}  // namespace obs
}  // namespace discsec

#endif  // DISCSEC_OBS_TRACE_H_
