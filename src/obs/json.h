#ifndef DISCSEC_OBS_JSON_H_
#define DISCSEC_OBS_JSON_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace discsec {
namespace obs {
namespace json {

/// Appends `s` to `out` as a JSON string literal (quotes included),
/// escaping per RFC 8259. Used by the trace and metrics exporters so span
/// names and attribute values survive arbitrary content.
void AppendString(std::string* out, std::string_view s);

/// A parsed JSON value — just enough JSON to round-trip the exporters'
/// output in tests and tooling. Numbers are kept as doubles (the exporters
/// only emit integers that fit a double exactly).
struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool bool_value = false;
  double number_value = 0;
  std::string string_value;
  std::vector<Value> items;                            ///< kArray
  std::vector<std::pair<std::string, Value>> members;  ///< kObject, in order

  /// Object member lookup; null when absent or not an object.
  const Value* Find(std::string_view key) const;

  bool IsObject() const { return type == Type::kObject; }
  bool IsArray() const { return type == Type::kArray; }
  bool IsString() const { return type == Type::kString; }
  bool IsNumber() const { return type == Type::kNumber; }
};

/// Parses a complete JSON document (trailing whitespace allowed, nothing
/// else after the value). Strict on structure, depth-limited against
/// nesting bombs; \uXXXX escapes outside the BMP surrogate mechanics are
/// decoded to UTF-8.
Result<Value> Parse(std::string_view text);

}  // namespace json
}  // namespace obs
}  // namespace discsec

#endif  // DISCSEC_OBS_JSON_H_
