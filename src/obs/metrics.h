#ifndef DISCSEC_OBS_METRICS_H_
#define DISCSEC_OBS_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace discsec {
namespace obs {

/// Monotonic counter. Add() is a relaxed atomic increment — safe from any
/// thread, no ordering guarantees needed (metrics are advisory).
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  /// Sets to `value` if it exceeds the current reading. Used when absorbing
  /// component stats that are themselves cumulative (idempotent re-absorbs).
  void MaxTo(uint64_t value) {
    uint64_t cur = value_.load(std::memory_order_relaxed);
    while (cur < value &&
           !value_.compare_exchange_weak(cur, value,
                                         std::memory_order_relaxed)) {
    }
  }
  /// Overwrites the reading. For gauge-like values (cache entry counts,
  /// breaker state) that can move both ways.
  void Set(uint64_t value) { value_.store(value, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Latency histogram with exponential (power-of-2) microsecond buckets:
/// bucket i counts samples in [2^i, 2^(i+1)) µs, bucket 0 is [0, 2) µs.
/// 32 buckets cover up to ~71 minutes. All atomics, all relaxed.
class Histogram {
 public:
  static constexpr int kBuckets = 32;

  void Observe(uint64_t micros);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum_micros() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t max_micros() const { return max_.load(std::memory_order_relaxed); }
  uint64_t bucket(int i) const {
    return buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
  }

  /// Approximate quantile (0..1) from bucket boundaries; returns the upper
  /// edge of the bucket containing the q-th sample, 0 when empty.
  uint64_t ApproxQuantileMicros(double q) const;

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
  std::atomic<uint64_t> buckets_[kBuckets] = {};
};

/// Point-in-time copy of one histogram, for snapshots.
struct HistogramSnapshot {
  std::string name;
  uint64_t count = 0;
  uint64_t sum_micros = 0;
  uint64_t max_micros = 0;
  uint64_t p50_micros = 0;
  uint64_t p99_micros = 0;
  std::vector<uint64_t> buckets;  ///< kBuckets entries
};

/// Point-in-time copy of the whole registry.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;  ///< sorted by name
  std::vector<HistogramSnapshot> histograms;               ///< sorted by name

  /// Counter value by exact name; 0 when absent.
  uint64_t counter(std::string_view name) const;
  /// Histogram by exact name; nullptr when absent.
  const HistogramSnapshot* histogram(std::string_view name) const;

  /// Pretty-printed JSON: {"counters":{...},"histograms":{name:{count,...}}}.
  std::string ToJson() const;
};

/// Named counters and histograms. Lookup interns the name under a mutex and
/// returns a stable pointer; instruments themselves are lock-free, so hot
/// paths should cache the pointer (or accept one lock per lookup — still
/// cheap next to crypto work). Metric names use dotted lowercase paths,
/// e.g. "digest_cache.hits", "player.track.verify_us".
class MetricsRegistry {
 public:
  Counter* GetCounter(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  MetricsSnapshot Snapshot() const;

 private:
  mutable std::mutex mu_;
  // node-based map: stable element addresses across inserts
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// RAII latency sample: observes elapsed wall time into `hist` (when
/// non-null) at destruction. Null histogram = disabled, no clock reads.
class ScopedLatency {
 public:
  explicit ScopedLatency(Histogram* hist) : hist_(hist) {
    if (hist_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedLatency() {
    if (hist_ == nullptr) return;
    auto elapsed = std::chrono::steady_clock::now() - start_;
    hist_->Observe(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
            .count()));
  }
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace obs
}  // namespace discsec

#endif  // DISCSEC_OBS_METRICS_H_
