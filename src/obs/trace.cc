#include "obs/trace.h"

#include <algorithm>
#include <unordered_map>

#include "obs/json.h"

namespace discsec {
namespace obs {

namespace {

// The innermost live span on this thread; children started without an
// explicit parent attach here. Plain pointers/ints only — no thread-local
// destructor ordering hazards.
thread_local SpanContext t_current_span;

uint64_t NextThreadOrdinal() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

uint64_t Tracer::NowMicros() const {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                   std::chrono::steady_clock::now() - epoch_)
                                   .count());
}

uint64_t Tracer::NextSpanId() {
  return next_id_.fetch_add(1, std::memory_order_relaxed);
}

uint64_t Tracer::CurrentThreadId() {
  thread_local uint64_t id = NextThreadOrdinal();
  return id;
}

void Tracer::Record(SpanRecord&& span) {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(std::move(span));
}

std::vector<SpanRecord> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
}

std::string Tracer::ChromeTraceJson() const {
  std::vector<SpanRecord> spans = Snapshot();
  std::string out;
  out.reserve(128 + spans.size() * 160);
  out += "{\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& s : spans) {
    if (!first) out += ",";
    first = false;
    out += "{\"ph\":\"X\",\"name\":";
    json::AppendString(&out, s.name);
    out += ",\"cat\":\"discsec\",\"pid\":1,\"tid\":";
    out += std::to_string(s.thread_id);
    out += ",\"ts\":";
    out += std::to_string(s.start_us);
    out += ",\"dur\":";
    out += std::to_string(s.duration_us);
    out += ",\"args\":{";
    out += "\"span_id\":" + std::to_string(s.id);
    out += ",\"parent_id\":" + std::to_string(s.parent_id);
    for (const auto& [key, value] : s.attributes) {
      out += ",";
      json::AppendString(&out, key);
      out += ":";
      json::AppendString(&out, value);
    }
    out += "}}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

std::string Tracer::TextReport() const {
  std::vector<SpanRecord> spans = Snapshot();
  // Depth = distance to a root through parent links.
  std::unordered_map<uint64_t, const SpanRecord*> by_id;
  by_id.reserve(spans.size());
  for (const SpanRecord& s : spans) by_id[s.id] = &s;

  std::vector<const SpanRecord*> ordered;
  ordered.reserve(spans.size());
  for (const SpanRecord& s : spans) ordered.push_back(&s);
  std::sort(ordered.begin(), ordered.end(),
            [](const SpanRecord* a, const SpanRecord* b) {
              if (a->start_us != b->start_us) return a->start_us < b->start_us;
              return a->id < b->id;
            });

  std::string out;
  for (const SpanRecord* s : ordered) {
    int depth = 0;
    uint64_t parent = s->parent_id;
    while (parent != 0 && depth < 64) {
      auto it = by_id.find(parent);
      if (it == by_id.end()) break;
      ++depth;
      parent = it->second->parent_id;
    }
    out.append(static_cast<size_t>(depth) * 2, ' ');
    out += s->name;
    out += " ";
    out += std::to_string(s->duration_us);
    out += "us";
    out += " [tid=" + std::to_string(s->thread_id) + "]";
    for (const auto& [key, value] : s->attributes) {
      out += " " + key + "=" + value;
    }
    out += "\n";
  }
  return out;
}

void ScopedSpan::Begin(Tracer* tracer, uint64_t parent_id,
                       std::string_view name) {
  tracer_ = tracer;
  if (tracer_ == nullptr) return;  // disabled: record_ stays empty, no alloc
  record_.id = tracer_->NextSpanId();
  record_.parent_id = parent_id;
  record_.name.assign(name.data(), name.size());
  record_.thread_id = Tracer::CurrentThreadId();
  record_.start_us = tracer_->NowMicros();
  saved_current_ = t_current_span;
  t_current_span = {tracer_, record_.id};
  installed_ = true;
}

ScopedSpan::ScopedSpan(Tracer* tracer, std::string_view name) {
  uint64_t parent = 0;
  if (tracer != nullptr && t_current_span.tracer == tracer) {
    parent = t_current_span.span_id;
  }
  Begin(tracer, parent, name);
}

ScopedSpan::ScopedSpan(const SpanContext& parent, std::string_view name) {
  Begin(parent.tracer, parent.span_id, name);
}

void ScopedSpan::SetAttr(std::string_view key, std::string_view value) {
  if (tracer_ == nullptr) return;
  record_.attributes.emplace_back(std::string(key), std::string(value));
}

void ScopedSpan::SetAttr(std::string_view key, uint64_t value) {
  if (tracer_ == nullptr) return;
  record_.attributes.emplace_back(std::string(key), std::to_string(value));
}

void ScopedSpan::End() {
  if (tracer_ == nullptr) return;
  record_.duration_us = tracer_->NowMicros() - record_.start_us;
  if (installed_) {
    t_current_span = saved_current_;
    installed_ = false;
  }
  Tracer* tracer = tracer_;
  tracer_ = nullptr;  // make End idempotent
  tracer->Record(std::move(record_));
}

}  // namespace obs
}  // namespace discsec
