#ifndef DISCSEC_OBS_BRIDGE_H_
#define DISCSEC_OBS_BRIDGE_H_

/// Bridges between component-local stats structs (DigestCacheStats,
/// LocateCacheStats, RetryingTransportStats, FaultInjector counters) and a
/// MetricsRegistry. Header-only on purpose: discsec_obs links only
/// discsec_common, so it cannot depend on crypto/xkms — instead the *caller*
/// (player, tool, tests), which already links those libraries, instantiates
/// these inline absorbers.
///
/// Component stats are cumulative, so absorption uses Counter::MaxTo and is
/// idempotent: re-absorbing the same snapshot leaves the registry unchanged,
/// absorbing a newer snapshot advances it.

#include <string>

#include "common/fault.h"
#include "common/retry.h"
#include "crypto/digest_cache.h"
#include "obs/metrics.h"
#include "xml/arena.h"
#include "xkms/locate_cache.h"
#include "xkms/retrying_transport.h"
#include "xkms/xkmsd.h"
#include "xrml/decision_cache.h"

namespace discsec {
namespace obs {

inline void AbsorbDigestCacheStats(const crypto::DigestCacheStats& stats,
                                   MetricsRegistry* metrics) {
  if (metrics == nullptr) return;
  metrics->GetCounter("digest_cache.hits")->MaxTo(stats.hits);
  metrics->GetCounter("digest_cache.misses")->MaxTo(stats.misses);
  metrics->GetCounter("digest_cache.evictions")->MaxTo(stats.evictions);
  metrics->GetCounter("digest_cache.bypasses")->MaxTo(stats.bypasses);
  metrics->GetCounter("digest_cache.entries")->Set(stats.entries);
}

inline void AbsorbLocateCacheStats(const xkms::LocateCacheStats& stats,
                                   MetricsRegistry* metrics) {
  if (metrics == nullptr) return;
  metrics->GetCounter("locate_cache.hits")->MaxTo(stats.hits);
  metrics->GetCounter("locate_cache.misses")->MaxTo(stats.misses);
  metrics->GetCounter("locate_cache.expirations")->MaxTo(stats.expirations);
  metrics->GetCounter("locate_cache.coalesced")->MaxTo(stats.coalesced);
  metrics->GetCounter("locate_cache.transport_calls")
      ->MaxTo(stats.transport_calls);
}

inline void AbsorbDecisionCacheStats(const xrml::DecisionCacheStats& stats,
                                     MetricsRegistry* metrics) {
  if (metrics == nullptr) return;
  metrics->GetCounter("decision_cache.hits")->MaxTo(stats.hits);
  metrics->GetCounter("decision_cache.misses")->MaxTo(stats.misses);
  metrics->GetCounter("decision_cache.stale_drops")->MaxTo(stats.stale_drops);
  metrics->GetCounter("decision_cache.evictions")->MaxTo(stats.evictions);
  metrics->GetCounter("decision_cache.invalidations")
      ->MaxTo(stats.invalidations);
  metrics->GetCounter("decision_cache.entries")->Set(stats.entries);
}

inline void AbsorbRetryingTransportStats(
    const xkms::RetryingTransportStats& stats, MetricsRegistry* metrics) {
  if (metrics == nullptr) return;
  metrics->GetCounter("xkms_transport.calls")
      ->MaxTo(stats.calls.load(std::memory_order_relaxed));
  metrics->GetCounter("xkms_transport.attempts")
      ->MaxTo(stats.attempts.load(std::memory_order_relaxed));
  metrics->GetCounter("xkms_transport.retries")
      ->MaxTo(stats.retries.load(std::memory_order_relaxed));
  metrics->GetCounter("xkms_transport.breaker_rejections")
      ->MaxTo(stats.breaker_rejections.load(std::memory_order_relaxed));
  metrics->GetCounter("xkms_transport.breaker_state")
      ->Set(static_cast<uint64_t>(
          stats.breaker_state.load(std::memory_order_relaxed)));
}

inline void AbsorbXkmsdStats(const xkms::XkmsdStats& stats,
                             MetricsRegistry* metrics) {
  if (metrics == nullptr) return;
  metrics->GetCounter("xkmsd.admitted")->MaxTo(stats.admitted);
  metrics->GetCounter("xkmsd.served")->MaxTo(stats.served);
  metrics->GetCounter("xkmsd.shed.queue_full")->MaxTo(stats.shed_queue_full);
  metrics->GetCounter("xkmsd.shed.deadline")->MaxTo(stats.shed_deadline);
  metrics->GetCounter("xkmsd.shed.oversized")->MaxTo(stats.shed_oversized);
  metrics->GetCounter("xkmsd.shed.malformed")->MaxTo(stats.shed_malformed);
  metrics->GetCounter("xkmsd.shed.fault")->MaxTo(stats.shed_fault);
  metrics->GetCounter("xkmsd.coalesced")->MaxTo(stats.coalesced_locates);
  metrics->GetCounter("xkmsd.store_lookups")->MaxTo(stats.store_lookups);
  metrics->GetCounter("xkmsd.degraded")->MaxTo(stats.degraded_locates);
  metrics->GetCounter("xkmsd.store_errors")->MaxTo(stats.store_errors);
  metrics->GetCounter("xkmsd.queue_depth")->Set(stats.queue_depth);
}

/// Process-wide xml::Arena counters (xml::GlobalArenaStats()): how much
/// node storage the bump allocator served and in how many block
/// reservations — the observable face of the DOM-path allocation drop.
inline void AbsorbArenaStats(const xml::ArenaStats& stats,
                             MetricsRegistry* metrics) {
  if (metrics == nullptr) return;
  metrics->GetCounter("xml_arena.bytes_reserved")->MaxTo(stats.bytes_reserved);
  metrics->GetCounter("xml_arena.bytes_used")->MaxTo(stats.bytes_used);
  metrics->GetCounter("xml_arena.allocations")->MaxTo(stats.allocations);
  metrics->GetCounter("xml_arena.resets")->MaxTo(stats.resets);
}

inline void AbsorbFaultInjectorStats(const fault::FaultInjector& injector,
                                     MetricsRegistry* metrics) {
  if (metrics == nullptr) return;
  for (std::string_view point : fault::kAllPoints) {
    std::string base = "fault.";
    base.append(point);
    metrics->GetCounter(base + ".hits")->MaxTo(injector.hits(point));
    metrics->GetCounter(base + ".fires")->MaxTo(injector.fires(point));
  }
  metrics->GetCounter("fault.total_fires")->MaxTo(injector.total_fires());
}

}  // namespace obs
}  // namespace discsec

#endif  // DISCSEC_OBS_BRIDGE_H_
