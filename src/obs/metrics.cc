#include "obs/metrics.h"

#include <algorithm>

#include "obs/json.h"

namespace discsec {
namespace obs {

namespace {

int BucketIndex(uint64_t micros) {
  int idx = 0;
  while (micros >= 2 && idx < Histogram::kBuckets - 1) {
    micros >>= 1;
    ++idx;
  }
  return idx;
}

uint64_t BucketUpperEdge(int idx) {
  return uint64_t{1} << (idx + 1);
}

}  // namespace

void Histogram::Observe(uint64_t micros) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(micros, std::memory_order_relaxed);
  uint64_t cur = max_.load(std::memory_order_relaxed);
  while (cur < micros &&
         !max_.compare_exchange_weak(cur, micros, std::memory_order_relaxed)) {
  }
  buckets_[static_cast<size_t>(BucketIndex(micros))].fetch_add(
      1, std::memory_order_relaxed);
}

uint64_t Histogram::ApproxQuantileMicros(double q) const {
  uint64_t total = count();
  if (total == 0) return 0;
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total));
  if (rank >= total) rank = total - 1;
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += bucket(i);
    if (seen > rank) return BucketUpperEdge(i);
  }
  return max_micros();
}

uint64_t MetricsSnapshot::counter(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

const HistogramSnapshot* MetricsSnapshot::histogram(
    std::string_view name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out;
  out += "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    json::AppendString(&out, name);
    out += ": " + std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& h : histograms) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    json::AppendString(&out, h.name);
    out += ": {\"count\": " + std::to_string(h.count);
    out += ", \"sum_us\": " + std::to_string(h.sum_micros);
    out += ", \"max_us\": " + std::to_string(h.max_micros);
    out += ", \"p50_us\": " + std::to_string(h.p50_micros);
    out += ", \"p99_us\": " + std::to_string(h.p99_micros);
    out += ", \"buckets\": [";
    // Trailing all-zero buckets are elided to keep dumps readable.
    int last = Histogram::kBuckets - 1;
    while (last > 0 && h.buckets[static_cast<size_t>(last)] == 0) --last;
    for (int i = 0; i <= last; ++i) {
      if (i > 0) out += ",";
      out += std::to_string(h.buckets[static_cast<size_t>(i)]);
    }
    out += "]}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    HistogramSnapshot h;
    h.name = name;
    h.count = hist->count();
    h.sum_micros = hist->sum_micros();
    h.max_micros = hist->max_micros();
    h.p50_micros = hist->ApproxQuantileMicros(0.50);
    h.p99_micros = hist->ApproxQuantileMicros(0.99);
    h.buckets.resize(Histogram::kBuckets);
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      h.buckets[static_cast<size_t>(i)] = hist->bucket(i);
    }
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

}  // namespace obs
}  // namespace discsec
