#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace discsec {
namespace obs {
namespace json {

namespace {

constexpr int kMaxDepth = 64;

void AppendUtf8(std::string* out, uint32_t cp) {
  if (cp < 0x80) {
    out->push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Value> ParseDocument() {
    DISCSEC_ASSIGN_OR_RETURN(Value v, ParseValue(0));
    SkipWs();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("json: trailing content at offset " +
                                     std::to_string(pos_));
    }
    return v;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (!Consume(c)) {
      return Status::InvalidArgument(std::string("json: expected '") + c +
                                     "' at offset " + std::to_string(pos_));
    }
    return Status::OK();
  }

  bool ConsumeKeyword(std::string_view kw) {
    if (text_.substr(pos_, kw.size()) == kw) {
      pos_ += kw.size();
      return true;
    }
    return false;
  }

  Result<Value> ParseValue(int depth) {
    if (depth > kMaxDepth) {
      return Status::InvalidArgument("json: nesting too deep");
    }
    SkipWs();
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("json: unexpected end of input");
    }
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        Value v;
        v.type = Value::Type::kString;
        DISCSEC_ASSIGN_OR_RETURN(v.string_value, ParseString());
        return v;
      }
      case 't':
        if (ConsumeKeyword("true")) {
          Value v;
          v.type = Value::Type::kBool;
          v.bool_value = true;
          return v;
        }
        break;
      case 'f':
        if (ConsumeKeyword("false")) {
          Value v;
          v.type = Value::Type::kBool;
          v.bool_value = false;
          return v;
        }
        break;
      case 'n':
        if (ConsumeKeyword("null")) {
          return Value{};
        }
        break;
      default:
        if (c == '-' || (c >= '0' && c <= '9')) {
          return ParseNumber();
        }
        break;
    }
    return Status::InvalidArgument("json: unexpected character at offset " +
                                   std::to_string(pos_));
  }

  Result<Value> ParseObject(int depth) {
    DISCSEC_RETURN_IF_ERROR(Expect('{'));
    Value v;
    v.type = Value::Type::kObject;
    SkipWs();
    if (Consume('}')) return v;
    while (true) {
      SkipWs();
      DISCSEC_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWs();
      DISCSEC_RETURN_IF_ERROR(Expect(':'));
      DISCSEC_ASSIGN_OR_RETURN(Value member, ParseValue(depth + 1));
      v.members.emplace_back(std::move(key), std::move(member));
      SkipWs();
      if (Consume(',')) continue;
      DISCSEC_RETURN_IF_ERROR(Expect('}'));
      return v;
    }
  }

  Result<Value> ParseArray(int depth) {
    DISCSEC_RETURN_IF_ERROR(Expect('['));
    Value v;
    v.type = Value::Type::kArray;
    SkipWs();
    if (Consume(']')) return v;
    while (true) {
      DISCSEC_ASSIGN_OR_RETURN(Value item, ParseValue(depth + 1));
      v.items.push_back(std::move(item));
      SkipWs();
      if (Consume(',')) continue;
      DISCSEC_RETURN_IF_ERROR(Expect(']'));
      return v;
    }
  }

  Result<uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) {
      return Status::InvalidArgument("json: truncated \\u escape");
    }
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_ + static_cast<size_t>(i)];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Status::InvalidArgument("json: bad hex digit in \\u escape");
      }
    }
    pos_ += 4;
    return value;
  }

  Result<std::string> ParseString() {
    DISCSEC_RETURN_IF_ERROR(Expect('"'));
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        return Status::InvalidArgument("json: unterminated string");
      }
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          return Status::InvalidArgument("json: truncated escape");
        }
        char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            DISCSEC_ASSIGN_OR_RETURN(uint32_t cp, ParseHex4());
            if (cp >= 0xD800 && cp <= 0xDBFF) {
              // High surrogate: must be followed by \uDC00-\uDFFF.
              if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                  text_[pos_ + 1] != 'u') {
                return Status::InvalidArgument("json: lone high surrogate");
              }
              pos_ += 2;
              DISCSEC_ASSIGN_OR_RETURN(uint32_t low, ParseHex4());
              if (low < 0xDC00 || low > 0xDFFF) {
                return Status::InvalidArgument("json: bad low surrogate");
              }
              cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
            } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
              return Status::InvalidArgument("json: lone low surrogate");
            }
            AppendUtf8(&out, cp);
            break;
          }
          default:
            return Status::InvalidArgument("json: bad escape character");
        }
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Status::InvalidArgument("json: raw control character in string");
      }
      out.push_back(c);
    }
  }

  Result<Value> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {}
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    if (Consume('.')) {
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    std::string token(text_.substr(start, pos_ - start));
    if (token.empty() || token == "-") {
      return Status::InvalidArgument("json: malformed number");
    }
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(value)) {
      return Status::InvalidArgument("json: malformed number '" + token + "'");
    }
    Value v;
    v.type = Value::Type::kNumber;
    v.number_value = value;
    return v;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

void AppendString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char ch : s) {
    unsigned char c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\b': out->append("\\b"); break;
      case '\f': out->append("\\f"); break;
      case '\n': out->append("\\n"); break;
      case '\r': out->append("\\r"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(ch);
        }
        break;
    }
  }
  out->push_back('"');
}

const Value* Value::Find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

Result<Value> Parse(std::string_view text) {
  Parser parser(text);
  return parser.ParseDocument();
}

}  // namespace json
}  // namespace obs
}  // namespace discsec
