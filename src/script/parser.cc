#include "script/parser.h"

#include "script/lexer.h"
#include "script/value.h"

namespace discsec {
namespace script {

namespace {

class ParserImpl {
 public:
  ParserImpl(std::vector<Token> tokens, Program* program)
      : tokens_(std::move(tokens)), program_(program) {}

  Result<NodePtr> Run() {
    auto root = std::make_unique<Node>(NodeType::kProgram);
    while (!AtEnd()) {
      DISCSEC_ASSIGN_OR_RETURN(NodePtr stmt, ParseStatement());
      root->children.push_back(std::move(stmt));
    }
    return root;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool AtEnd() const { return Peek().type == TokenType::kEnd; }

  bool CheckPunct(std::string_view p) const {
    return Peek().type == TokenType::kPunctuator && Peek().text == p;
  }
  bool CheckKeyword(std::string_view k) const {
    return Peek().type == TokenType::kKeyword && Peek().text == k;
  }
  bool MatchPunct(std::string_view p) {
    if (CheckPunct(p)) {
      Advance();
      return true;
    }
    return false;
  }
  bool MatchKeyword(std::string_view k) {
    if (CheckKeyword(k)) {
      Advance();
      return true;
    }
    return false;
  }
  Status Error(const std::string& what) const {
    return Status::ParseError(what + " at line " +
                              std::to_string(Peek().line));
  }
  Status ExpectPunct(std::string_view p) {
    if (!MatchPunct(p)) {
      return Error("expected '" + std::string(p) + "', got '" + Peek().text +
                   "'");
    }
    return Status::OK();
  }

  NodePtr MakeNode(NodeType type) {
    auto node = std::make_unique<Node>(type);
    node->line = Peek().line;
    return node;
  }

  // ---- statements ----

  Result<NodePtr> ParseStatement() {
    if (CheckPunct("{")) return ParseBlock();
    if (CheckKeyword("var")) return ParseVarStatement();
    if (CheckKeyword("function")) return ParseFunctionDecl();
    if (CheckKeyword("if")) return ParseIf();
    if (CheckKeyword("switch")) return ParseSwitch();
    if (CheckKeyword("while")) return ParseWhile();
    if (CheckKeyword("do")) return ParseDoWhile();
    if (CheckKeyword("for")) return ParseFor();
    if (CheckKeyword("return")) {
      auto node = MakeNode(NodeType::kReturn);
      Advance();
      if (!CheckPunct(";") && !CheckPunct("}") && !AtEnd()) {
        DISCSEC_ASSIGN_OR_RETURN(NodePtr value, ParseExpression());
        node->children.push_back(std::move(value));
      }
      MatchPunct(";");
      return node;
    }
    if (MatchKeyword("break")) {
      MatchPunct(";");
      return MakeNode(NodeType::kBreak);
    }
    if (MatchKeyword("continue")) {
      MatchPunct(";");
      return MakeNode(NodeType::kContinue);
    }
    if (MatchPunct(";")) {
      // Empty statement.
      auto node = MakeNode(NodeType::kBlock);
      return node;
    }
    auto node = MakeNode(NodeType::kExprStatement);
    DISCSEC_ASSIGN_OR_RETURN(NodePtr expr, ParseExpression());
    node->children.push_back(std::move(expr));
    MatchPunct(";");
    return node;
  }

  Result<NodePtr> ParseBlock() {
    auto node = MakeNode(NodeType::kBlock);
    DISCSEC_RETURN_IF_ERROR(ExpectPunct("{"));
    while (!CheckPunct("}") && !AtEnd()) {
      DISCSEC_ASSIGN_OR_RETURN(NodePtr stmt, ParseStatement());
      node->children.push_back(std::move(stmt));
    }
    DISCSEC_RETURN_IF_ERROR(ExpectPunct("}"));
    return node;
  }

  Result<NodePtr> ParseVarStatement() {
    Advance();  // var
    // Support comma lists by wrapping in a block of declarations.
    auto block = MakeNode(NodeType::kBlock);
    for (;;) {
      DISCSEC_ASSIGN_OR_RETURN(NodePtr decl, ParseSingleVarDecl());
      block->children.push_back(std::move(decl));
      if (!MatchPunct(",")) break;
    }
    MatchPunct(";");
    if (block->children.size() == 1) {
      return std::move(block->children[0]);
    }
    return block;
  }

  Result<NodePtr> ParseSingleVarDecl() {
    if (Peek().type != TokenType::kIdentifier) {
      return Error("expected variable name");
    }
    auto node = MakeNode(NodeType::kVarDecl);
    node->string_value = Advance().text;
    if (MatchPunct("=")) {
      DISCSEC_ASSIGN_OR_RETURN(NodePtr init, ParseAssignment());
      node->children.push_back(std::move(init));
    }
    return node;
  }

  Result<NodePtr> ParseFunctionDecl() {
    Advance();  // function
    if (Peek().type != TokenType::kIdentifier) {
      return Error("expected function name");
    }
    auto node = MakeNode(NodeType::kFunctionDecl);
    node->string_value = Advance().text;
    DISCSEC_ASSIGN_OR_RETURN(size_t index,
                             ParseFunctionRest(node->string_value));
    node->function_index = index;
    return node;
  }

  /// Parses "(params) { body }" and registers the FunctionDef.
  Result<size_t> ParseFunctionRest(const std::string& name) {
    auto def = std::make_unique<FunctionDef>();
    def->name = name;
    DISCSEC_RETURN_IF_ERROR(ExpectPunct("("));
    if (!CheckPunct(")")) {
      for (;;) {
        if (Peek().type != TokenType::kIdentifier) {
          return Error("expected parameter name");
        }
        def->params.push_back(Advance().text);
        if (!MatchPunct(",")) break;
      }
    }
    DISCSEC_RETURN_IF_ERROR(ExpectPunct(")"));
    DISCSEC_ASSIGN_OR_RETURN(def->body, ParseBlock());
    program_->functions.push_back(std::move(def));
    return program_->functions.size() - 1;
  }

  Result<NodePtr> ParseIf() {
    auto node = MakeNode(NodeType::kIf);
    Advance();  // if
    DISCSEC_RETURN_IF_ERROR(ExpectPunct("("));
    DISCSEC_ASSIGN_OR_RETURN(NodePtr cond, ParseExpression());
    node->children.push_back(std::move(cond));
    DISCSEC_RETURN_IF_ERROR(ExpectPunct(")"));
    DISCSEC_ASSIGN_OR_RETURN(NodePtr then, ParseStatement());
    node->children.push_back(std::move(then));
    if (MatchKeyword("else")) {
      DISCSEC_ASSIGN_OR_RETURN(NodePtr else_branch, ParseStatement());
      node->children.push_back(std::move(else_branch));
    }
    return node;
  }

  Result<NodePtr> ParseSwitch() {
    auto node = MakeNode(NodeType::kSwitch);
    Advance();  // switch
    DISCSEC_RETURN_IF_ERROR(ExpectPunct("("));
    DISCSEC_ASSIGN_OR_RETURN(NodePtr discriminant, ParseExpression());
    node->children.push_back(std::move(discriminant));
    DISCSEC_RETURN_IF_ERROR(ExpectPunct(")"));
    DISCSEC_RETURN_IF_ERROR(ExpectPunct("{"));
    bool seen_default = false;
    while (!CheckPunct("}") && !AtEnd()) {
      auto clause = MakeNode(NodeType::kCase);
      if (MatchKeyword("case")) {
        DISCSEC_ASSIGN_OR_RETURN(NodePtr test, ParseExpression());
        clause->children.push_back(std::move(test));
      } else if (MatchKeyword("default")) {
        if (seen_default) return Error("multiple default clauses");
        seen_default = true;
        clause->bool_value = true;
      } else {
        return Error("expected 'case' or 'default' in switch body");
      }
      DISCSEC_RETURN_IF_ERROR(ExpectPunct(":"));
      while (!CheckPunct("}") && !CheckKeyword("case") &&
             !CheckKeyword("default") && !AtEnd()) {
        DISCSEC_ASSIGN_OR_RETURN(NodePtr stmt, ParseStatement());
        clause->children.push_back(std::move(stmt));
      }
      node->children.push_back(std::move(clause));
    }
    DISCSEC_RETURN_IF_ERROR(ExpectPunct("}"));
    return node;
  }

  Result<NodePtr> ParseWhile() {
    auto node = MakeNode(NodeType::kWhile);
    Advance();  // while
    DISCSEC_RETURN_IF_ERROR(ExpectPunct("("));
    DISCSEC_ASSIGN_OR_RETURN(NodePtr cond, ParseExpression());
    node->children.push_back(std::move(cond));
    DISCSEC_RETURN_IF_ERROR(ExpectPunct(")"));
    DISCSEC_ASSIGN_OR_RETURN(NodePtr body, ParseStatement());
    node->children.push_back(std::move(body));
    return node;
  }

  Result<NodePtr> ParseDoWhile() {
    // Desugar: do S while (C);  =>  S; while (C) S;  -- not identical when S
    // contains break/continue on first run, so keep a real loop: implement
    // as for(;;){ S; if(!C) break; }.
    Advance();  // do
    DISCSEC_ASSIGN_OR_RETURN(NodePtr body, ParseStatement());
    if (!MatchKeyword("while")) return Error("expected 'while' after do body");
    DISCSEC_RETURN_IF_ERROR(ExpectPunct("("));
    DISCSEC_ASSIGN_OR_RETURN(NodePtr cond, ParseExpression());
    DISCSEC_RETURN_IF_ERROR(ExpectPunct(")"));
    MatchPunct(";");
    // Build: for(;;){ body; if (!cond) break; }
    auto loop = MakeNode(NodeType::kFor);
    loop->children.push_back(MakeNode(NodeType::kUndefinedLiteral));
    loop->children.push_back(MakeNode(NodeType::kUndefinedLiteral));
    loop->children.push_back(MakeNode(NodeType::kUndefinedLiteral));
    auto block = MakeNode(NodeType::kBlock);
    block->children.push_back(std::move(body));
    auto brk_if = MakeNode(NodeType::kIf);
    auto negate = MakeNode(NodeType::kUnary);
    negate->string_value = "!";
    negate->children.push_back(std::move(cond));
    brk_if->children.push_back(std::move(negate));
    brk_if->children.push_back(MakeNode(NodeType::kBreak));
    block->children.push_back(std::move(brk_if));
    loop->children.push_back(std::move(block));
    return loop;
  }

  Result<NodePtr> ParseFor() {
    auto node = MakeNode(NodeType::kFor);
    Advance();  // for
    DISCSEC_RETURN_IF_ERROR(ExpectPunct("("));
    // init
    if (MatchPunct(";")) {
      node->children.push_back(MakeNode(NodeType::kUndefinedLiteral));
    } else if (CheckKeyword("var")) {
      DISCSEC_ASSIGN_OR_RETURN(NodePtr init, ParseVarStatement());
      node->children.push_back(std::move(init));
      // ParseVarStatement consumed the ';' if present; require it.
    } else {
      auto stmt = MakeNode(NodeType::kExprStatement);
      DISCSEC_ASSIGN_OR_RETURN(NodePtr expr, ParseExpression());
      stmt->children.push_back(std::move(expr));
      node->children.push_back(std::move(stmt));
      DISCSEC_RETURN_IF_ERROR(ExpectPunct(";"));
    }
    // condition
    if (CheckPunct(";")) {
      node->children.push_back(MakeNode(NodeType::kUndefinedLiteral));
    } else {
      DISCSEC_ASSIGN_OR_RETURN(NodePtr cond, ParseExpression());
      node->children.push_back(std::move(cond));
    }
    DISCSEC_RETURN_IF_ERROR(ExpectPunct(";"));
    // update
    if (CheckPunct(")")) {
      node->children.push_back(MakeNode(NodeType::kUndefinedLiteral));
    } else {
      DISCSEC_ASSIGN_OR_RETURN(NodePtr update, ParseExpression());
      node->children.push_back(std::move(update));
    }
    DISCSEC_RETURN_IF_ERROR(ExpectPunct(")"));
    DISCSEC_ASSIGN_OR_RETURN(NodePtr body, ParseStatement());
    node->children.push_back(std::move(body));
    return node;
  }

  // ---- expressions (precedence climbing) ----

  Result<NodePtr> ParseExpression() { return ParseAssignment(); }

  Result<NodePtr> ParseAssignment() {
    DISCSEC_ASSIGN_OR_RETURN(NodePtr lhs, ParseConditional());
    static const char* kAssignOps[] = {"=", "+=", "-=", "*=", "/=", "%="};
    for (const char* op : kAssignOps) {
      if (CheckPunct(op)) {
        if (lhs->type != NodeType::kIdentifier &&
            lhs->type != NodeType::kMember &&
            lhs->type != NodeType::kIndex) {
          return Error("invalid assignment target");
        }
        auto node = MakeNode(NodeType::kAssign);
        node->string_value = Advance().text;
        DISCSEC_ASSIGN_OR_RETURN(NodePtr rhs, ParseAssignment());
        node->children.push_back(std::move(lhs));
        node->children.push_back(std::move(rhs));
        return node;
      }
    }
    return lhs;
  }

  Result<NodePtr> ParseConditional() {
    DISCSEC_ASSIGN_OR_RETURN(NodePtr cond, ParseLogicalOr());
    if (!MatchPunct("?")) return cond;
    auto node = MakeNode(NodeType::kConditional);
    node->children.push_back(std::move(cond));
    DISCSEC_ASSIGN_OR_RETURN(NodePtr then, ParseAssignment());
    node->children.push_back(std::move(then));
    DISCSEC_RETURN_IF_ERROR(ExpectPunct(":"));
    DISCSEC_ASSIGN_OR_RETURN(NodePtr else_value, ParseAssignment());
    node->children.push_back(std::move(else_value));
    return node;
  }

  Result<NodePtr> ParseLogicalOr() {
    DISCSEC_ASSIGN_OR_RETURN(NodePtr lhs, ParseLogicalAnd());
    while (CheckPunct("||")) {
      auto node = MakeNode(NodeType::kLogical);
      node->string_value = Advance().text;
      DISCSEC_ASSIGN_OR_RETURN(NodePtr rhs, ParseLogicalAnd());
      node->children.push_back(std::move(lhs));
      node->children.push_back(std::move(rhs));
      lhs = std::move(node);
    }
    return lhs;
  }

  Result<NodePtr> ParseLogicalAnd() {
    DISCSEC_ASSIGN_OR_RETURN(NodePtr lhs, ParseEquality());
    while (CheckPunct("&&")) {
      auto node = MakeNode(NodeType::kLogical);
      node->string_value = Advance().text;
      DISCSEC_ASSIGN_OR_RETURN(NodePtr rhs, ParseEquality());
      node->children.push_back(std::move(lhs));
      node->children.push_back(std::move(rhs));
      lhs = std::move(node);
    }
    return lhs;
  }

  Result<NodePtr> ParseBinaryLevel(
      const std::vector<std::string>& ops,
      Result<NodePtr> (ParserImpl::*next)()) {
    DISCSEC_ASSIGN_OR_RETURN(NodePtr lhs, (this->*next)());
    for (;;) {
      bool matched = false;
      for (const std::string& op : ops) {
        if (CheckPunct(op)) {
          auto node = MakeNode(NodeType::kBinary);
          node->string_value = Advance().text;
          DISCSEC_ASSIGN_OR_RETURN(NodePtr rhs, (this->*next)());
          node->children.push_back(std::move(lhs));
          node->children.push_back(std::move(rhs));
          lhs = std::move(node);
          matched = true;
          break;
        }
      }
      if (!matched) return lhs;
    }
  }

  Result<NodePtr> ParseEquality() {
    return ParseBinaryLevel({"===", "!==", "==", "!="},
                            &ParserImpl::ParseRelational);
  }

  Result<NodePtr> ParseRelational() {
    return ParseBinaryLevel({"<=", ">=", "<", ">"},
                            &ParserImpl::ParseAdditive);
  }

  Result<NodePtr> ParseAdditive() {
    return ParseBinaryLevel({"+", "-"}, &ParserImpl::ParseMultiplicative);
  }

  Result<NodePtr> ParseMultiplicative() {
    return ParseBinaryLevel({"*", "/", "%"}, &ParserImpl::ParseUnary);
  }

  Result<NodePtr> ParseUnary() {
    if (CheckPunct("-") || CheckPunct("+") || CheckPunct("!")) {
      auto node = MakeNode(NodeType::kUnary);
      node->string_value = Advance().text;
      DISCSEC_ASSIGN_OR_RETURN(NodePtr operand, ParseUnary());
      node->children.push_back(std::move(operand));
      return node;
    }
    if (CheckKeyword("typeof")) {
      auto node = MakeNode(NodeType::kUnary);
      node->string_value = Advance().text;
      DISCSEC_ASSIGN_OR_RETURN(NodePtr operand, ParseUnary());
      node->children.push_back(std::move(operand));
      return node;
    }
    if (CheckPunct("++") || CheckPunct("--")) {
      // Prefix inc/dec desugars to compound assignment: ++x -> x += 1.
      std::string op = Advance().text;
      DISCSEC_ASSIGN_OR_RETURN(NodePtr target, ParseUnary());
      auto node = MakeNode(NodeType::kAssign);
      node->string_value = op == "++" ? "+=" : "-=";
      auto one = MakeNode(NodeType::kNumberLiteral);
      one->number_value = 1.0;
      node->children.push_back(std::move(target));
      node->children.push_back(std::move(one));
      return node;
    }
    return ParsePostfix();
  }

  Result<NodePtr> ParsePostfix() {
    DISCSEC_ASSIGN_OR_RETURN(NodePtr expr, ParseCallOrMember());
    if (CheckPunct("++") || CheckPunct("--")) {
      auto node = MakeNode(NodeType::kPostfix);
      node->string_value = Advance().text;
      node->children.push_back(std::move(expr));
      return node;
    }
    return expr;
  }

  Result<NodePtr> ParseCallOrMember() {
    DISCSEC_ASSIGN_OR_RETURN(NodePtr expr, ParsePrimary());
    for (;;) {
      if (MatchPunct(".")) {
        if (Peek().type != TokenType::kIdentifier &&
            Peek().type != TokenType::kKeyword) {
          return Error("expected property name after '.'");
        }
        auto node = MakeNode(NodeType::kMember);
        node->string_value = Advance().text;
        node->children.push_back(std::move(expr));
        expr = std::move(node);
      } else if (CheckPunct("[")) {
        Advance();
        auto node = MakeNode(NodeType::kIndex);
        node->children.push_back(std::move(expr));
        DISCSEC_ASSIGN_OR_RETURN(NodePtr index, ParseExpression());
        node->children.push_back(std::move(index));
        DISCSEC_RETURN_IF_ERROR(ExpectPunct("]"));
        expr = std::move(node);
      } else if (CheckPunct("(")) {
        Advance();
        auto node = MakeNode(NodeType::kCall);
        node->children.push_back(std::move(expr));
        if (!CheckPunct(")")) {
          for (;;) {
            DISCSEC_ASSIGN_OR_RETURN(NodePtr arg, ParseAssignment());
            node->children.push_back(std::move(arg));
            if (!MatchPunct(",")) break;
          }
        }
        DISCSEC_RETURN_IF_ERROR(ExpectPunct(")"));
        expr = std::move(node);
      } else {
        return expr;
      }
    }
  }

  Result<NodePtr> ParsePrimary() {
    const Token& token = Peek();
    switch (token.type) {
      case TokenType::kNumber: {
        auto node = MakeNode(NodeType::kNumberLiteral);
        node->number_value = Advance().number;
        return node;
      }
      case TokenType::kString: {
        auto node = MakeNode(NodeType::kStringLiteral);
        node->string_value = Advance().string;
        return node;
      }
      case TokenType::kIdentifier: {
        auto node = MakeNode(NodeType::kIdentifier);
        node->string_value = Advance().text;
        return node;
      }
      case TokenType::kKeyword: {
        if (token.text == "true" || token.text == "false") {
          auto node = MakeNode(NodeType::kBooleanLiteral);
          node->bool_value = Advance().text == "true";
          return node;
        }
        if (token.text == "null") {
          Advance();
          return MakeNode(NodeType::kNullLiteral);
        }
        if (token.text == "undefined") {
          Advance();
          return MakeNode(NodeType::kUndefinedLiteral);
        }
        if (token.text == "function") {
          Advance();
          std::string name;
          if (Peek().type == TokenType::kIdentifier) name = Advance().text;
          auto node = MakeNode(NodeType::kFunctionExpr);
          DISCSEC_ASSIGN_OR_RETURN(size_t index, ParseFunctionRest(name));
          node->function_index = index;
          return node;
        }
        return Error("unexpected keyword '" + token.text + "'");
      }
      case TokenType::kPunctuator: {
        if (token.text == "(") {
          Advance();
          DISCSEC_ASSIGN_OR_RETURN(NodePtr expr, ParseExpression());
          DISCSEC_RETURN_IF_ERROR(ExpectPunct(")"));
          return expr;
        }
        if (token.text == "[") {
          Advance();
          auto node = MakeNode(NodeType::kArrayLiteral);
          if (!CheckPunct("]")) {
            for (;;) {
              DISCSEC_ASSIGN_OR_RETURN(NodePtr element, ParseAssignment());
              node->children.push_back(std::move(element));
              if (!MatchPunct(",")) break;
            }
          }
          DISCSEC_RETURN_IF_ERROR(ExpectPunct("]"));
          return node;
        }
        if (token.text == "{") {
          Advance();
          auto node = MakeNode(NodeType::kObjectLiteral);
          if (!CheckPunct("}")) {
            for (;;) {
              std::string key;
              if (Peek().type == TokenType::kIdentifier ||
                  Peek().type == TokenType::kKeyword) {
                key = Advance().text;
              } else if (Peek().type == TokenType::kString) {
                key = Advance().string;
              } else if (Peek().type == TokenType::kNumber) {
                key = Value::Number(Advance().number).ToDisplayString();
              } else {
                return Error("expected property key");
              }
              DISCSEC_RETURN_IF_ERROR(ExpectPunct(":"));
              DISCSEC_ASSIGN_OR_RETURN(NodePtr value, ParseAssignment());
              node->keys.push_back(std::move(key));
              node->children.push_back(std::move(value));
              if (!MatchPunct(",")) break;
            }
          }
          DISCSEC_RETURN_IF_ERROR(ExpectPunct("}"));
          return node;
        }
        return Error("unexpected token '" + token.text + "'");
      }
      case TokenType::kEnd:
        return Error("unexpected end of input");
    }
    return Error("unexpected token");
  }

  std::vector<Token> tokens_;
  Program* program_;
  size_t pos_ = 0;
};

}  // namespace

Result<Program> ParseProgram(std::string_view source) {
  DISCSEC_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  Program program;
  ParserImpl parser(std::move(tokens), &program);
  DISCSEC_ASSIGN_OR_RETURN(program.root, parser.Run());
  return program;
}

}  // namespace script
}  // namespace discsec
