#include "script/interpreter.h"

#include <cmath>
#include <cstdlib>
#include <limits>

#include "script/parser.h"

namespace discsec {
namespace script {

/// Control-flow signal threaded through statement evaluation.
struct Interpreter::Flow {
  enum class Kind { kNormal, kReturn, kBreak, kContinue };
  Kind kind = Kind::kNormal;
  Value return_value;

  bool Interrupted() const { return kind != Kind::kNormal; }
  void Clear() {
    kind = Kind::kNormal;
    return_value = Value();
  }
};

namespace {

/// The deterministic standard-library subset every interpreter gets:
/// Math (no Math.random — the player profile is deterministic), number
/// parsing and NaN checks, and String.fromCharCode.
void InstallBuiltins(Environment* globals) {
  Value math = Value::MakeObject();
  auto unary = [](double (*fn)(double)) {
    return Value::Native([fn](const std::vector<Value>& args) -> Result<Value> {
      return Value::Number(fn(args.empty() ? std::nan("") : args[0].ToNumber()));
    });
  };
  math.AsObject()["floor"] = unary([](double v) { return std::floor(v); });
  math.AsObject()["ceil"] = unary([](double v) { return std::ceil(v); });
  math.AsObject()["round"] = unary([](double v) { return std::round(v); });
  math.AsObject()["abs"] = unary([](double v) { return std::fabs(v); });
  math.AsObject()["sqrt"] = unary([](double v) { return std::sqrt(v); });
  math.AsObject()["max"] =
      Value::Native([](const std::vector<Value>& args) -> Result<Value> {
        double best = -std::numeric_limits<double>::infinity();
        for (const Value& v : args) best = std::max(best, v.ToNumber());
        return Value::Number(args.empty() ? std::nan("") : best);
      });
  math.AsObject()["min"] =
      Value::Native([](const std::vector<Value>& args) -> Result<Value> {
        double best = std::numeric_limits<double>::infinity();
        for (const Value& v : args) best = std::min(best, v.ToNumber());
        return Value::Number(args.empty() ? std::nan("") : best);
      });
  math.AsObject()["pow"] =
      Value::Native([](const std::vector<Value>& args) -> Result<Value> {
        if (args.size() < 2) return Value::Number(std::nan(""));
        return Value::Number(std::pow(args[0].ToNumber(),
                                      args[1].ToNumber()));
      });
  globals->Define("Math", math);

  globals->Define(
      "parseInt",
      Value::Native([](const std::vector<Value>& args) -> Result<Value> {
        if (args.empty()) return Value::Number(std::nan(""));
        std::string s = args[0].ToDisplayString();
        int base = args.size() > 1
                       ? static_cast<int>(args[1].ToNumber())
                       : 10;
        char* end = nullptr;
        long long v = std::strtoll(s.c_str(), &end, base);
        if (end == s.c_str()) return Value::Number(std::nan(""));
        return Value::Number(static_cast<double>(v));
      }));
  globals->Define(
      "parseFloat",
      Value::Native([](const std::vector<Value>& args) -> Result<Value> {
        if (args.empty()) return Value::Number(std::nan(""));
        std::string s = args[0].ToDisplayString();
        char* end = nullptr;
        double v = std::strtod(s.c_str(), &end);
        if (end == s.c_str()) return Value::Number(std::nan(""));
        return Value::Number(v);
      }));
  globals->Define(
      "isNaN",
      Value::Native([](const std::vector<Value>& args) -> Result<Value> {
        return Value::Boolean(args.empty() ||
                              std::isnan(args[0].ToNumber()));
      }));

  Value string_ns = Value::MakeObject();
  string_ns.AsObject()["fromCharCode"] =
      Value::Native([](const std::vector<Value>& args) -> Result<Value> {
        std::string out;
        for (const Value& v : args) {
          out.push_back(static_cast<char>(
              static_cast<int>(v.ToNumber()) & 0x7f));
        }
        return Value::String(out);
      });
  globals->Define("String", string_ns);
}

}  // namespace

Interpreter::Interpreter(Limits limits)
    : limits_(limits), globals_(std::make_shared<Environment>()) {
  InstallBuiltins(globals_.get());
}

void Interpreter::DefineGlobal(const std::string& name, Value value) {
  globals_->Define(name, std::move(value));
}

void Interpreter::DefineNative(const std::string& name, NativeFn fn) {
  globals_->Define(name, Value::Native(std::move(fn)));
}

Status Interpreter::Tick(const Node& node) {
  ++steps_used_;
  if (limits_.max_steps != 0 && steps_used_ > limits_.max_steps) {
    return Status::ResourceExhausted(
        "script exceeded step budget at line " + std::to_string(node.line));
  }
  return Status::OK();
}

namespace {
/// Rebases every function index in the tree by `offset`.
void RebaseFunctionIndices(Node* node, size_t offset) {
  if (node->type == NodeType::kFunctionExpr ||
      node->type == NodeType::kFunctionDecl) {
    node->function_index += offset;
  }
  for (const NodePtr& child : node->children) {
    RebaseFunctionIndices(child.get(), offset);
  }
}
}  // namespace

Result<Value> Interpreter::Run(const std::string& source) {
  DISCSEC_ASSIGN_OR_RETURN(Program program, ParseProgram(source));
  size_t offset = functions_.size();
  RebaseFunctionIndices(program.root.get(), offset);
  for (const auto& def : program.functions) {
    RebaseFunctionIndices(def->body.get(), offset);
    functions_.push_back(def.get());
  }
  programs_.push_back(std::move(program));
  const Program& prog = programs_.back();
  Flow flow;
  Value last;
  for (const NodePtr& stmt : prog.root->children) {
    DISCSEC_ASSIGN_OR_RETURN(last, EvalNode(*stmt, globals_, &flow));
    if (flow.Interrupted()) break;  // top-level return ends the script
  }
  return last;
}

Value Interpreter::GetGlobal(const std::string& name) {
  Value* v = globals_->Lookup(name);
  return v != nullptr ? *v : Value();
}

Result<Value> Interpreter::CallGlobal(const std::string& name,
                                      const std::vector<Value>& args) {
  Value* fn = globals_->Lookup(name);
  if (fn == nullptr) {
    return Status::NotFound("no global function '" + name + "'");
  }
  return CallValue(*fn, args);
}

Result<Value> Interpreter::CallValue(const Value& callee,
                                     const std::vector<Value>& args) {
  if (callee.kind() == Value::Kind::kNative) {
    return callee.AsNative()(args);
  }
  if (callee.kind() != Value::Kind::kFunction) {
    return Status::InvalidArgument(std::string("value of type ") +
                                   callee.KindName() + " is not callable");
  }
  if (call_depth_ >= limits_.max_call_depth) {
    return Status::ResourceExhausted("script exceeded call depth");
  }
  const Value::Closure& closure = callee.AsClosure();
  auto env = std::make_shared<Environment>(closure.env);
  const FunctionDef& def = *closure.def;
  for (size_t i = 0; i < def.params.size(); ++i) {
    env->Define(def.params[i], i < args.size() ? args[i] : Value());
  }
  // `arguments` array.
  Value arguments = Value::MakeArray();
  arguments.AsArray() = args;
  env->Define("arguments", std::move(arguments));

  ++call_depth_;
  Flow flow;
  auto result = EvalNode(*def.body, env, &flow);
  --call_depth_;
  if (!result.ok()) return result.status();
  if (flow.kind == Flow::Kind::kReturn) return flow.return_value;
  return Value();
}

Status Interpreter::AssignTo(const Node& target, Value value,
                             std::shared_ptr<Environment> env, Flow* flow) {
  switch (target.type) {
    case NodeType::kIdentifier:
      env->Assign(target.string_value, std::move(value));
      return Status::OK();
    case NodeType::kMember: {
      DISCSEC_ASSIGN_OR_RETURN(Value object,
                               EvalNode(*target.children[0], env, flow));
      if (!object.IsObject()) {
        return Status::InvalidArgument("cannot set property '" +
                                       target.string_value + "' on " +
                                       object.KindName());
      }
      object.AsObject()[target.string_value] = std::move(value);
      return Status::OK();
    }
    case NodeType::kIndex: {
      DISCSEC_ASSIGN_OR_RETURN(Value object,
                               EvalNode(*target.children[0], env, flow));
      DISCSEC_ASSIGN_OR_RETURN(Value index,
                               EvalNode(*target.children[1], env, flow));
      if (object.IsArray()) {
        double d = index.ToNumber();
        if (std::isnan(d) || d < 0) {
          return Status::InvalidArgument("bad array index");
        }
        size_t i = static_cast<size_t>(d);
        if (i >= object.AsArray().size()) {
          if (i > 1u << 20) {
            return Status::ResourceExhausted("array index too large");
          }
          object.AsArray().resize(i + 1);
        }
        object.AsArray()[i] = std::move(value);
        return Status::OK();
      }
      if (object.IsObject()) {
        object.AsObject()[index.ToDisplayString()] = std::move(value);
        return Status::OK();
      }
      return Status::InvalidArgument(std::string("cannot index ") +
                                     object.KindName());
    }
    default:
      return Status::InvalidArgument("invalid assignment target");
  }
}

Result<Value> Interpreter::EvalBinary(const Node& node, const Value& lhs,
                                      const Value& rhs) {
  const std::string& op = node.string_value;
  if (op == "+") {
    if (lhs.IsString() || rhs.IsString()) {
      return Value::String(lhs.ToDisplayString() + rhs.ToDisplayString());
    }
    return Value::Number(lhs.ToNumber() + rhs.ToNumber());
  }
  if (op == "-") return Value::Number(lhs.ToNumber() - rhs.ToNumber());
  if (op == "*") return Value::Number(lhs.ToNumber() * rhs.ToNumber());
  if (op == "/") return Value::Number(lhs.ToNumber() / rhs.ToNumber());
  if (op == "%") {
    return Value::Number(std::fmod(lhs.ToNumber(), rhs.ToNumber()));
  }
  if (op == "==" || op == "===") {
    return Value::Boolean(lhs.StrictEquals(rhs));
  }
  if (op == "!=" || op == "!==") {
    return Value::Boolean(!lhs.StrictEquals(rhs));
  }
  if (op == "<" || op == ">" || op == "<=" || op == ">=") {
    // String/string comparisons are lexicographic, otherwise numeric.
    int cmp;
    bool valid = true;
    if (lhs.IsString() && rhs.IsString()) {
      cmp = lhs.AsString().compare(rhs.AsString());
    } else {
      double a = lhs.ToNumber();
      double b = rhs.ToNumber();
      if (std::isnan(a) || std::isnan(b)) valid = false;
      cmp = a < b ? -1 : (a > b ? 1 : 0);
    }
    if (!valid) return Value::Boolean(false);
    if (op == "<") return Value::Boolean(cmp < 0);
    if (op == ">") return Value::Boolean(cmp > 0);
    if (op == "<=") return Value::Boolean(cmp <= 0);
    return Value::Boolean(cmp >= 0);
  }
  return Status::Unsupported("binary operator '" + op + "'");
}

Result<Value> Interpreter::EvalNode(const Node& node,
                                    std::shared_ptr<Environment> env,
                                    Flow* flow) {
  DISCSEC_RETURN_IF_ERROR(Tick(node));
  switch (node.type) {
    case NodeType::kNumberLiteral:
      return Value::Number(node.number_value);
    case NodeType::kStringLiteral:
      return Value::String(node.string_value);
    case NodeType::kBooleanLiteral:
      return Value::Boolean(node.bool_value);
    case NodeType::kNullLiteral:
      return Value::Null();
    case NodeType::kUndefinedLiteral:
      return Value();
    case NodeType::kIdentifier: {
      Value* v = env->Lookup(node.string_value);
      if (v == nullptr) {
        return Status::NotFound("undefined variable '" + node.string_value +
                                "' at line " + std::to_string(node.line));
      }
      return *v;
    }
    case NodeType::kArrayLiteral: {
      Value array = Value::MakeArray();
      for (const NodePtr& element : node.children) {
        DISCSEC_ASSIGN_OR_RETURN(Value v, EvalNode(*element, env, flow));
        array.AsArray().push_back(std::move(v));
      }
      return array;
    }
    case NodeType::kObjectLiteral: {
      Value object = Value::MakeObject();
      for (size_t i = 0; i < node.children.size(); ++i) {
        DISCSEC_ASSIGN_OR_RETURN(Value v,
                                 EvalNode(*node.children[i], env, flow));
        object.AsObject()[node.keys[i]] = std::move(v);
      }
      return object;
    }
    case NodeType::kBinary: {
      DISCSEC_ASSIGN_OR_RETURN(Value lhs,
                               EvalNode(*node.children[0], env, flow));
      DISCSEC_ASSIGN_OR_RETURN(Value rhs,
                               EvalNode(*node.children[1], env, flow));
      return EvalBinary(node, lhs, rhs);
    }
    case NodeType::kLogical: {
      DISCSEC_ASSIGN_OR_RETURN(Value lhs,
                               EvalNode(*node.children[0], env, flow));
      if (node.string_value == "&&") {
        if (!lhs.Truthy()) return lhs;
        return EvalNode(*node.children[1], env, flow);
      }
      if (lhs.Truthy()) return lhs;
      return EvalNode(*node.children[1], env, flow);
    }
    case NodeType::kUnary: {
      DISCSEC_ASSIGN_OR_RETURN(Value operand,
                               EvalNode(*node.children[0], env, flow));
      if (node.string_value == "-") return Value::Number(-operand.ToNumber());
      if (node.string_value == "+") return Value::Number(operand.ToNumber());
      if (node.string_value == "!") return Value::Boolean(!operand.Truthy());
      if (node.string_value == "typeof") {
        return Value::String(operand.KindName());
      }
      return Status::Unsupported("unary operator " + node.string_value);
    }
    case NodeType::kAssign: {
      const Node& target = *node.children[0];
      DISCSEC_ASSIGN_OR_RETURN(Value rhs,
                               EvalNode(*node.children[1], env, flow));
      if (node.string_value != "=") {
        // Compound assignment: read-modify-write.
        DISCSEC_ASSIGN_OR_RETURN(Value current, EvalNode(target, env, flow));
        Node op_node(NodeType::kBinary);
        op_node.string_value = node.string_value.substr(0, 1);
        op_node.line = node.line;
        DISCSEC_ASSIGN_OR_RETURN(rhs, EvalBinary(op_node, current, rhs));
      }
      DISCSEC_RETURN_IF_ERROR(AssignTo(target, rhs, env, flow));
      return rhs;
    }
    case NodeType::kPostfix: {
      const Node& target = *node.children[0];
      DISCSEC_ASSIGN_OR_RETURN(Value current, EvalNode(target, env, flow));
      double old_value = current.ToNumber();
      double next = node.string_value == "++" ? old_value + 1 : old_value - 1;
      DISCSEC_RETURN_IF_ERROR(
          AssignTo(target, Value::Number(next), env, flow));
      return Value::Number(old_value);
    }
    case NodeType::kConditional: {
      DISCSEC_ASSIGN_OR_RETURN(Value cond,
                               EvalNode(*node.children[0], env, flow));
      return EvalNode(cond.Truthy() ? *node.children[1] : *node.children[2],
                      env, flow);
    }
    case NodeType::kCall: {
      DISCSEC_ASSIGN_OR_RETURN(Value callee,
                               EvalNode(*node.children[0], env, flow));
      std::vector<Value> args;
      for (size_t i = 1; i < node.children.size(); ++i) {
        DISCSEC_ASSIGN_OR_RETURN(Value arg,
                                 EvalNode(*node.children[i], env, flow));
        args.push_back(std::move(arg));
      }
      auto result = CallValue(callee, args);
      if (!result.ok()) {
        return result.status().WithContext("call at line " +
                                           std::to_string(node.line));
      }
      return result;
    }
    case NodeType::kMember: {
      DISCSEC_ASSIGN_OR_RETURN(Value object,
                               EvalNode(*node.children[0], env, flow));
      const std::string& name = node.string_value;
      if (object.IsObject()) {
        auto it = object.AsObject().find(name);
        return it != object.AsObject().end() ? it->second : Value();
      }
      if (object.IsArray() && name == "length") {
        return Value::Number(static_cast<double>(object.AsArray().size()));
      }
      if (object.IsArray() && name == "push") {
        Value array = object;  // shares the underlying storage
        return Value::Native([array](const std::vector<Value>& args) mutable
                                 -> Result<Value> {
          for (const Value& v : args) array.AsArray().push_back(v);
          return Value::Number(static_cast<double>(array.AsArray().size()));
        });
      }
      if (object.IsString() && name == "length") {
        return Value::Number(static_cast<double>(object.AsString().size()));
      }
      if (object.IsString() && (name == "charAt" || name == "substring" ||
                                name == "indexOf" || name == "toUpperCase" ||
                                name == "toLowerCase")) {
        std::string s = object.AsString();
        if (name == "charAt") {
          return Value::Native(
              [s](const std::vector<Value>& args) -> Result<Value> {
                size_t i = args.empty()
                               ? 0
                               : static_cast<size_t>(args[0].ToNumber());
                return Value::String(i < s.size() ? std::string(1, s[i])
                                                  : std::string());
              });
        }
        if (name == "substring") {
          return Value::Native(
              [s](const std::vector<Value>& args) -> Result<Value> {
                size_t b = args.empty()
                               ? 0
                               : static_cast<size_t>(
                                     std::max(0.0, args[0].ToNumber()));
                size_t e = args.size() < 2 ? s.size()
                                           : static_cast<size_t>(std::max(
                                                 0.0, args[1].ToNumber()));
                b = std::min(b, s.size());
                e = std::min(e, s.size());
                if (b > e) std::swap(b, e);
                return Value::String(s.substr(b, e - b));
              });
        }
        if (name == "indexOf") {
          return Value::Native(
              [s](const std::vector<Value>& args) -> Result<Value> {
                if (args.empty()) return Value::Number(-1);
                size_t p = s.find(args[0].ToDisplayString());
                return Value::Number(
                    p == std::string::npos ? -1 : static_cast<double>(p));
              });
        }
        bool upper = name == "toUpperCase";
        return Value::Native(
            [s, upper](const std::vector<Value>&) -> Result<Value> {
              std::string out = s;
              for (char& c : out) {
                c = upper ? static_cast<char>(std::toupper(
                                static_cast<unsigned char>(c)))
                          : static_cast<char>(std::tolower(
                                static_cast<unsigned char>(c)));
              }
              return Value::String(out);
            });
      }
      return Value();  // missing property -> undefined
    }
    case NodeType::kIndex: {
      DISCSEC_ASSIGN_OR_RETURN(Value object,
                               EvalNode(*node.children[0], env, flow));
      DISCSEC_ASSIGN_OR_RETURN(Value index,
                               EvalNode(*node.children[1], env, flow));
      if (object.IsArray()) {
        double d = index.ToNumber();
        if (std::isnan(d) || d < 0 ||
            static_cast<size_t>(d) >= object.AsArray().size()) {
          return Value();
        }
        return object.AsArray()[static_cast<size_t>(d)];
      }
      if (object.IsObject()) {
        auto it = object.AsObject().find(index.ToDisplayString());
        return it != object.AsObject().end() ? it->second : Value();
      }
      if (object.IsString()) {
        double d = index.ToNumber();
        if (std::isnan(d) || d < 0 ||
            static_cast<size_t>(d) >= object.AsString().size()) {
          return Value();
        }
        return Value::String(
            std::string(1, object.AsString()[static_cast<size_t>(d)]));
      }
      return Status::InvalidArgument(std::string("cannot index ") +
                                     object.KindName());
    }
    case NodeType::kFunctionExpr: {
      Value::Closure closure;
      closure.def = FindFunction(node.function_index);
      closure.env = env;
      return Value::Function(std::move(closure));
    }

    // ---- statements ----
    case NodeType::kProgram:
    case NodeType::kBlock: {
      Value last;
      for (const NodePtr& stmt : node.children) {
        DISCSEC_ASSIGN_OR_RETURN(last, EvalNode(*stmt, env, flow));
        if (flow->Interrupted()) break;
      }
      return last;
    }
    case NodeType::kVarDecl: {
      Value init;
      if (!node.children.empty()) {
        DISCSEC_ASSIGN_OR_RETURN(init, EvalNode(*node.children[0], env, flow));
      }
      env->Define(node.string_value, std::move(init));
      return Value();
    }
    case NodeType::kFunctionDecl: {
      Value::Closure closure;
      closure.def = FindFunction(node.function_index);
      closure.env = env;
      env->Define(node.string_value, Value::Function(std::move(closure)));
      return Value();
    }
    case NodeType::kExprStatement:
      return EvalNode(*node.children[0], env, flow);
    case NodeType::kIf: {
      DISCSEC_ASSIGN_OR_RETURN(Value cond,
                               EvalNode(*node.children[0], env, flow));
      if (cond.Truthy()) {
        return EvalNode(*node.children[1], env, flow);
      }
      if (node.children.size() > 2) {
        return EvalNode(*node.children[2], env, flow);
      }
      return Value();
    }
    case NodeType::kWhile: {
      for (;;) {
        DISCSEC_ASSIGN_OR_RETURN(Value cond,
                                 EvalNode(*node.children[0], env, flow));
        if (!cond.Truthy()) break;
        DISCSEC_ASSIGN_OR_RETURN(Value ignored,
                                 EvalNode(*node.children[1], env, flow));
        (void)ignored;
        if (flow->kind == Flow::Kind::kBreak) {
          flow->Clear();
          break;
        }
        if (flow->kind == Flow::Kind::kContinue) flow->Clear();
        if (flow->kind == Flow::Kind::kReturn) break;
      }
      return Value();
    }
    case NodeType::kFor: {
      auto loop_env = std::make_shared<Environment>(env);
      if (node.children[0]->type != NodeType::kUndefinedLiteral) {
        DISCSEC_ASSIGN_OR_RETURN(Value ignored,
                                 EvalNode(*node.children[0], loop_env, flow));
        (void)ignored;
      }
      for (;;) {
        if (node.children[1]->type != NodeType::kUndefinedLiteral) {
          DISCSEC_ASSIGN_OR_RETURN(
              Value cond, EvalNode(*node.children[1], loop_env, flow));
          if (!cond.Truthy()) break;
        }
        DISCSEC_ASSIGN_OR_RETURN(Value ignored,
                                 EvalNode(*node.children[3], loop_env, flow));
        (void)ignored;
        if (flow->kind == Flow::Kind::kBreak) {
          flow->Clear();
          break;
        }
        if (flow->kind == Flow::Kind::kContinue) flow->Clear();
        if (flow->kind == Flow::Kind::kReturn) break;
        if (node.children[2]->type != NodeType::kUndefinedLiteral) {
          DISCSEC_ASSIGN_OR_RETURN(
              Value ignored2, EvalNode(*node.children[2], loop_env, flow));
          (void)ignored2;
        }
      }
      return Value();
    }
    case NodeType::kSwitch: {
      DISCSEC_ASSIGN_OR_RETURN(Value discriminant,
                               EvalNode(*node.children[0], env, flow));
      // First pass: find the matching case (strict equality); fall back to
      // the default clause.
      size_t start = node.children.size();
      size_t default_index = node.children.size();
      for (size_t i = 1; i < node.children.size(); ++i) {
        const Node& clause = *node.children[i];
        if (clause.bool_value) {
          default_index = i;
          continue;
        }
        DISCSEC_ASSIGN_OR_RETURN(Value test,
                                 EvalNode(*clause.children[0], env, flow));
        if (discriminant.StrictEquals(test)) {
          start = i;
          break;
        }
      }
      if (start == node.children.size()) start = default_index;
      // Second pass: execute from the matched clause onward (fallthrough),
      // honoring break.
      for (size_t i = start; i < node.children.size(); ++i) {
        const Node& clause = *node.children[i];
        size_t body_from = clause.bool_value ? 0 : 1;
        for (size_t s = body_from; s < clause.children.size(); ++s) {
          DISCSEC_ASSIGN_OR_RETURN(Value ignored,
                                   EvalNode(*clause.children[s], env, flow));
          (void)ignored;
          if (flow->Interrupted()) break;
        }
        if (flow->kind == Flow::Kind::kBreak) {
          flow->Clear();
          return Value();
        }
        if (flow->Interrupted()) return Value();  // return/continue escape
      }
      return Value();
    }
    case NodeType::kCase:
      return Status::Unsupported("case outside switch");
    case NodeType::kReturn: {
      Value value;
      if (!node.children.empty()) {
        DISCSEC_ASSIGN_OR_RETURN(value,
                                 EvalNode(*node.children[0], env, flow));
      }
      flow->kind = Flow::Kind::kReturn;
      flow->return_value = std::move(value);
      return Value();
    }
    case NodeType::kBreak:
      flow->kind = Flow::Kind::kBreak;
      return Value();
    case NodeType::kContinue:
      flow->kind = Flow::Kind::kContinue;
      return Value();
  }
  return Status::Unsupported("AST node type");
}

const FunctionDef* Interpreter::FindFunction(size_t index) const {
  return functions_[index];
}

}  // namespace script
}  // namespace discsec
