#ifndef DISCSEC_SCRIPT_PARSER_H_
#define DISCSEC_SCRIPT_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "script/ast.h"

namespace discsec {
namespace script {

/// Parses an ECMAScript-subset source text into a Program.
///
/// Supported grammar: var declarations, function declarations and
/// expressions, if/else, while, do-while, for(;;), return/break/continue,
/// blocks; expressions with the usual precedence — assignment (incl. the
/// compound forms), ?:, || &&, equality (== != === !==), relational,
/// additive, multiplicative (% included), unary (- + ! typeof), postfix
/// ++/--, calls, member access (.name and [expr]), array and object
/// literals.
///
/// Deliberately out of scope (the player profile): prototypes, `new`,
/// `this`, try/catch, regex literals, `with`, getters/setters.
Result<Program> ParseProgram(std::string_view source);

}  // namespace script
}  // namespace discsec

#endif  // DISCSEC_SCRIPT_PARSER_H_
