#ifndef DISCSEC_SCRIPT_VALUE_H_
#define DISCSEC_SCRIPT_VALUE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"

namespace discsec {
namespace script {

class Value;
struct FunctionDef;
class Environment;

/// Host (native) function: receives evaluated arguments, returns a value.
/// Player APIs (storage, drawing, network) are exposed this way.
using NativeFn =
    std::function<Result<Value>(const std::vector<Value>& args)>;

/// A dynamically typed ECMAScript value. Objects and arrays have reference
/// semantics (shared between copies), matching ECMAScript.
class Value {
 public:
  enum class Kind {
    kUndefined,
    kNull,
    kBoolean,
    kNumber,
    kString,
    kObject,
    kArray,
    kFunction,
    kNative,
  };

  using Object = std::map<std::string, Value>;
  using Array = std::vector<Value>;

  /// A user-defined function: parameter names, body (owned by the parsed
  /// program), and the closure environment.
  struct Closure {
    const FunctionDef* def = nullptr;
    std::shared_ptr<Environment> env;
  };

  Value() : kind_(Kind::kUndefined) {}
  static Value Undefined() { return Value(); }
  static Value Null() {
    Value v;
    v.kind_ = Kind::kNull;
    return v;
  }
  static Value Boolean(bool b) {
    Value v;
    v.kind_ = Kind::kBoolean;
    v.boolean_ = b;
    return v;
  }
  static Value Number(double d) {
    Value v;
    v.kind_ = Kind::kNumber;
    v.number_ = d;
    return v;
  }
  static Value String(std::string s) {
    Value v;
    v.kind_ = Kind::kString;
    v.string_ = std::make_shared<std::string>(std::move(s));
    return v;
  }
  static Value MakeObject() {
    Value v;
    v.kind_ = Kind::kObject;
    v.object_ = std::make_shared<Object>();
    return v;
  }
  static Value MakeArray() {
    Value v;
    v.kind_ = Kind::kArray;
    v.array_ = std::make_shared<Array>();
    return v;
  }
  static Value Native(NativeFn fn) {
    Value v;
    v.kind_ = Kind::kNative;
    v.native_ = std::make_shared<NativeFn>(std::move(fn));
    return v;
  }
  static Value Function(Closure closure) {
    Value v;
    v.kind_ = Kind::kFunction;
    v.closure_ = std::make_shared<Closure>(std::move(closure));
    return v;
  }

  Kind kind() const { return kind_; }
  bool IsUndefined() const { return kind_ == Kind::kUndefined; }
  bool IsNull() const { return kind_ == Kind::kNull; }
  bool IsBoolean() const { return kind_ == Kind::kBoolean; }
  bool IsNumber() const { return kind_ == Kind::kNumber; }
  bool IsString() const { return kind_ == Kind::kString; }
  bool IsObject() const { return kind_ == Kind::kObject; }
  bool IsArray() const { return kind_ == Kind::kArray; }
  bool IsCallable() const {
    return kind_ == Kind::kFunction || kind_ == Kind::kNative;
  }

  bool AsBoolean() const { return boolean_; }
  double AsNumber() const { return number_; }
  const std::string& AsString() const { return *string_; }
  Object& AsObject() { return *object_; }
  const Object& AsObject() const { return *object_; }
  Array& AsArray() { return *array_; }
  const Array& AsArray() const { return *array_; }
  const NativeFn& AsNative() const { return *native_; }
  const Closure& AsClosure() const { return *closure_; }

  /// ECMAScript ToBoolean: false for undefined/null/false/0/NaN/"".
  bool Truthy() const;
  /// ToString for display and string concatenation.
  std::string ToDisplayString() const;
  /// ToNumber coercion (NaN on failure).
  double ToNumber() const;
  /// Strict equality (===).
  bool StrictEquals(const Value& other) const;

  const char* KindName() const;

 private:
  Kind kind_;
  bool boolean_ = false;
  double number_ = 0.0;
  std::shared_ptr<std::string> string_;
  std::shared_ptr<Object> object_;
  std::shared_ptr<Array> array_;
  std::shared_ptr<NativeFn> native_;
  std::shared_ptr<Closure> closure_;
};

/// A lexical scope: name -> value, chained to the parent scope.
class Environment {
 public:
  explicit Environment(std::shared_ptr<Environment> parent = nullptr)
      : parent_(std::move(parent)) {}

  /// Declares (or overwrites) in this scope.
  void Define(const std::string& name, Value value) {
    variables_[name] = std::move(value);
  }

  /// Finds the nearest scope defining `name`; null when unbound.
  Value* Lookup(const std::string& name) {
    for (Environment* env = this; env != nullptr; env = env->parent_.get()) {
      auto it = env->variables_.find(name);
      if (it != env->variables_.end()) return &it->second;
    }
    return nullptr;
  }

  /// Assigns to the nearest binding, or defines globally when unbound
  /// (ECMAScript 3 non-strict behaviour).
  void Assign(const std::string& name, Value value) {
    for (Environment* env = this; env != nullptr; env = env->parent_.get()) {
      auto it = env->variables_.find(name);
      if (it != env->variables_.end()) {
        it->second = std::move(value);
        return;
      }
      if (env->parent_ == nullptr) {
        env->variables_[name] = std::move(value);
        return;
      }
    }
  }

 private:
  std::map<std::string, Value> variables_;
  std::shared_ptr<Environment> parent_;
};

}  // namespace script
}  // namespace discsec

#endif  // DISCSEC_SCRIPT_VALUE_H_
