#ifndef DISCSEC_SCRIPT_LEXER_H_
#define DISCSEC_SCRIPT_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace discsec {
namespace script {

/// Token kinds for the ECMAScript subset.
enum class TokenType {
  kNumber,
  kString,
  kIdentifier,
  kKeyword,
  kPunctuator,
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;       ///< identifier/keyword name, punctuator spelling
  double number = 0.0;    ///< for kNumber
  std::string string;     ///< decoded value for kString
  int line = 1;
};

/// Tokenizes ECMAScript source. Handles // and /* */ comments, decimal and
/// hex numbers, single/double-quoted strings with the common escapes, and
/// multi-character punctuators (===, !==, &&, ||, +=, ++, ...).
Result<std::vector<Token>> Tokenize(std::string_view source);

/// True when `word` is a reserved keyword of the subset.
bool IsKeyword(std::string_view word);

}  // namespace script
}  // namespace discsec

#endif  // DISCSEC_SCRIPT_LEXER_H_
