#ifndef DISCSEC_SCRIPT_AST_H_
#define DISCSEC_SCRIPT_AST_H_

#include <memory>
#include <string>
#include <vector>

namespace discsec {
namespace script {

/// AST node kinds for the ECMAScript subset. One enum + one node struct
/// keeps the tree compact and the evaluator a single switch.
enum class NodeType {
  // expressions
  kNumberLiteral,    // number_value
  kStringLiteral,    // string_value
  kBooleanLiteral,   // bool_value
  kNullLiteral,
  kUndefinedLiteral,
  kIdentifier,       // string_value = name
  kArrayLiteral,     // children = elements
  kObjectLiteral,    // keys[i] names children[i]
  kBinary,           // string_value = op; children = {lhs, rhs}
  kLogical,          // string_value = "&&" | "||"; children = {lhs, rhs}
  kUnary,            // string_value = "-" | "!" | "+" | "typeof"
  kAssign,           // string_value = "=", "+=", ...; children = {target, value}
  kConditional,      // children = {cond, then, else}
  kCall,             // children = {callee, args...}
  kMember,           // children = {object}; string_value = property name
  kIndex,            // children = {object, index-expr}
  kFunctionExpr,     // function_index into Program::functions
  kPostfix,          // string_value = "++" | "--"; children = {target}

  // statements
  kProgram,          // children = statements
  kVarDecl,          // string_value = name; children = {init?} (may be empty)
  kExprStatement,    // children = {expr}
  kBlock,            // children = statements
  kIf,               // children = {cond, then, else?}
  kWhile,            // children = {cond, body}
  kFor,              // children = {init?, cond?, update?, body} (fixed slots,
                     //             kUndefinedLiteral markers when absent)
  kReturn,           // children = {value?} (may be empty)
  kBreak,
  kContinue,
  kFunctionDecl,     // string_value = name; function_index set
  kSwitch,           // children = {discriminant, case...}; see kCase
  kCase,             // children = {test?, body-statements...}; bool_value
                     // true marks the default clause (no test child)
};

struct Node;
using NodePtr = std::unique_ptr<Node>;

/// One parsed function: parameter names plus body. Stored in the Program so
/// closures can reference them without owning tree fragments.
struct FunctionDef {
  std::string name;  ///< empty for anonymous function expressions
  std::vector<std::string> params;
  NodePtr body;      ///< a kBlock
};

struct Node {
  explicit Node(NodeType t) : type(t) {}
  NodeType type;
  double number_value = 0.0;
  bool bool_value = false;
  std::string string_value;
  std::vector<std::string> keys;  ///< object literal keys
  std::vector<NodePtr> children;
  size_t function_index = 0;      ///< for kFunctionExpr / kFunctionDecl
  int line = 0;                   ///< 1-based source line, for diagnostics
};

/// A parsed script: the statement tree plus the function tables it refers
/// to. Owns everything; closures hold raw FunctionDef pointers into it, so
/// a Program must outlive any Interpreter values created from it.
struct Program {
  NodePtr root;  ///< kProgram
  std::vector<std::unique_ptr<FunctionDef>> functions;
};

}  // namespace script
}  // namespace discsec

#endif  // DISCSEC_SCRIPT_AST_H_
