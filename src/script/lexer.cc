#include "script/lexer.h"

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <set>

namespace discsec {
namespace script {

bool IsKeyword(std::string_view word) {
  static const std::set<std::string, std::less<>> kKeywords = {
      "var",    "function", "if",       "else",  "while",  "for",
      "return", "break",    "continue", "true",  "false",  "null",
      "undefined", "typeof", "new",     "this",  "in",     "do",
      "switch", "case",     "default"};
  return kKeywords.count(word) > 0;
}

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}

bool IsIdentPart(char c) {
  return IsIdentStart(c) || std::isdigit(static_cast<unsigned char>(c));
}

// Longest-match-first punctuator table.
const char* kPunctuators3[] = {"===", "!=="};
const char* kPunctuators2[] = {"==", "!=", "<=", ">=", "&&", "||", "+=",
                               "-=", "*=", "/=", "%=", "++", "--"};
const char kPunctuators1[] = "+-*/%=<>!(){}[];,.?:";

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view source) {
  std::vector<Token> tokens;
  size_t pos = 0;
  int line = 1;
  auto error = [&](const std::string& what) {
    return Status::ParseError(what + " at line " + std::to_string(line));
  };

  while (pos < source.size()) {
    char c = source[pos];
    if (c == '\n') {
      ++line;
      ++pos;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      ++pos;
      continue;
    }
    // Comments.
    if (c == '/' && pos + 1 < source.size()) {
      if (source[pos + 1] == '/') {
        while (pos < source.size() && source[pos] != '\n') ++pos;
        continue;
      }
      if (source[pos + 1] == '*') {
        pos += 2;
        while (pos + 1 < source.size() &&
               !(source[pos] == '*' && source[pos + 1] == '/')) {
          if (source[pos] == '\n') ++line;
          ++pos;
        }
        if (pos + 1 >= source.size()) return error("unterminated comment");
        pos += 2;
        continue;
      }
    }
    // Numbers.
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && pos + 1 < source.size() &&
         std::isdigit(static_cast<unsigned char>(source[pos + 1])))) {
      Token token;
      token.type = TokenType::kNumber;
      token.line = line;
      size_t start = pos;
      if (c == '0' && pos + 1 < source.size() &&
          (source[pos + 1] == 'x' || source[pos + 1] == 'X')) {
        pos += 2;
        while (pos < source.size() &&
               std::isxdigit(static_cast<unsigned char>(source[pos]))) {
          ++pos;
        }
        token.number = static_cast<double>(
            std::strtoull(std::string(source.substr(start + 2, pos - start - 2))
                              .c_str(),
                          nullptr, 16));
      } else {
        while (pos < source.size() &&
               (std::isdigit(static_cast<unsigned char>(source[pos])) ||
                source[pos] == '.' || source[pos] == 'e' ||
                source[pos] == 'E' ||
                ((source[pos] == '+' || source[pos] == '-') && pos > start &&
                 (source[pos - 1] == 'e' || source[pos - 1] == 'E')))) {
          ++pos;
        }
        token.number =
            std::strtod(std::string(source.substr(start, pos - start)).c_str(),
                        nullptr);
      }
      tokens.push_back(std::move(token));
      continue;
    }
    // Strings.
    if (c == '"' || c == '\'') {
      char quote = c;
      ++pos;
      Token token;
      token.type = TokenType::kString;
      token.line = line;
      std::string value;
      while (pos < source.size() && source[pos] != quote) {
        char ch = source[pos];
        if (ch == '\n') return error("newline in string literal");
        if (ch == '\\') {
          ++pos;
          if (pos >= source.size()) return error("unterminated escape");
          char esc = source[pos];
          switch (esc) {
            case 'n':
              value.push_back('\n');
              break;
            case 't':
              value.push_back('\t');
              break;
            case 'r':
              value.push_back('\r');
              break;
            case '\\':
            case '"':
            case '\'':
              value.push_back(esc);
              break;
            case '0':
              value.push_back('\0');
              break;
            default:
              value.push_back(esc);  // lenient: unknown escapes pass through
          }
          ++pos;
        } else {
          value.push_back(ch);
          ++pos;
        }
      }
      if (pos >= source.size()) return error("unterminated string literal");
      ++pos;  // closing quote
      token.string = std::move(value);
      tokens.push_back(std::move(token));
      continue;
    }
    // Identifiers and keywords.
    if (IsIdentStart(c)) {
      size_t start = pos;
      while (pos < source.size() && IsIdentPart(source[pos])) ++pos;
      Token token;
      token.line = line;
      token.text = std::string(source.substr(start, pos - start));
      token.type =
          IsKeyword(token.text) ? TokenType::kKeyword : TokenType::kIdentifier;
      tokens.push_back(std::move(token));
      continue;
    }
    // Punctuators (longest match).
    bool matched = false;
    for (const char* p : kPunctuators3) {
      if (source.compare(pos, 3, p) == 0) {
        tokens.push_back({TokenType::kPunctuator, p, 0.0, "", line});
        pos += 3;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    for (const char* p : kPunctuators2) {
      if (source.compare(pos, 2, p) == 0) {
        tokens.push_back({TokenType::kPunctuator, p, 0.0, "", line});
        pos += 2;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    if (std::strchr(kPunctuators1, c) != nullptr && c != '\0') {
      tokens.push_back(
          {TokenType::kPunctuator, std::string(1, c), 0.0, "", line});
      ++pos;
      continue;
    }
    return error(std::string("unexpected character '") + c + "'");
  }
  tokens.push_back({TokenType::kEnd, "", 0.0, "", line});
  return tokens;
}

}  // namespace script
}  // namespace discsec
