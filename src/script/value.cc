#include "script/value.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace discsec {
namespace script {

bool Value::Truthy() const {
  switch (kind_) {
    case Kind::kUndefined:
    case Kind::kNull:
      return false;
    case Kind::kBoolean:
      return boolean_;
    case Kind::kNumber:
      return number_ != 0.0 && !std::isnan(number_);
    case Kind::kString:
      return !string_->empty();
    default:
      return true;
  }
}

std::string Value::ToDisplayString() const {
  switch (kind_) {
    case Kind::kUndefined:
      return "undefined";
    case Kind::kNull:
      return "null";
    case Kind::kBoolean:
      return boolean_ ? "true" : "false";
    case Kind::kNumber: {
      if (std::isnan(number_)) return "NaN";
      if (std::isinf(number_)) return number_ > 0 ? "Infinity" : "-Infinity";
      // Integers print without a decimal point, like ECMAScript.
      if (number_ == static_cast<double>(static_cast<long long>(number_)) &&
          std::fabs(number_) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(number_));
        return buf;
      }
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", number_);
      return buf;
    }
    case Kind::kString:
      return *string_;
    case Kind::kObject:
      return "[object Object]";
    case Kind::kArray: {
      std::string out;
      for (size_t i = 0; i < array_->size(); ++i) {
        if (i > 0) out += ",";
        out += (*array_)[i].ToDisplayString();
      }
      return out;
    }
    case Kind::kFunction:
    case Kind::kNative:
      return "[function]";
  }
  return "";
}

double Value::ToNumber() const {
  switch (kind_) {
    case Kind::kUndefined:
      return std::nan("");
    case Kind::kNull:
      return 0.0;
    case Kind::kBoolean:
      return boolean_ ? 1.0 : 0.0;
    case Kind::kNumber:
      return number_;
    case Kind::kString: {
      if (string_->empty()) return 0.0;
      char* end = nullptr;
      double v = std::strtod(string_->c_str(), &end);
      // Trailing garbage makes the conversion NaN, per ToNumber.
      while (end != nullptr && (*end == ' ' || *end == '\t')) ++end;
      if (end == nullptr || *end != '\0') return std::nan("");
      return v;
    }
    default:
      return std::nan("");
  }
}

bool Value::StrictEquals(const Value& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kUndefined:
    case Kind::kNull:
      return true;
    case Kind::kBoolean:
      return boolean_ == other.boolean_;
    case Kind::kNumber:
      return number_ == other.number_;
    case Kind::kString:
      return *string_ == *other.string_;
    case Kind::kObject:
      return object_ == other.object_;
    case Kind::kArray:
      return array_ == other.array_;
    case Kind::kFunction:
      return closure_ == other.closure_;
    case Kind::kNative:
      return native_ == other.native_;
  }
  return false;
}

const char* Value::KindName() const {
  switch (kind_) {
    case Kind::kUndefined:
      return "undefined";
    case Kind::kNull:
      return "null";
    case Kind::kBoolean:
      return "boolean";
    case Kind::kNumber:
      return "number";
    case Kind::kString:
      return "string";
    case Kind::kObject:
      return "object";
    case Kind::kArray:
      return "array";
    case Kind::kFunction:
    case Kind::kNative:
      return "function";
  }
  return "?";
}

}  // namespace script
}  // namespace discsec
