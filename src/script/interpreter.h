#ifndef DISCSEC_SCRIPT_INTERPRETER_H_
#define DISCSEC_SCRIPT_INTERPRETER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "script/ast.h"
#include "script/value.h"

namespace discsec {
namespace script {

/// Execution limits for the embedded player profile (§8: the prototype ran
/// on a CE reference platform; a real engine must bound rogue scripts —
/// the §1 "malicious application" threat).
struct Limits {
  /// Maximum evaluation steps (each node visit counts one). 0 = unlimited.
  uint64_t max_steps = 1'000'000;
  /// Maximum function-call depth.
  size_t max_call_depth = 128;
};

/// A tree-walking interpreter for the ECMAScript subset — the Code part of
/// the Application Manifest (paper §2/§8, script = ECMAScript).
///
/// The host (the Interactive Application Engine) registers native functions
/// and objects as globals before running; scripts call them like ordinary
/// functions. Errors are Status values (no exceptions), including
/// ResourceExhausted when a limit trips.
class Interpreter {
 public:
  explicit Interpreter(Limits limits = Limits());

  /// Defines a global (host object, constant, native function).
  void DefineGlobal(const std::string& name, Value value);

  /// Shorthand for DefineGlobal(name, Value::Native(fn)).
  void DefineNative(const std::string& name, NativeFn fn);

  /// Parses and runs a source text in the global scope. Returns the value
  /// of the last expression statement (like a REPL), or undefined.
  /// The parsed Program is retained by the interpreter (closures point into
  /// it).
  Result<Value> Run(const std::string& source);

  /// Calls a previously defined global function (e.g. an event handler the
  /// script registered by name).
  Result<Value> CallGlobal(const std::string& name,
                           const std::vector<Value>& args);

  /// Calls any callable value.
  Result<Value> CallValue(const Value& callee, const std::vector<Value>& args);

  /// Reads a global variable (undefined when unbound).
  Value GetGlobal(const std::string& name);

  /// Steps consumed so far (for the embedded-profile benchmarks).
  uint64_t steps_used() const { return steps_used_; }
  void ResetStepBudget() { steps_used_ = 0; }

 private:
  struct Flow;  // control-flow signal (return/break/continue)

  Result<Value> EvalNode(const Node& node, std::shared_ptr<Environment> env,
                         Flow* flow);
  Result<Value> EvalBinary(const Node& node, const Value& lhs,
                           const Value& rhs);
  Status AssignTo(const Node& target, Value value,
                  std::shared_ptr<Environment> env, Flow* flow);
  Status Tick(const Node& node);
  const FunctionDef* FindFunction(size_t index) const;

  Limits limits_;
  uint64_t steps_used_ = 0;
  size_t call_depth_ = 0;
  std::shared_ptr<Environment> globals_;
  std::vector<Program> programs_;  ///< all sources run, kept alive
  /// Interpreter-wide function table: each parsed program's functions are
  /// appended here and its AST's indices rebased, so closures from any
  /// earlier Run() keep resolving correctly.
  std::vector<const FunctionDef*> functions_;
};

}  // namespace script
}  // namespace discsec

#endif  // DISCSEC_SCRIPT_INTERPRETER_H_
