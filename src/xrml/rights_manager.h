#ifndef DISCSEC_XRML_RIGHTS_MANAGER_H_
#define DISCSEC_XRML_RIGHTS_MANAGER_H_

#include <map>
#include <mutex>

#include "crypto/rsa.h"
#include "pki/cert_store.h"
#include "xrml/decision_cache.h"
#include "xrml/license.h"

namespace discsec {
namespace xrml {

/// Signs licenses on the issuer side (an XML-DSig enveloped signature over
/// the license document, carrying the issuer's certificate chain).
Result<std::string> IssueSignedLicense(
    const License& license, const crypto::RsaPrivateKey& issuer_key,
    const std::vector<pki::Certificate>& issuer_chain);

/// The player-side rights store and decision point. Licenses are only
/// admitted after their signature validates against the trust store; the
/// evaluator then answers "may `principal` exercise `right` on `resource`
/// now?", enforcing validity windows, territories and (stateful) exercise
/// limits.
///
/// Thread-safe: the license store and exercise counters are mutex-guarded,
/// so the parallel per-track verification in player::PlayDisc may exercise
/// rights for distinct tracks concurrently. Exercise-limit accounting is
/// exact under concurrency — each successful Exercise consumes exactly one
/// use — though which of several racing exercisers gets the last use of a
/// nearly-exhausted grant depends on the schedule.
class RightsManager {
 public:
  RightsManager(const pki::CertStore* trust, int64_t now)
      : trust_(trust), now_(now) {}

  /// Attaches a decision cache for IsPermitted verdicts (not owned; must
  /// outlive this manager). Every store mutation — license install, counted
  /// exercise — advances the cache generation while mu_ is held, so a
  /// cached verdict can never outlive the store state it was computed from.
  void set_decision_cache(DecisionCache* cache) { cache_ = cache; }

  /// Parses, signature-checks and installs a signed license. Rejects
  /// licenses whose signature does not anchor in the trust store, whose
  /// signature does not cover the license root (fragment signatures are a
  /// relocation vector), or whose body declares duplicate Ids.
  Status InstallLicense(const std::string& signed_license_xml);

  /// Installs without signature checking (e.g. a license mastered onto an
  /// authenticated disc).
  Status InstallUnsigned(const License& license);

  size_t LicenseCount() const {
    std::lock_guard<std::mutex> lock(mu_);
    return licenses_.size();
  }

  /// Whether any installed grant permits the exercise. On success the
  /// exercise is *counted* against any exercise-limited grant used.
  Status Exercise(Right right, const std::string& resource,
                  const ExerciseContext& context);

  /// Pure query (no counting).
  bool IsPermitted(Right right, const std::string& resource,
                   const ExerciseContext& context) const;

  /// Uses recorded against an exercise-limited grant, keyed by
  /// (license, grant index).
  uint32_t UsesRecorded(const std::string& license_id,
                        size_t grant_index) const;

 private:
  /// Requires mu_ held by the caller.
  const Grant* FindGrant(Right right, const std::string& resource,
                         const ExerciseContext& context,
                         const License** license_out,
                         size_t* index_out) const;

  const pki::CertStore* trust_;
  int64_t now_;
  DecisionCache* cache_ = nullptr;  // optional, not owned
  mutable std::mutex mu_;
  std::vector<License> licenses_;                          // guarded by mu_
  std::map<std::pair<std::string, size_t>, uint32_t> uses_;  // guarded by mu_
};

}  // namespace xrml
}  // namespace discsec

#endif  // DISCSEC_XRML_RIGHTS_MANAGER_H_
