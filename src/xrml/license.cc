#include "xrml/license.h"

#include "xml/parser.h"
#include "xml/serializer.h"

namespace discsec {
namespace xrml {

const char* RightName(Right right) {
  switch (right) {
    case Right::kPlay:
      return "play";
    case Right::kExecute:
      return "execute";
    case Right::kCopy:
      return "copy";
    case Right::kExtract:
      return "extract";
  }
  return "?";
}

Result<Right> ParseRight(std::string_view name) {
  if (name == "play") return Right::kPlay;
  if (name == "execute") return Right::kExecute;
  if (name == "copy") return Right::kCopy;
  if (name == "extract") return Right::kExtract;
  return Status::ParseError("unknown right: " + std::string(name));
}

std::unique_ptr<xml::Element> License::ToXml() const {
  auto root = std::make_unique<xml::Element>("license");
  root->SetAttribute("licenseId", license_id);
  root->AppendElement("issuer")->SetTextContent(issuer);
  for (const Grant& grant : grants) {
    xml::Element* g = root->AppendElement("grant");
    g->AppendElement("keyHolder")->SetTextContent(grant.key_holder);
    g->AppendElement("right")->SetTextContent(RightName(grant.right));
    g->AppendElement("resource")->SetTextContent(grant.resource);
    const Conditions& c = grant.conditions;
    if (c.not_before || c.not_after || c.exercise_limit ||
        !c.territories.empty()) {
      xml::Element* conditions = g->AppendElement("conditions");
      if (c.not_before || c.not_after) {
        xml::Element* window = conditions->AppendElement("validityInterval");
        if (c.not_before) {
          window->SetAttribute("notBefore", std::to_string(*c.not_before));
        }
        if (c.not_after) {
          window->SetAttribute("notAfter", std::to_string(*c.not_after));
        }
      }
      if (c.exercise_limit) {
        conditions->AppendElement("exerciseLimit")
            ->SetAttribute("count", std::to_string(*c.exercise_limit));
      }
      for (const std::string& territory : c.territories) {
        conditions->AppendElement("territory")
            ->SetAttribute("code", territory);
      }
    }
  }
  return root;
}

std::string License::ToXmlString() const {
  xml::Document doc = xml::Document::WithRoot(ToXml());
  xml::SerializeOptions options;
  options.xml_declaration = false;
  return xml::Serialize(doc, options);
}

Result<License> License::FromXml(const xml::Element& element) {
  if (element.LocalName() != "license") {
    return Status::ParseError("expected <license>");
  }
  License out;
  const std::string* id = element.GetAttribute("licenseId");
  if (id == nullptr) return Status::ParseError("license needs licenseId");
  out.license_id = *id;
  const xml::Element* issuer = element.FirstChildElementByLocalName("issuer");
  if (issuer == nullptr) return Status::ParseError("license needs issuer");
  out.issuer = issuer->TextContent();
  for (const xml::Element* g : element.ChildElements("grant")) {
    Grant grant;
    const xml::Element* key_holder =
        g->FirstChildElementByLocalName("keyHolder");
    const xml::Element* right = g->FirstChildElementByLocalName("right");
    const xml::Element* resource =
        g->FirstChildElementByLocalName("resource");
    if (key_holder == nullptr || right == nullptr || resource == nullptr) {
      return Status::ParseError("grant needs keyHolder, right, resource");
    }
    grant.key_holder = key_holder->TextContent();
    DISCSEC_ASSIGN_OR_RETURN(grant.right, ParseRight(right->TextContent()));
    grant.resource = resource->TextContent();
    const xml::Element* conditions =
        g->FirstChildElementByLocalName("conditions");
    if (conditions != nullptr) {
      const xml::Element* window =
          conditions->FirstChildElementByLocalName("validityInterval");
      if (window != nullptr) {
        if (const std::string* nb = window->GetAttribute("notBefore")) {
          grant.conditions.not_before = std::strtoll(nb->c_str(), nullptr, 10);
        }
        if (const std::string* na = window->GetAttribute("notAfter")) {
          grant.conditions.not_after = std::strtoll(na->c_str(), nullptr, 10);
        }
      }
      const xml::Element* limit =
          conditions->FirstChildElementByLocalName("exerciseLimit");
      if (limit != nullptr) {
        const std::string* count = limit->GetAttribute("count");
        if (count == nullptr) {
          return Status::ParseError("exerciseLimit needs count");
        }
        grant.conditions.exercise_limit =
            static_cast<uint32_t>(std::strtoul(count->c_str(), nullptr, 10));
      }
      for (const xml::Element* territory :
           conditions->ChildElements("territory")) {
        const std::string* code = territory->GetAttribute("code");
        if (code != nullptr) grant.conditions.territories.push_back(*code);
      }
    }
    out.grants.push_back(std::move(grant));
  }
  return out;
}

Result<License> License::FromXmlString(std::string_view text) {
  DISCSEC_ASSIGN_OR_RETURN(xml::Document doc, xml::Parse(text));
  return FromXml(*doc.root());
}

}  // namespace xrml
}  // namespace discsec
