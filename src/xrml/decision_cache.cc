#include "xrml/decision_cache.h"

namespace discsec {
namespace xrml {

DecisionCache::DecisionCache(Options options) : options_(options) {
  if (options_.shards == 0) options_.shards = 1;
  if (options_.max_entries == 0) options_.max_entries = 1;
  per_shard_budget_ = (options_.max_entries + options_.shards - 1) /
                      options_.shards;
  if (per_shard_budget_ == 0) per_shard_budget_ = 1;
  shards_.reserve(options_.shards);
  for (size_t i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::string DecisionCache::MakeKey(Right right, const std::string& resource,
                                   const ExerciseContext& context) {
  // Length-prefixed fields: distinct queries can never serialize to the
  // same key, so a hit can never hand one context another context's
  // verdict.
  std::string out = RightName(right);
  auto append = [&out](const std::string& field) {
    out += '|';
    out += std::to_string(field.size());
    out += ':';
    out += field;
  };
  append(resource);
  append(context.principal);
  append(context.territory);
  out += '|';
  out += std::to_string(context.now);
  return out;
}

DecisionCache::Shard& DecisionCache::ShardFor(const std::string& key) {
  size_t h = std::hash<std::string>{}(key);
  return *shards_[h % shards_.size()];
}

void DecisionCache::Invalidate() {
  generation_.fetch_add(1, std::memory_order_acq_rel);
  invalidations_.fetch_add(1, std::memory_order_relaxed);
}

std::optional<bool> DecisionCache::Lookup(const std::string& key) {
  uint64_t current = generation();
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(key);
  if (it == shard.entries.end()) {
    ++shard.misses;
    return std::nullopt;
  }
  if (it->second.generation != current) {
    // A verdict from a previous store generation: drop it on sight.
    shard.lru.erase(it->second.lru_pos);
    shard.entries.erase(it);
    ++shard.stale_drops;
    ++shard.misses;
    return std::nullopt;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
  ++shard.hits;
  return it->second.permitted;
}

void DecisionCache::Insert(const std::string& key, bool permitted,
                           uint64_t generation) {
  if (generation != this->generation()) return;  // already stale
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(key);
  if (it != shard.entries.end()) {
    it->second.permitted = permitted;
    it->second.generation = generation;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
    return;
  }
  shard.lru.push_front(key);
  Shard::Entry entry;
  entry.permitted = permitted;
  entry.generation = generation;
  entry.lru_pos = shard.lru.begin();
  shard.entries.emplace(key, entry);
  while (shard.entries.size() > per_shard_budget_) {
    const std::string& victim = shard.lru.back();
    shard.entries.erase(victim);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

DecisionCacheStats DecisionCache::stats() const {
  DecisionCacheStats out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    out.hits += shard->hits;
    out.misses += shard->misses;
    out.stale_drops += shard->stale_drops;
    out.evictions += shard->evictions;
    out.entries += shard->entries.size();
  }
  out.invalidations = invalidations_.load(std::memory_order_relaxed);
  return out;
}

size_t DecisionCache::size() const {
  size_t out = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    out += shard->entries.size();
  }
  return out;
}

void DecisionCache::Clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->entries.clear();
    shard->lru.clear();
  }
}

}  // namespace xrml
}  // namespace discsec
