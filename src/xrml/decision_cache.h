#ifndef DISCSEC_XRML_DECISION_CACHE_H_
#define DISCSEC_XRML_DECISION_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "xrml/license.h"

namespace discsec {
namespace xrml {

/// Counter snapshot for telemetry (bridged into MetricsRegistry by
/// obs::AbsorbDecisionCacheStats) and the bench_xrml cold/warm comparison.
struct DecisionCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  /// Lookups that found an entry from a previous generation (counted as
  /// misses too; the stale entry is dropped on sight).
  uint64_t stale_drops = 0;
  uint64_t evictions = 0;
  /// Times Invalidate() advanced the generation.
  uint64_t invalidations = 0;
  size_t entries = 0;
};

/// A sharded, generation-versioned cache of RightsManager::IsPermitted
/// verdicts — the PEP-side answer to fleet-scale query rates, where the
/// same (principal, right, resource, time, territory) tuple is asked for
/// every track of every disc.
///
/// Correctness model: the cache never invalidates entries in place.
/// Instead every mutation of the rights store (license install, counted
/// exercise) bumps a single atomic *generation*; entries are tagged with
/// the generation they were computed under and a lookup only returns an
/// entry whose tag equals the current generation. A verdict can therefore
/// never survive a store mutation, which is exactly the property the
/// differential harness asserts (cache-on ≡ cache-off on every query,
/// including under concurrent exercise of nearly-exhausted grants).
///
/// Sharded LRU: the key hash picks a shard; each shard has its own mutex
/// and LRU list so concurrent PEP queries mostly touch different locks.
/// Thread-safe throughout.
class DecisionCache {
 public:
  struct Options {
    /// Total entry budget across all shards.
    size_t max_entries = 8192;
    /// Number of independent LRU shards (rounded up to at least 1).
    size_t shards = 8;
  };

  DecisionCache() : DecisionCache(Options()) {}
  explicit DecisionCache(Options options);

  /// Unambiguous cache key for a decision query (length-prefixed fields, so
  /// no two distinct queries can collide).
  static std::string MakeKey(Right right, const std::string& resource,
                             const ExerciseContext& context);

  /// The current store generation. RightsManager reads this under its own
  /// mutex (so the value is ordered against the verdict computation) and
  /// passes it to Insert.
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  /// Advances the generation, logically invalidating every cached verdict.
  /// Stale entries are dropped lazily when a lookup encounters them.
  void Invalidate();

  /// The cached verdict for `key`, or nullopt on miss / stale entry.
  std::optional<bool> Lookup(const std::string& key);

  /// Inserts a verdict computed under `generation`. A no-op when the store
  /// has moved on since (the verdict may describe a dead state).
  void Insert(const std::string& key, bool permitted, uint64_t generation);

  DecisionCacheStats stats() const;
  size_t size() const;
  void Clear();

  const Options& options() const { return options_; }

 private:
  struct Shard {
    std::mutex mu;
    /// Most-recent-first list of keys; the map points into it.
    std::list<std::string> lru;
    struct Entry {
      bool permitted = false;
      uint64_t generation = 0;
      std::list<std::string>::iterator lru_pos;
    };
    std::unordered_map<std::string, Entry> entries;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t stale_drops = 0;
    uint64_t evictions = 0;
  };

  Shard& ShardFor(const std::string& key);

  Options options_;
  size_t per_shard_budget_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> generation_{0};
  std::atomic<uint64_t> invalidations_{0};
};

}  // namespace xrml
}  // namespace discsec

#endif  // DISCSEC_XRML_DECISION_CACHE_H_
