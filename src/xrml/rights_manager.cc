#include "xrml/rights_manager.h"

#include "xml/parser.h"
#include "xml/serializer.h"
#include "xmldsig/signer.h"
#include "xmldsig/verifier.h"

namespace discsec {
namespace xrml {

Result<std::string> IssueSignedLicense(
    const License& license, const crypto::RsaPrivateKey& issuer_key,
    const std::vector<pki::Certificate>& issuer_chain) {
  xml::Document doc = xml::Document::WithRoot(license.ToXml());
  xmldsig::KeyInfoSpec key_info;
  key_info.certificate_chain = issuer_chain;
  xmldsig::Signer signer(xmldsig::SigningKey::Rsa(issuer_key), key_info);
  DISCSEC_RETURN_IF_ERROR(signer.SignEnveloped(&doc, doc.root()).status());
  xml::SerializeOptions options;
  options.xml_declaration = false;
  return xml::Serialize(doc, options);
}

Status RightsManager::InstallLicense(const std::string& signed_license_xml) {
  DISCSEC_ASSIGN_OR_RETURN(xml::Document doc,
                           xml::Parse(signed_license_xml));
  xmldsig::VerifyOptions options;
  options.cert_store = trust_;
  options.now = now_;
  // A license signature must cover the whole license body; a signature over
  // an attacker-chosen fragment leaves its siblings mutable.
  options.require_signed_root = true;
  DISCSEC_RETURN_IF_ERROR(
      xmldsig::Verifier::VerifyFirstSignature(doc, options)
          .status()
          .WithContext("license signature"));
  xml::IdRegistry ids(doc);
  if (ids.HasDuplicates()) {
    return Status::VerificationFailed(
        "duplicate Id '" + ids.duplicate_ids().front() +
        "' in license body (duplicate-ID wrapping)");
  }
  DISCSEC_ASSIGN_OR_RETURN(License license, License::FromXml(*doc.root()));
  return InstallUnsigned(license);
}

Status RightsManager::InstallUnsigned(const License& license) {
  if (license.license_id.empty()) {
    return Status::InvalidArgument("license needs an id");
  }
  std::lock_guard<std::mutex> lock(mu_);
  licenses_.push_back(license);
  if (cache_ != nullptr) cache_->Invalidate();
  return Status::OK();
}

namespace {

bool PrincipalMatches(const std::string& pattern,
                      const std::string& principal) {
  return pattern == "*" || pattern == principal;
}

bool ResourceMatches(const std::string& pattern,
                     const std::string& resource) {
  return pattern == "*" || pattern == resource;
}

}  // namespace

const Grant* RightsManager::FindGrant(Right right,
                                      const std::string& resource,
                                      const ExerciseContext& context,
                                      const License** license_out,
                                      size_t* index_out) const {
  for (const License& license : licenses_) {
    for (size_t i = 0; i < license.grants.size(); ++i) {
      const Grant& grant = license.grants[i];
      if (grant.right != right) continue;
      if (!PrincipalMatches(grant.key_holder, context.principal)) continue;
      if (!ResourceMatches(grant.resource, resource)) continue;
      const Conditions& c = grant.conditions;
      if (c.not_before && context.now < *c.not_before) continue;
      if (c.not_after && context.now > *c.not_after) continue;
      if (!c.territories.empty()) {
        bool in_territory = false;
        for (const std::string& code : c.territories) {
          if (code == context.territory) {
            in_territory = true;
            break;
          }
        }
        if (!in_territory) continue;
      }
      if (c.exercise_limit) {
        auto it = uses_.find({license.license_id, i});
        uint32_t used = it == uses_.end() ? 0 : it->second;
        if (used >= *c.exercise_limit) continue;
      }
      *license_out = &license;
      *index_out = i;
      return &grant;
    }
  }
  return nullptr;
}

bool RightsManager::IsPermitted(Right right, const std::string& resource,
                                const ExerciseContext& context) const {
  const License* license = nullptr;
  size_t index = 0;
  if (cache_ == nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    return FindGrant(right, resource, context, &license, &index) != nullptr;
  }
  std::string key = DecisionCache::MakeKey(right, resource, context);
  if (std::optional<bool> hit = cache_->Lookup(key)) return *hit;
  uint64_t generation = 0;
  bool permitted = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // The generation is read under mu_, alongside the verdict computation:
    // any later mutation bumps it (also under mu_), so this Insert — and
    // every Lookup after the mutation — will see the entry as stale rather
    // than serve a verdict about a dead store state.
    generation = cache_->generation();
    permitted = FindGrant(right, resource, context, &license, &index) != nullptr;
  }
  cache_->Insert(key, permitted, generation);
  return permitted;
}

Status RightsManager::Exercise(Right right, const std::string& resource,
                               const ExerciseContext& context) {
  std::lock_guard<std::mutex> lock(mu_);
  const License* license = nullptr;
  size_t index = 0;
  const Grant* grant = FindGrant(right, resource, context, &license, &index);
  if (grant == nullptr) {
    return Status::PermissionDenied(
        std::string("no license grants '") + RightName(right) + "' on '" +
        resource + "' to " + context.principal);
  }
  if (grant->conditions.exercise_limit) {
    ++uses_[{license->license_id, index}];
    // The store's observable decision state changed (a use was consumed),
    // so cached verdicts must not survive.
    if (cache_ != nullptr) cache_->Invalidate();
  }
  return Status::OK();
}

uint32_t RightsManager::UsesRecorded(const std::string& license_id,
                                     size_t grant_index) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = uses_.find({license_id, grant_index});
  return it == uses_.end() ? 0 : it->second;
}

}  // namespace xrml
}  // namespace discsec
