#ifndef DISCSEC_XRML_LICENSE_H_
#define DISCSEC_XRML_LICENSE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "xml/dom.h"

namespace discsec {
namespace xrml {

/// The paper's §9 future work, implemented: "XRML, an XML based rights
/// management language proposed by OASIS, to express digital rights for the
/// usage of markup-based applications and resources". This module provides
/// an XrML-flavoured rights-expression subset: licenses made of grants
/// (key holder x right x resource x conditions), serialized as XML and
/// signed by the issuer with XML-DSig.

/// Rights a license can grant over disc content and applications.
enum class Right {
  kPlay,      ///< play back AV content
  kExecute,   ///< run an interactive application
  kCopy,      ///< make a local copy
  kExtract,   ///< extract a portion (clips, images)
};

const char* RightName(Right right);
Result<Right> ParseRight(std::string_view name);

/// Conditions constraining a grant; absent fields do not constrain.
struct Conditions {
  std::optional<int64_t> not_before;   ///< validity start (Unix seconds)
  std::optional<int64_t> not_after;    ///< validity end
  std::optional<uint32_t> exercise_limit;  ///< max uses (stateful)
  std::vector<std::string> territories;    ///< allowed territory codes
};

/// One grant: the key holder (principal, e.g. a device id or a player
/// model class) may exercise `right` over `resource`.
struct Grant {
  std::string key_holder;   ///< "*" grants to any principal
  Right right = Right::kPlay;
  std::string resource;     ///< cluster/track/manifest id; "*" = any
  Conditions conditions;
};

/// A license: grants plus issuer identity.
struct License {
  std::string license_id;
  std::string issuer;
  std::vector<Grant> grants;

  std::unique_ptr<xml::Element> ToXml() const;
  std::string ToXmlString() const;
  static Result<License> FromXml(const xml::Element& element);
  static Result<License> FromXmlString(std::string_view text);
};

/// The context a rights decision is made in.
struct ExerciseContext {
  std::string principal;    ///< the player/device identity
  int64_t now = 0;
  std::string territory;    ///< the player's region code
};

}  // namespace xrml
}  // namespace discsec

#endif  // DISCSEC_XRML_LICENSE_H_
