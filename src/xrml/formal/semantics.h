#ifndef DISCSEC_XRML_FORMAL_SEMANTICS_H_
#define DISCSEC_XRML_FORMAL_SEMANTICS_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "xrml/license.h"

namespace discsec {
namespace xrml {
namespace formal {

/// An independent implementation of the license-decision semantics, in the
/// style of Halpern & Weissman's "A Formal Foundation for XrML"
/// (arXiv 0808.1215): each license is compiled into a set of closed
/// Horn-style permission rules, and queries are answered by saturating the
/// rule set to a fixed point and testing membership of the Permitted atom.
///
/// This module exists to be a *test oracle* for xrml::RightsManager, so it
/// is deliberately written in a different style from the production
/// evaluator — declarative compile + bottom-up forward chaining over ground
/// atoms, instead of an imperative first-match scan — so the two
/// implementations cannot share bugs. It is pure (no mutexes, no counters):
/// the stateful exercise-limit condition reads an explicit use-count
/// environment supplied by the caller.
///
/// Correspondence with RightsManager (the property the differential harness
/// in tests/xrml_oracle_test.cc asserts):
///
///   RuleSet::Compile(L).Permitted(p, r, res, ctx, uses)
///     == RightsManager{licenses = L, uses_ = uses}.IsPermitted(r, res, ctx)
///
/// for every license set L, use-count environment and query.

/// A ground atom: a predicate applied to constant arguments. The semantics
/// uses a handful of predicates:
///
///   issued(li, license_id, issuer)      — license li exists (a fact)
///   grant_active(li, gi)                — grant gi of license li is
///                                         exercisable in the query context
///   permitted(principal, right, resource)
///
/// plus *environment* predicates interpreted against the query context
/// rather than derived (time_at_or_after, time_at_or_before, territory_in,
/// uses_below).
struct Atom {
  std::string predicate;
  std::vector<std::string> args;

  bool operator==(const Atom& other) const {
    return predicate == other.predicate && args == other.args;
  }
  bool operator<(const Atom& other) const {
    if (predicate != other.predicate) return predicate < other.predicate;
    return args < other.args;
  }

  /// "pred(a, b, c)" — for counterexample diagnostics.
  std::string ToString() const;
};

/// A closed Horn clause: every body atom holds -> the head holds. Facts are
/// clauses with an empty body.
struct Clause {
  Atom head;
  std::vector<Atom> body;
  /// Provenance ("license[2]/grant[0]") surfaced in derivation traces.
  std::string origin;
};

/// The use-count environment the stateful exerciseLimit condition reads,
/// keyed exactly as RightsManager keys its counters: (license id, grant
/// index). Absent keys read as zero.
using UseCounts = std::map<std::pair<std::string, size_t>, uint32_t>;

/// A grant the fixed point derived grant_active for, decoded back to the
/// compiled license set. `limited` distinguishes grants that consume a use
/// when exercised from unconstrained ones.
struct ActiveGrant {
  size_t license_index = 0;  ///< index into the compiled license vector
  size_t grant_index = 0;
  std::string license_id;
  bool limited = false;
};

/// Licenses compiled to Horn rules. Compile once per license set; query
/// freely (the object is immutable and thread-compatible).
class RuleSet {
 public:
  /// Compiles every grant of every license into its issued / grant_active /
  /// permitted clause chain. Wildcards ("*" key holders and resources) stay
  /// symbolic in the clause templates and are grounded against the concrete
  /// query before saturation.
  static RuleSet Compile(const std::vector<License>& licenses);

  /// Does the fixed point derive permitted(principal, right, resource)
  /// under `context` and `uses`? When `trace` is non-null it receives the
  /// origin of every clause that fired, in derivation order.
  bool Permitted(const std::string& principal, Right right,
                 const std::string& resource, const ExerciseContext& context,
                 const UseCounts& uses,
                 std::vector<std::string>* trace = nullptr) const;

  /// Every grant whose grant_active atom is derivable for a query that the
  /// grant's key holder / resource patterns match. The harness uses this to
  /// validate *which* counter an Exercise consumed, independent of the
  /// production first-match rule.
  std::vector<ActiveGrant> ActiveGrants(const std::string& principal,
                                        Right right,
                                        const std::string& resource,
                                        const ExerciseContext& context,
                                        const UseCounts& uses) const;

  size_t clause_count() const { return clauses_.size(); }

 private:
  struct GrantMeta {
    std::string key_holder;
    std::string resource;
    std::string license_id;
    bool limited = false;
  };

  /// Runs the forward-chaining saturation for one grounded query and
  /// returns the derived atom set.
  std::set<Atom> Saturate(const std::string& principal, Right right,
                          const std::string& resource,
                          const ExerciseContext& context,
                          const UseCounts& uses,
                          std::vector<std::string>* trace) const;

  std::vector<Clause> clauses_;
  /// (license_index, grant_index) -> pattern metadata, for grounding and
  /// ActiveGrants decoding.
  std::map<std::pair<size_t, size_t>, GrantMeta> grants_;
};

}  // namespace formal
}  // namespace xrml
}  // namespace discsec

#endif  // DISCSEC_XRML_FORMAL_SEMANTICS_H_
