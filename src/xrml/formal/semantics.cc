#include "xrml/formal/semantics.h"

#include <cstdlib>

namespace discsec {
namespace xrml {
namespace formal {

namespace {

// Environment predicate names. These atoms are interpreted against the
// query context instead of derived by clauses; everything else is derived.
constexpr char kRightIs[] = "right_is";
constexpr char kPrincipalMatches[] = "principal_matches";
constexpr char kResourceMatches[] = "resource_matches";
constexpr char kTimeAtOrAfter[] = "time_at_or_after";
constexpr char kTimeAtOrBefore[] = "time_at_or_before";
constexpr char kTerritoryIn[] = "territory_in";
constexpr char kUsesBelow[] = "uses_below";

// Derived predicate names.
constexpr char kIssued[] = "issued";
constexpr char kGrantActive[] = "grant_active";
constexpr char kPermitted[] = "permitted";

/// The XrML pattern-matching rule shared by key holders and resources:
/// "*" denotes the universal set, anything else denotes itself.
bool PatternCovers(const std::string& pattern, const std::string& value) {
  return pattern == "*" || pattern == value;
}

/// Evaluates an environment atom against the query context. Returns
/// nullopt when `atom` is not an environment predicate (i.e. it must be
/// derived).
std::optional<bool> EvalEnvironment(const Atom& atom,
                                    const std::string& principal, Right right,
                                    const std::string& resource,
                                    const ExerciseContext& context,
                                    const UseCounts& uses) {
  if (atom.predicate == kRightIs) {
    return atom.args.size() == 1 && atom.args[0] == RightName(right);
  }
  if (atom.predicate == kPrincipalMatches) {
    return atom.args.size() == 1 && PatternCovers(atom.args[0], principal);
  }
  if (atom.predicate == kResourceMatches) {
    return atom.args.size() == 1 && PatternCovers(atom.args[0], resource);
  }
  if (atom.predicate == kTimeAtOrAfter) {
    return context.now >=
           std::strtoll(atom.args.at(0).c_str(), nullptr, 10);
  }
  if (atom.predicate == kTimeAtOrBefore) {
    return context.now <=
           std::strtoll(atom.args.at(0).c_str(), nullptr, 10);
  }
  if (atom.predicate == kTerritoryIn) {
    for (const std::string& code : atom.args) {
      if (code == context.territory) return true;
    }
    return false;
  }
  if (atom.predicate == kUsesBelow) {
    const std::string& license_id = atom.args.at(0);
    size_t grant_index = std::strtoull(atom.args.at(1).c_str(), nullptr, 10);
    uint32_t limit = static_cast<uint32_t>(
        std::strtoul(atom.args.at(2).c_str(), nullptr, 10));
    auto it = uses.find({license_id, grant_index});
    uint32_t used = it == uses.end() ? 0 : it->second;
    return used < limit;
  }
  return std::nullopt;
}

}  // namespace

std::string Atom::ToString() const {
  std::string out = predicate;
  out += '(';
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ", ";
    out += args[i];
  }
  out += ')';
  return out;
}

RuleSet RuleSet::Compile(const std::vector<License>& licenses) {
  RuleSet out;
  for (size_t li = 0; li < licenses.size(); ++li) {
    const License& license = licenses[li];
    const std::string li_str = std::to_string(li);
    // Fact: the license exists in the store.
    Clause issued;
    issued.head = {kIssued, {li_str, license.license_id, license.issuer}};
    issued.origin = "license[" + li_str + "]";
    out.clauses_.push_back(std::move(issued));

    for (size_t gi = 0; gi < license.grants.size(); ++gi) {
      const Grant& grant = license.grants[gi];
      const Conditions& c = grant.conditions;
      const std::string gi_str = std::to_string(gi);
      const std::string origin =
          "license[" + li_str + "]/grant[" + gi_str + "]";

      // grant_active(li, gi) :- issued(li, ...), right_is(r),
      //   principal_matches(kh), resource_matches(res), <conditions>.
      Clause active;
      active.head = {kGrantActive, {li_str, gi_str}};
      active.origin = origin;
      active.body.push_back(
          {kIssued, {li_str, license.license_id, license.issuer}});
      active.body.push_back({kRightIs, {RightName(grant.right)}});
      active.body.push_back({kPrincipalMatches, {grant.key_holder}});
      active.body.push_back({kResourceMatches, {grant.resource}});
      if (c.not_before) {
        active.body.push_back({kTimeAtOrAfter,
                               {std::to_string(*c.not_before)}});
      }
      if (c.not_after) {
        active.body.push_back({kTimeAtOrBefore,
                               {std::to_string(*c.not_after)}});
      }
      if (!c.territories.empty()) {
        active.body.push_back({kTerritoryIn, c.territories});
      }
      if (c.exercise_limit) {
        active.body.push_back({kUsesBelow,
                               {license.license_id, gi_str,
                                std::to_string(*c.exercise_limit)}});
      }
      out.clauses_.push_back(std::move(active));

      // permitted(KH, right, RES) :- grant_active(li, gi). The wildcard
      // arguments stay symbolic here and are grounded per query.
      Clause permitted;
      permitted.head = {kPermitted,
                        {grant.key_holder, RightName(grant.right),
                         grant.resource}};
      permitted.body.push_back({kGrantActive, {li_str, gi_str}});
      permitted.origin = origin;
      out.clauses_.push_back(std::move(permitted));

      GrantMeta meta;
      meta.key_holder = grant.key_holder;
      meta.resource = grant.resource;
      meta.license_id = license.license_id;
      meta.limited = c.exercise_limit.has_value();
      out.grants_[{li, gi}] = std::move(meta);
    }
  }
  return out;
}

std::set<Atom> RuleSet::Saturate(const std::string& principal, Right right,
                                 const std::string& resource,
                                 const ExerciseContext& context,
                                 const UseCounts& uses,
                                 std::vector<std::string>* trace) const {
  // Ground the clause templates against the query: a "*" in a permitted
  // head stands for every constant, so under a ground query it denotes the
  // query's own principal/resource.
  std::vector<Clause> grounded = clauses_;
  for (Clause& clause : grounded) {
    if (clause.head.predicate != kPermitted) continue;
    if (clause.head.args[0] == "*") clause.head.args[0] = principal;
    if (clause.head.args[2] == "*") clause.head.args[2] = resource;
  }

  // Bottom-up saturation: fire every clause whose body holds until no new
  // atom is derivable. The clause set is stratified (issued ->
  // grant_active -> permitted) so this converges in a few passes.
  std::set<Atom> derived;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Clause& clause : grounded) {
      if (derived.count(clause.head) != 0) continue;
      bool satisfied = true;
      for (const Atom& atom : clause.body) {
        std::optional<bool> env = EvalEnvironment(atom, principal, right,
                                                  resource, context, uses);
        bool holds = env.has_value() ? *env : derived.count(atom) != 0;
        if (!holds) {
          satisfied = false;
          break;
        }
      }
      if (!satisfied) continue;
      derived.insert(clause.head);
      if (trace != nullptr) {
        trace->push_back(clause.origin + " |- " + clause.head.ToString());
      }
      changed = true;
    }
  }
  return derived;
}

bool RuleSet::Permitted(const std::string& principal, Right right,
                        const std::string& resource,
                        const ExerciseContext& context, const UseCounts& uses,
                        std::vector<std::string>* trace) const {
  std::set<Atom> derived =
      Saturate(principal, right, resource, context, uses, trace);
  Atom query{kPermitted, {principal, RightName(right), resource}};
  return derived.count(query) != 0;
}

std::vector<ActiveGrant> RuleSet::ActiveGrants(
    const std::string& principal, Right right, const std::string& resource,
    const ExerciseContext& context, const UseCounts& uses) const {
  std::set<Atom> derived =
      Saturate(principal, right, resource, context, uses, nullptr);
  std::vector<ActiveGrant> out;
  for (const Atom& atom : derived) {
    if (atom.predicate != kGrantActive) continue;
    ActiveGrant active;
    active.license_index = std::strtoull(atom.args.at(0).c_str(), nullptr, 10);
    active.grant_index = std::strtoull(atom.args.at(1).c_str(), nullptr, 10);
    auto it = grants_.find({active.license_index, active.grant_index});
    if (it == grants_.end()) continue;
    active.license_id = it->second.license_id;
    active.limited = it->second.limited;
    out.push_back(std::move(active));
  }
  return out;
}

}  // namespace formal
}  // namespace xrml
}  // namespace discsec
