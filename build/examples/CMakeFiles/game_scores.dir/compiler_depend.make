# Empty compiler generated dependencies file for game_scores.
# This may be replaced when dependencies are built.
