file(REMOVE_RECURSE
  "CMakeFiles/game_scores.dir/game_scores.cpp.o"
  "CMakeFiles/game_scores.dir/game_scores.cpp.o.d"
  "game_scores"
  "game_scores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/game_scores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
