file(REMOVE_RECURSE
  "CMakeFiles/disc_authoring.dir/disc_authoring.cpp.o"
  "CMakeFiles/disc_authoring.dir/disc_authoring.cpp.o.d"
  "disc_authoring"
  "disc_authoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disc_authoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
