# Empty compiler generated dependencies file for disc_authoring.
# This may be replaced when dependencies are built.
