# Empty dependencies file for interactive_menu.
# This may be replaced when dependencies are built.
