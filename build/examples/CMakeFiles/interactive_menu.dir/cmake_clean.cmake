file(REMOVE_RECURSE
  "CMakeFiles/interactive_menu.dir/interactive_menu.cpp.o"
  "CMakeFiles/interactive_menu.dir/interactive_menu.cpp.o.d"
  "interactive_menu"
  "interactive_menu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interactive_menu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
