# Empty dependencies file for rights_management.
# This may be replaced when dependencies are built.
