file(REMOVE_RECURSE
  "CMakeFiles/rights_management.dir/rights_management.cpp.o"
  "CMakeFiles/rights_management.dir/rights_management.cpp.o.d"
  "rights_management"
  "rights_management.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rights_management.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
