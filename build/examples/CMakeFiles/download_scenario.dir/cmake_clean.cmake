file(REMOVE_RECURSE
  "CMakeFiles/download_scenario.dir/download_scenario.cpp.o"
  "CMakeFiles/download_scenario.dir/download_scenario.cpp.o.d"
  "download_scenario"
  "download_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/download_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
