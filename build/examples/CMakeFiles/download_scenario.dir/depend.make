# Empty dependencies file for download_scenario.
# This may be replaced when dependencies are built.
