file(REMOVE_RECURSE
  "libdiscsec_xrml.a"
)
