file(REMOVE_RECURSE
  "CMakeFiles/discsec_xrml.dir/license.cc.o"
  "CMakeFiles/discsec_xrml.dir/license.cc.o.d"
  "CMakeFiles/discsec_xrml.dir/rights_manager.cc.o"
  "CMakeFiles/discsec_xrml.dir/rights_manager.cc.o.d"
  "libdiscsec_xrml.a"
  "libdiscsec_xrml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discsec_xrml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
