# Empty compiler generated dependencies file for discsec_xrml.
# This may be replaced when dependencies are built.
