file(REMOVE_RECURSE
  "libdiscsec_net.a"
)
