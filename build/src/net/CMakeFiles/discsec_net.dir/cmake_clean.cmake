file(REMOVE_RECURSE
  "CMakeFiles/discsec_net.dir/channel.cc.o"
  "CMakeFiles/discsec_net.dir/channel.cc.o.d"
  "CMakeFiles/discsec_net.dir/server.cc.o"
  "CMakeFiles/discsec_net.dir/server.cc.o.d"
  "libdiscsec_net.a"
  "libdiscsec_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discsec_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
