# Empty compiler generated dependencies file for discsec_net.
# This may be replaced when dependencies are built.
