# Empty dependencies file for discsec_common.
# This may be replaced when dependencies are built.
