file(REMOVE_RECURSE
  "CMakeFiles/discsec_common.dir/base64.cc.o"
  "CMakeFiles/discsec_common.dir/base64.cc.o.d"
  "CMakeFiles/discsec_common.dir/bytes.cc.o"
  "CMakeFiles/discsec_common.dir/bytes.cc.o.d"
  "CMakeFiles/discsec_common.dir/random.cc.o"
  "CMakeFiles/discsec_common.dir/random.cc.o.d"
  "CMakeFiles/discsec_common.dir/status.cc.o"
  "CMakeFiles/discsec_common.dir/status.cc.o.d"
  "CMakeFiles/discsec_common.dir/strings.cc.o"
  "CMakeFiles/discsec_common.dir/strings.cc.o.d"
  "libdiscsec_common.a"
  "libdiscsec_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discsec_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
