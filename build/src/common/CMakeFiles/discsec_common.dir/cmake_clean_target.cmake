file(REMOVE_RECURSE
  "libdiscsec_common.a"
)
