file(REMOVE_RECURSE
  "libdiscsec_svg.a"
)
