file(REMOVE_RECURSE
  "CMakeFiles/discsec_svg.dir/svg.cc.o"
  "CMakeFiles/discsec_svg.dir/svg.cc.o.d"
  "libdiscsec_svg.a"
  "libdiscsec_svg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discsec_svg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
