# Empty dependencies file for discsec_svg.
# This may be replaced when dependencies are built.
