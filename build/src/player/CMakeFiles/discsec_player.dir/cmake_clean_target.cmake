file(REMOVE_RECURSE
  "libdiscsec_player.a"
)
