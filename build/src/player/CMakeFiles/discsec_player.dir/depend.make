# Empty dependencies file for discsec_player.
# This may be replaced when dependencies are built.
