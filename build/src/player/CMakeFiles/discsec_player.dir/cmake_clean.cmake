file(REMOVE_RECURSE
  "CMakeFiles/discsec_player.dir/engine.cc.o"
  "CMakeFiles/discsec_player.dir/engine.cc.o.d"
  "CMakeFiles/discsec_player.dir/host_api.cc.o"
  "CMakeFiles/discsec_player.dir/host_api.cc.o.d"
  "CMakeFiles/discsec_player.dir/playback.cc.o"
  "CMakeFiles/discsec_player.dir/playback.cc.o.d"
  "CMakeFiles/discsec_player.dir/session.cc.o"
  "CMakeFiles/discsec_player.dir/session.cc.o.d"
  "libdiscsec_player.a"
  "libdiscsec_player.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discsec_player.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
