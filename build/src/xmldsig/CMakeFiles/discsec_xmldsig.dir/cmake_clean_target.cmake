file(REMOVE_RECURSE
  "libdiscsec_xmldsig.a"
)
