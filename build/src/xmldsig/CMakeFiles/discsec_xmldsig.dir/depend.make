# Empty dependencies file for discsec_xmldsig.
# This may be replaced when dependencies are built.
