file(REMOVE_RECURSE
  "CMakeFiles/discsec_xmldsig.dir/signer.cc.o"
  "CMakeFiles/discsec_xmldsig.dir/signer.cc.o.d"
  "CMakeFiles/discsec_xmldsig.dir/transforms.cc.o"
  "CMakeFiles/discsec_xmldsig.dir/transforms.cc.o.d"
  "CMakeFiles/discsec_xmldsig.dir/verifier.cc.o"
  "CMakeFiles/discsec_xmldsig.dir/verifier.cc.o.d"
  "libdiscsec_xmldsig.a"
  "libdiscsec_xmldsig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discsec_xmldsig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
