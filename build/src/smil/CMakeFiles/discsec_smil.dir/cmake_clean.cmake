file(REMOVE_RECURSE
  "CMakeFiles/discsec_smil.dir/smil.cc.o"
  "CMakeFiles/discsec_smil.dir/smil.cc.o.d"
  "libdiscsec_smil.a"
  "libdiscsec_smil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discsec_smil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
