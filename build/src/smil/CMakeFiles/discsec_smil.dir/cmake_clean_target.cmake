file(REMOVE_RECURSE
  "libdiscsec_smil.a"
)
