# Empty compiler generated dependencies file for discsec_smil.
# This may be replaced when dependencies are built.
