file(REMOVE_RECURSE
  "CMakeFiles/discsec_xkms.dir/client.cc.o"
  "CMakeFiles/discsec_xkms.dir/client.cc.o.d"
  "CMakeFiles/discsec_xkms.dir/service.cc.o"
  "CMakeFiles/discsec_xkms.dir/service.cc.o.d"
  "libdiscsec_xkms.a"
  "libdiscsec_xkms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discsec_xkms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
