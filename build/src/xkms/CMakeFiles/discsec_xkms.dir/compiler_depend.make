# Empty compiler generated dependencies file for discsec_xkms.
# This may be replaced when dependencies are built.
