file(REMOVE_RECURSE
  "libdiscsec_xkms.a"
)
