file(REMOVE_RECURSE
  "CMakeFiles/discsec_xmlenc.dir/decryptor.cc.o"
  "CMakeFiles/discsec_xmlenc.dir/decryptor.cc.o.d"
  "CMakeFiles/discsec_xmlenc.dir/encryptor.cc.o"
  "CMakeFiles/discsec_xmlenc.dir/encryptor.cc.o.d"
  "libdiscsec_xmlenc.a"
  "libdiscsec_xmlenc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discsec_xmlenc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
