# Empty compiler generated dependencies file for discsec_xmlenc.
# This may be replaced when dependencies are built.
