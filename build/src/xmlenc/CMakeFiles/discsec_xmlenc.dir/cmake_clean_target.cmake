file(REMOVE_RECURSE
  "libdiscsec_xmlenc.a"
)
