file(REMOVE_RECURSE
  "libdiscsec_xslt.a"
)
