# Empty dependencies file for discsec_xslt.
# This may be replaced when dependencies are built.
