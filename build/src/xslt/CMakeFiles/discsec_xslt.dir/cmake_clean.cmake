file(REMOVE_RECURSE
  "CMakeFiles/discsec_xslt.dir/xslt.cc.o"
  "CMakeFiles/discsec_xslt.dir/xslt.cc.o.d"
  "libdiscsec_xslt.a"
  "libdiscsec_xslt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discsec_xslt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
