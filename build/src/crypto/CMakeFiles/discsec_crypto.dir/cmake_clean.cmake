file(REMOVE_RECURSE
  "CMakeFiles/discsec_crypto.dir/aes.cc.o"
  "CMakeFiles/discsec_crypto.dir/aes.cc.o.d"
  "CMakeFiles/discsec_crypto.dir/bigint.cc.o"
  "CMakeFiles/discsec_crypto.dir/bigint.cc.o.d"
  "CMakeFiles/discsec_crypto.dir/digest.cc.o"
  "CMakeFiles/discsec_crypto.dir/digest.cc.o.d"
  "CMakeFiles/discsec_crypto.dir/hmac.cc.o"
  "CMakeFiles/discsec_crypto.dir/hmac.cc.o.d"
  "CMakeFiles/discsec_crypto.dir/rsa.cc.o"
  "CMakeFiles/discsec_crypto.dir/rsa.cc.o.d"
  "CMakeFiles/discsec_crypto.dir/sha1.cc.o"
  "CMakeFiles/discsec_crypto.dir/sha1.cc.o.d"
  "CMakeFiles/discsec_crypto.dir/sha256.cc.o"
  "CMakeFiles/discsec_crypto.dir/sha256.cc.o.d"
  "libdiscsec_crypto.a"
  "libdiscsec_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discsec_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
