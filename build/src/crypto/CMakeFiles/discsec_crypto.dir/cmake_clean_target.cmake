file(REMOVE_RECURSE
  "libdiscsec_crypto.a"
)
