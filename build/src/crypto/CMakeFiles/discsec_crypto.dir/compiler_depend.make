# Empty compiler generated dependencies file for discsec_crypto.
# This may be replaced when dependencies are built.
