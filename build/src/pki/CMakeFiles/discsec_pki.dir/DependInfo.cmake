
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pki/cert_store.cc" "src/pki/CMakeFiles/discsec_pki.dir/cert_store.cc.o" "gcc" "src/pki/CMakeFiles/discsec_pki.dir/cert_store.cc.o.d"
  "/root/repo/src/pki/certificate.cc" "src/pki/CMakeFiles/discsec_pki.dir/certificate.cc.o" "gcc" "src/pki/CMakeFiles/discsec_pki.dir/certificate.cc.o.d"
  "/root/repo/src/pki/key_codec.cc" "src/pki/CMakeFiles/discsec_pki.dir/key_codec.cc.o" "gcc" "src/pki/CMakeFiles/discsec_pki.dir/key_codec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/discsec_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/discsec_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/discsec_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
