file(REMOVE_RECURSE
  "libdiscsec_pki.a"
)
