# Empty compiler generated dependencies file for discsec_pki.
# This may be replaced when dependencies are built.
