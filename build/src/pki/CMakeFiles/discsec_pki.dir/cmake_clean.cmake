file(REMOVE_RECURSE
  "CMakeFiles/discsec_pki.dir/cert_store.cc.o"
  "CMakeFiles/discsec_pki.dir/cert_store.cc.o.d"
  "CMakeFiles/discsec_pki.dir/certificate.cc.o"
  "CMakeFiles/discsec_pki.dir/certificate.cc.o.d"
  "CMakeFiles/discsec_pki.dir/key_codec.cc.o"
  "CMakeFiles/discsec_pki.dir/key_codec.cc.o.d"
  "libdiscsec_pki.a"
  "libdiscsec_pki.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discsec_pki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
