file(REMOVE_RECURSE
  "CMakeFiles/discsec_authoring.dir/author.cc.o"
  "CMakeFiles/discsec_authoring.dir/author.cc.o.d"
  "libdiscsec_authoring.a"
  "libdiscsec_authoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discsec_authoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
