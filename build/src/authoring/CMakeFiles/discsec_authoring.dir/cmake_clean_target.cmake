file(REMOVE_RECURSE
  "libdiscsec_authoring.a"
)
