# Empty compiler generated dependencies file for discsec_authoring.
# This may be replaced when dependencies are built.
