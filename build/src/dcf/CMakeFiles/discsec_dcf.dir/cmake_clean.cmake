file(REMOVE_RECURSE
  "CMakeFiles/discsec_dcf.dir/dcf.cc.o"
  "CMakeFiles/discsec_dcf.dir/dcf.cc.o.d"
  "libdiscsec_dcf.a"
  "libdiscsec_dcf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discsec_dcf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
