file(REMOVE_RECURSE
  "libdiscsec_dcf.a"
)
