# Empty compiler generated dependencies file for discsec_dcf.
# This may be replaced when dependencies are built.
