file(REMOVE_RECURSE
  "libdiscsec_xml.a"
)
