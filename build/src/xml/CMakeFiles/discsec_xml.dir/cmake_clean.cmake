file(REMOVE_RECURSE
  "CMakeFiles/discsec_xml.dir/c14n.cc.o"
  "CMakeFiles/discsec_xml.dir/c14n.cc.o.d"
  "CMakeFiles/discsec_xml.dir/dom.cc.o"
  "CMakeFiles/discsec_xml.dir/dom.cc.o.d"
  "CMakeFiles/discsec_xml.dir/parser.cc.o"
  "CMakeFiles/discsec_xml.dir/parser.cc.o.d"
  "CMakeFiles/discsec_xml.dir/select.cc.o"
  "CMakeFiles/discsec_xml.dir/select.cc.o.d"
  "CMakeFiles/discsec_xml.dir/serializer.cc.o"
  "CMakeFiles/discsec_xml.dir/serializer.cc.o.d"
  "libdiscsec_xml.a"
  "libdiscsec_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discsec_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
