# Empty compiler generated dependencies file for discsec_xml.
# This may be replaced when dependencies are built.
