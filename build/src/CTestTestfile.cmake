# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("crypto")
subdirs("xml")
subdirs("pki")
subdirs("xmldsig")
subdirs("xmlenc")
subdirs("xkms")
subdirs("access")
subdirs("script")
subdirs("smil")
subdirs("svg")
subdirs("xslt")
subdirs("disc")
subdirs("dcf")
subdirs("net")
subdirs("player")
subdirs("authoring")
subdirs("xrml")
