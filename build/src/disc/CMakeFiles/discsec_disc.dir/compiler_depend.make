# Empty compiler generated dependencies file for discsec_disc.
# This may be replaced when dependencies are built.
