file(REMOVE_RECURSE
  "CMakeFiles/discsec_disc.dir/content.cc.o"
  "CMakeFiles/discsec_disc.dir/content.cc.o.d"
  "CMakeFiles/discsec_disc.dir/disc_image.cc.o"
  "CMakeFiles/discsec_disc.dir/disc_image.cc.o.d"
  "CMakeFiles/discsec_disc.dir/local_storage.cc.o"
  "CMakeFiles/discsec_disc.dir/local_storage.cc.o.d"
  "libdiscsec_disc.a"
  "libdiscsec_disc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discsec_disc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
