file(REMOVE_RECURSE
  "libdiscsec_disc.a"
)
