file(REMOVE_RECURSE
  "libdiscsec_access.a"
)
