file(REMOVE_RECURSE
  "CMakeFiles/discsec_access.dir/pep.cc.o"
  "CMakeFiles/discsec_access.dir/pep.cc.o.d"
  "CMakeFiles/discsec_access.dir/permission_request.cc.o"
  "CMakeFiles/discsec_access.dir/permission_request.cc.o.d"
  "CMakeFiles/discsec_access.dir/policy.cc.o"
  "CMakeFiles/discsec_access.dir/policy.cc.o.d"
  "libdiscsec_access.a"
  "libdiscsec_access.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discsec_access.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
