
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/access/pep.cc" "src/access/CMakeFiles/discsec_access.dir/pep.cc.o" "gcc" "src/access/CMakeFiles/discsec_access.dir/pep.cc.o.d"
  "/root/repo/src/access/permission_request.cc" "src/access/CMakeFiles/discsec_access.dir/permission_request.cc.o" "gcc" "src/access/CMakeFiles/discsec_access.dir/permission_request.cc.o.d"
  "/root/repo/src/access/policy.cc" "src/access/CMakeFiles/discsec_access.dir/policy.cc.o" "gcc" "src/access/CMakeFiles/discsec_access.dir/policy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/xml/CMakeFiles/discsec_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/discsec_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
