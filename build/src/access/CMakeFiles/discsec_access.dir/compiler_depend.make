# Empty compiler generated dependencies file for discsec_access.
# This may be replaced when dependencies are built.
