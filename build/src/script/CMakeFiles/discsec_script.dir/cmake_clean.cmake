file(REMOVE_RECURSE
  "CMakeFiles/discsec_script.dir/interpreter.cc.o"
  "CMakeFiles/discsec_script.dir/interpreter.cc.o.d"
  "CMakeFiles/discsec_script.dir/lexer.cc.o"
  "CMakeFiles/discsec_script.dir/lexer.cc.o.d"
  "CMakeFiles/discsec_script.dir/parser.cc.o"
  "CMakeFiles/discsec_script.dir/parser.cc.o.d"
  "CMakeFiles/discsec_script.dir/value.cc.o"
  "CMakeFiles/discsec_script.dir/value.cc.o.d"
  "libdiscsec_script.a"
  "libdiscsec_script.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discsec_script.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
