# Empty dependencies file for discsec_script.
# This may be replaced when dependencies are built.
