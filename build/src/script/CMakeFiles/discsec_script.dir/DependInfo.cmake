
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/script/interpreter.cc" "src/script/CMakeFiles/discsec_script.dir/interpreter.cc.o" "gcc" "src/script/CMakeFiles/discsec_script.dir/interpreter.cc.o.d"
  "/root/repo/src/script/lexer.cc" "src/script/CMakeFiles/discsec_script.dir/lexer.cc.o" "gcc" "src/script/CMakeFiles/discsec_script.dir/lexer.cc.o.d"
  "/root/repo/src/script/parser.cc" "src/script/CMakeFiles/discsec_script.dir/parser.cc.o" "gcc" "src/script/CMakeFiles/discsec_script.dir/parser.cc.o.d"
  "/root/repo/src/script/value.cc" "src/script/CMakeFiles/discsec_script.dir/value.cc.o" "gcc" "src/script/CMakeFiles/discsec_script.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/discsec_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
