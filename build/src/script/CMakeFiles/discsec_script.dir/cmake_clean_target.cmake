file(REMOVE_RECURSE
  "libdiscsec_script.a"
)
