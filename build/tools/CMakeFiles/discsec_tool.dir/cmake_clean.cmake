file(REMOVE_RECURSE
  "CMakeFiles/discsec_tool.dir/discsec_tool.cc.o"
  "CMakeFiles/discsec_tool.dir/discsec_tool.cc.o.d"
  "discsec_tool"
  "discsec_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discsec_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
