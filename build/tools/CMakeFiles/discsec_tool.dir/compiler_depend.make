# Empty compiler generated dependencies file for discsec_tool.
# This may be replaced when dependencies are built.
