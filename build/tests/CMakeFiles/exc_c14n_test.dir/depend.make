# Empty dependencies file for exc_c14n_test.
# This may be replaced when dependencies are built.
