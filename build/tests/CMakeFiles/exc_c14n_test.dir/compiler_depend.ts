# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for exc_c14n_test.
