file(REMOVE_RECURSE
  "CMakeFiles/exc_c14n_test.dir/exc_c14n_test.cc.o"
  "CMakeFiles/exc_c14n_test.dir/exc_c14n_test.cc.o.d"
  "exc_c14n_test"
  "exc_c14n_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exc_c14n_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
