# Empty dependencies file for xkms_test.
# This may be replaced when dependencies are built.
