file(REMOVE_RECURSE
  "CMakeFiles/xkms_test.dir/xkms_test.cc.o"
  "CMakeFiles/xkms_test.dir/xkms_test.cc.o.d"
  "xkms_test"
  "xkms_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xkms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
