# Empty compiler generated dependencies file for smil_test.
# This may be replaced when dependencies are built.
