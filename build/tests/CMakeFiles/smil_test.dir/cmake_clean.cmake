file(REMOVE_RECURSE
  "CMakeFiles/smil_test.dir/smil_test.cc.o"
  "CMakeFiles/smil_test.dir/smil_test.cc.o.d"
  "smil_test"
  "smil_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smil_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
