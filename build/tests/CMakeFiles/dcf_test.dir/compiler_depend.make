# Empty compiler generated dependencies file for dcf_test.
# This may be replaced when dependencies are built.
