file(REMOVE_RECURSE
  "CMakeFiles/disc_test.dir/disc_test.cc.o"
  "CMakeFiles/disc_test.dir/disc_test.cc.o.d"
  "disc_test"
  "disc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
