
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net_test.cc" "tests/CMakeFiles/net_test.dir/net_test.cc.o" "gcc" "tests/CMakeFiles/net_test.dir/net_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/discsec_net.dir/DependInfo.cmake"
  "/root/repo/build/src/xkms/CMakeFiles/discsec_xkms.dir/DependInfo.cmake"
  "/root/repo/build/src/pki/CMakeFiles/discsec_pki.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/discsec_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/discsec_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/discsec_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
