# Empty compiler generated dependencies file for xslt_test.
# This may be replaced when dependencies are built.
