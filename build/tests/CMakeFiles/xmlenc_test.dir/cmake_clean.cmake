file(REMOVE_RECURSE
  "CMakeFiles/xmlenc_test.dir/xmlenc_test.cc.o"
  "CMakeFiles/xmlenc_test.dir/xmlenc_test.cc.o.d"
  "xmlenc_test"
  "xmlenc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmlenc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
