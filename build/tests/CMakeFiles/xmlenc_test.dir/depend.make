# Empty dependencies file for xmlenc_test.
# This may be replaced when dependencies are built.
