file(REMOVE_RECURSE
  "CMakeFiles/xrml_test.dir/xrml_test.cc.o"
  "CMakeFiles/xrml_test.dir/xrml_test.cc.o.d"
  "xrml_test"
  "xrml_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xrml_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
