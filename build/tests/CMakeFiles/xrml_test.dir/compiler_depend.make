# Empty compiler generated dependencies file for xrml_test.
# This may be replaced when dependencies are built.
