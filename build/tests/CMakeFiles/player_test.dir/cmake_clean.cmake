file(REMOVE_RECURSE
  "CMakeFiles/player_test.dir/player_test.cc.o"
  "CMakeFiles/player_test.dir/player_test.cc.o.d"
  "player_test"
  "player_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/player_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
