file(REMOVE_RECURSE
  "CMakeFiles/xmldsig_test.dir/xmldsig_test.cc.o"
  "CMakeFiles/xmldsig_test.dir/xmldsig_test.cc.o.d"
  "xmldsig_test"
  "xmldsig_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmldsig_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
