# Empty dependencies file for xmldsig_test.
# This may be replaced when dependencies are built.
