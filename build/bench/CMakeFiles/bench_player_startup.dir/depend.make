# Empty dependencies file for bench_player_startup.
# This may be replaced when dependencies are built.
