file(REMOVE_RECURSE
  "CMakeFiles/bench_player_startup.dir/bench_player_startup.cc.o"
  "CMakeFiles/bench_player_startup.dir/bench_player_startup.cc.o.d"
  "bench_player_startup"
  "bench_player_startup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_player_startup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
