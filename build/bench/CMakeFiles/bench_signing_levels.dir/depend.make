# Empty dependencies file for bench_signing_levels.
# This may be replaced when dependencies are built.
