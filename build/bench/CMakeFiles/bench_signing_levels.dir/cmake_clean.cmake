file(REMOVE_RECURSE
  "CMakeFiles/bench_signing_levels.dir/bench_signing_levels.cc.o"
  "CMakeFiles/bench_signing_levels.dir/bench_signing_levels.cc.o.d"
  "bench_signing_levels"
  "bench_signing_levels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_signing_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
