# Empty dependencies file for bench_encryption_targets.
# This may be replaced when dependencies are built.
