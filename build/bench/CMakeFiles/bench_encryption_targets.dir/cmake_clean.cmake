file(REMOVE_RECURSE
  "CMakeFiles/bench_encryption_targets.dir/bench_encryption_targets.cc.o"
  "CMakeFiles/bench_encryption_targets.dir/bench_encryption_targets.cc.o.d"
  "bench_encryption_targets"
  "bench_encryption_targets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_encryption_targets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
