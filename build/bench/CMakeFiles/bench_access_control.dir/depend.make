# Empty dependencies file for bench_access_control.
# This may be replaced when dependencies are built.
