file(REMOVE_RECURSE
  "CMakeFiles/bench_c14n.dir/bench_c14n.cc.o"
  "CMakeFiles/bench_c14n.dir/bench_c14n.cc.o.d"
  "bench_c14n"
  "bench_c14n.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c14n.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
