# Empty compiler generated dependencies file for bench_c14n.
# This may be replaced when dependencies are built.
