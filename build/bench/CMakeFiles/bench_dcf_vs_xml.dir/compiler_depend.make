# Empty compiler generated dependencies file for bench_dcf_vs_xml.
# This may be replaced when dependencies are built.
