file(REMOVE_RECURSE
  "CMakeFiles/bench_dcf_vs_xml.dir/bench_dcf_vs_xml.cc.o"
  "CMakeFiles/bench_dcf_vs_xml.dir/bench_dcf_vs_xml.cc.o.d"
  "bench_dcf_vs_xml"
  "bench_dcf_vs_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dcf_vs_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
