
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_dcf_vs_xml.cc" "bench/CMakeFiles/bench_dcf_vs_xml.dir/bench_dcf_vs_xml.cc.o" "gcc" "bench/CMakeFiles/bench_dcf_vs_xml.dir/bench_dcf_vs_xml.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/authoring/CMakeFiles/discsec_authoring.dir/DependInfo.cmake"
  "/root/repo/build/src/player/CMakeFiles/discsec_player.dir/DependInfo.cmake"
  "/root/repo/build/src/dcf/CMakeFiles/discsec_dcf.dir/DependInfo.cmake"
  "/root/repo/build/src/disc/CMakeFiles/discsec_disc.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/discsec_net.dir/DependInfo.cmake"
  "/root/repo/build/src/xmlenc/CMakeFiles/discsec_xmlenc.dir/DependInfo.cmake"
  "/root/repo/build/src/access/CMakeFiles/discsec_access.dir/DependInfo.cmake"
  "/root/repo/build/src/script/CMakeFiles/discsec_script.dir/DependInfo.cmake"
  "/root/repo/build/src/smil/CMakeFiles/discsec_smil.dir/DependInfo.cmake"
  "/root/repo/build/src/svg/CMakeFiles/discsec_svg.dir/DependInfo.cmake"
  "/root/repo/build/src/xkms/CMakeFiles/discsec_xkms.dir/DependInfo.cmake"
  "/root/repo/build/src/xrml/CMakeFiles/discsec_xrml.dir/DependInfo.cmake"
  "/root/repo/build/src/xmldsig/CMakeFiles/discsec_xmldsig.dir/DependInfo.cmake"
  "/root/repo/build/src/pki/CMakeFiles/discsec_pki.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/discsec_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/discsec_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/discsec_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
