# Empty dependencies file for bench_xkms.
# This may be replaced when dependencies are built.
