file(REMOVE_RECURSE
  "CMakeFiles/bench_xkms.dir/bench_xkms.cc.o"
  "CMakeFiles/bench_xkms.dir/bench_xkms.cc.o.d"
  "bench_xkms"
  "bench_xkms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_xkms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
