// Deterministic structure-aware fuzzer for the parse -> verify pipeline.
//
// Each iteration builds a random signed document (enveloped or detached,
// RSA or HMAC), applies structure-aware mutations to the serialized wire
// form, and feeds the bytes through the parser and the signature verifier.
// Three properties are enforced:
//
//   1. No crash / hang / sanitizer report on any input (run under
//      ASan/UBSan in CI).
//   2. The parser's resource limits hold: parsing either succeeds or fails
//      with a Status — and a second parse of anything that parsed is stable.
//   3. No tamper is accepted: when a mutated document still verifies, the
//      canonical form of every verified reference target must be identical
//      to the pristine document's (mutations confined to unsigned regions
//      or the signature's own KeyInfo are the only acceptable survivors).
//
// Fully seeded: `--seed N --iterations M` reproduces a run bit-for-bit.
// On a property violation the offending document and its provenance are
// printed and the process exits 1.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/random.h"
#include "crypto/algorithms.h"
#include "crypto/rsa.h"
#include "xml/c14n.h"
#include "xml/dom.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xmldsig/signer.h"
#include "xmldsig/verifier.h"

namespace discsec {
namespace {

/// Bounded random well-formed document with Id attributes — the shape the
/// player's cluster schema exercises (nested parts, ids, namespaces).
class DocGenerator {
 public:
  explicit DocGenerator(Rng* rng) : rng_(rng) {}

  std::string Generate() {
    next_id_ = 0;
    std::string out;
    Emit(&out, 3);
    return out;
  }

 private:
  std::string Name() {
    static const char* kNames[] = {"cluster", "track", "manifest", "markup",
                                   "code",    "script", "item",    "ns1:ext"};
    return kNames[rng_->NextBelow(8)];
  }

  void Emit(std::string* out, int depth) {
    std::string name = Name();
    *out += "<" + name;
    if (name.rfind("ns1:", 0) == 0) *out += " xmlns:ns1=\"urn:ext\"";
    if (rng_->NextBelow(2) == 0) {
      *out += " Id=\"id-" + std::to_string(next_id_++) + "\"";
    }
    size_t attrs = rng_->NextBelow(3);
    for (size_t i = 0; i < attrs; ++i) {
      *out += " a" + std::to_string(i) + "=\"v" +
              std::to_string(rng_->NextBelow(100)) + "\"";
    }
    size_t children = depth > 0 ? rng_->NextBelow(4) : 0;
    if (children == 0) {
      *out += rng_->NextBelow(2) == 0 ? "/>" : (">x</" + name + ">");
      return;
    }
    *out += ">";
    for (size_t i = 0; i < children; ++i) {
      if (rng_->NextBelow(3) == 0) {
        *out += "text" + std::to_string(rng_->NextBelow(10));
      } else {
        Emit(out, depth - 1);
      }
    }
    *out += "</" + name + ">";
  }

  Rng* rng_;
  size_t next_id_ = 0;
};

/// One structure-aware mutation of the wire bytes. The menu mixes generic
/// byte noise with XML-shaped edits that keep documents well-formed often
/// enough to reach the verifier (plain byte noise almost always dies in
/// the parser).
void Mutate(std::string* wire, Rng* rng) {
  if (wire->empty()) return;
  switch (rng->NextBelow(9)) {
    case 0: {  // byte flip
      (*wire)[rng->NextBelow(wire->size())] =
          static_cast<char>(rng->NextUint64());
      break;
    }
    case 1: {  // delete a short span
      size_t pos = rng->NextBelow(wire->size());
      wire->erase(pos, 1 + rng->NextBelow(8));
      break;
    }
    case 2: {  // insert printable noise
      size_t pos = rng->NextBelow(wire->size());
      wire->insert(pos, 1, static_cast<char>(' ' + rng->NextBelow(95)));
      break;
    }
    case 3: {  // splice: copy a random substring elsewhere (tag duplication)
      size_t from = rng->NextBelow(wire->size());
      size_t len = 1 + rng->NextBelow(40);
      std::string chunk = wire->substr(from, len);
      wire->insert(rng->NextBelow(wire->size()), chunk);
      break;
    }
    case 4: {  // duplicate-ID wrapping probe: redeclare an existing Id
      size_t id_pos = wire->find("Id=\"");
      if (id_pos == std::string::npos) break;
      size_t end = wire->find('"', id_pos + 4);
      if (end == std::string::npos) break;
      std::string id = wire->substr(id_pos + 4, end - id_pos - 4);
      size_t root_end = wire->find('>');
      if (root_end == std::string::npos) break;
      wire->insert(root_end + 1, "<decoy Id=\"" + id + "\"/>");
      break;
    }
    case 5: {  // nesting run at a random tag boundary
      size_t gt = wire->find('>', rng->NextBelow(wire->size()));
      if (gt == std::string::npos) break;
      size_t levels = 1 + rng->NextBelow(32);
      std::string open, close;
      for (size_t i = 0; i < levels; ++i) {
        open += "<z>";
        close += "</z>";
      }
      wire->insert(gt + 1, open + close);
      break;
    }
    case 6: {  // entity/character-reference run
      size_t gt = wire->find('>', rng->NextBelow(wire->size()));
      if (gt == std::string::npos) break;
      std::string run;
      size_t refs = 1 + rng->NextBelow(64);
      for (size_t i = 0; i < refs; ++i) run += "&#65;";
      wire->insert(gt + 1, run);
      break;
    }
    case 7: {  // corrupt a stored digest or signature value
      size_t pos = wire->find(rng->NextBelow(2) == 0 ? "DigestValue>"
                                                     : "SignatureValue>");
      if (pos == std::string::npos || pos + 13 >= wire->size()) break;
      size_t target = pos + 12 + 1 + rng->NextBelow(8);
      if (target >= wire->size()) break;
      (*wire)[target] = (*wire)[target] == 'A' ? 'B' : 'A';
      break;
    }
    case 8: {  // case-toggle an attribute name (Id= -> id= confusion)
      size_t pos = wire->find("Id=\"");
      if (pos == std::string::npos) break;
      (*wire)[pos] = 'i';
      break;
    }
  }
}

/// Strips every ds:Signature element so enveloped-signed content can be
/// compared between pristine and mutated documents.
void StripSignatures(xml::Document* doc) {
  for (xml::Element* sig :
       xmldsig::Verifier::FindSignatures(doc->root())) {
    if (sig->parent() != nullptr) sig->parent()->RemoveChild(sig);
  }
}

struct Violation {
  std::string what;
  std::string detail;
};

/// The tamper oracle: a verified mutated document must sign-cover content
/// canonically identical to the pristine document's.
bool CheckNoTamperAccepted(const xml::Document& pristine,
                           xml::Document* mutated,
                           const xmldsig::VerifyInfo& info,
                           Violation* violation) {
  for (const xmldsig::VerifiedReference& ref : info.references) {
    if (!ref.same_document) continue;
    if (ref.covers_root) {
      xml::Document a = pristine.Clone();
      xml::Document b = mutated->Clone();
      StripSignatures(&a);
      StripSignatures(&b);
      if (xml::Canonicalize(a) != xml::Canonicalize(b)) {
        violation->what = "root-covering reference verified over changed "
                          "content";
        violation->detail = ref.uri;
        return false;
      }
      continue;
    }
    if (ref.uri.size() < 2 || ref.uri[0] != '#') continue;
    std::string id = ref.uri.substr(1);
    auto original = pristine.FindByIdStrict(id);
    auto current = mutated->FindByIdStrict(id);
    if (!original.ok() || !current.ok()) {
      violation->what = "verified reference target not strictly resolvable";
      violation->detail = ref.uri;
      return false;
    }
    if (xml::CanonicalizeElement(*original.value()) !=
        xml::CanonicalizeElement(*current.value())) {
      violation->what = "detached reference verified over changed content";
      violation->detail = ref.uri;
      return false;
    }
  }
  return true;
}

struct Stats {
  uint64_t iterations = 0;
  uint64_t parse_failures = 0;
  uint64_t resource_rejections = 0;
  uint64_t verify_failures = 0;
  uint64_t benign_survivals = 0;
};

int Run(uint64_t seed, uint64_t iterations, bool verbose) {
  Rng rng(seed);
  // One RSA keypair for the whole run: keygen dominates otherwise.
  crypto::RsaKeyPair keys = crypto::RsaGenerateKeyPair(512, &rng).value();
  Bytes hmac_secret = rng.NextBytes(20);

  Stats stats;
  for (uint64_t iter = 0; iter < iterations; ++iter) {
    DocGenerator gen(&rng);
    auto doc = xml::Parse(gen.Generate()).value();

    // Vary the signing shape: enveloped over the root, or detached over a
    // random Id-carrying element; RSA-SHA1/SHA256 or HMAC.
    bool hmac = rng.NextBelow(4) == 0;
    xmldsig::KeyInfoSpec ki;
    ki.include_key_value = !hmac;
    xmldsig::SigningKey key =
        hmac ? xmldsig::SigningKey::HmacSecret(hmac_secret)
             : xmldsig::SigningKey::Rsa(keys.private_key,
                                        rng.NextBelow(2) == 0
                                            ? crypto::kAlgRsaSha1
                                            : crypto::kAlgRsaSha256);
    xmldsig::Signer signer(std::move(key), ki);

    std::vector<xml::Element*> id_elements;
    doc.root()->ForEachElement([&](xml::Element* e) {
      if (e->GetAttribute("Id") != nullptr) id_elements.push_back(e);
    });
    bool detached = !id_elements.empty() && rng.NextBelow(2) == 0;
    Status signed_ok = Status::OK();
    if (detached) {
      xml::Element* target = id_elements[rng.NextBelow(id_elements.size())];
      signed_ok = signer
                      .SignDetached(&doc, target, *target->GetAttribute("Id"),
                                    doc.root())
                      .status();
    } else {
      signed_ok = signer.SignEnveloped(&doc, doc.root()).status();
    }
    if (!signed_ok.ok()) continue;  // e.g. detached target id mismatch

    const std::string wire = xml::Serialize(doc);
    const xml::Document pristine = doc.Clone();

    std::string mutated = wire;
    size_t rounds = 1 + rng.NextBelow(3);
    for (size_t m = 0; m < rounds; ++m) Mutate(&mutated, &rng);

    ++stats.iterations;
    // Tight limits on a fraction of runs so the ResourceExhausted paths
    // are exercised by the nesting/entity mutators.
    xml::ParseOptions limits;
    if (rng.NextBelow(4) == 0) {
      limits.max_depth = 16;
      limits.max_entity_output = 64;
      limits.max_attributes = 16;
    }
    auto parsed = xml::Parse(mutated, limits);
    if (!parsed.ok()) {
      ++stats.parse_failures;
      if (parsed.status().IsResourceExhausted()) {
        ++stats.resource_rejections;
      }
      // Property 2: a rejected parse is stable (same status on re-parse).
      auto again = xml::Parse(mutated, limits);
      if (again.ok() ||
          again.status().code() != parsed.status().code()) {
        std::fprintf(stderr,
                     "VIOLATION: unstable parse at seed=%llu iter=%llu\n",
                     static_cast<unsigned long long>(seed),
                     static_cast<unsigned long long>(iter));
        std::fprintf(stderr, "--- input ---\n%s\n", mutated.c_str());
        return 1;
      }
      continue;
    }

    xmldsig::VerifyOptions options;
    options.allow_bare_key_value = true;
    if (hmac) options.hmac_secret = hmac_secret;
    options.parse_options = limits;
    auto result =
        xmldsig::Verifier::VerifyFirstSignature(parsed.value(), options);
    if (!result.ok()) {
      ++stats.verify_failures;
      continue;
    }

    Violation violation;
    if (!CheckNoTamperAccepted(pristine, &parsed.value(), result.value(),
                               &violation)) {
      std::fprintf(stderr,
                   "VIOLATION: %s (%s) at seed=%llu iter=%llu\n",
                   violation.what.c_str(), violation.detail.c_str(),
                   static_cast<unsigned long long>(seed),
                   static_cast<unsigned long long>(iter));
      std::fprintf(stderr, "--- pristine ---\n%s\n--- mutated ---\n%s\n",
                   wire.c_str(), mutated.c_str());
      return 1;
    }
    ++stats.benign_survivals;
    if (verbose) {
      std::fprintf(stderr, "iter %llu: benign survival\n",
                   static_cast<unsigned long long>(iter));
    }
  }

  std::printf(
      "fuzz_verifier: %llu iterations, %llu parse failures "
      "(%llu resource-limit), %llu verify failures, %llu benign "
      "survivals, 0 violations\n",
      static_cast<unsigned long long>(stats.iterations),
      static_cast<unsigned long long>(stats.parse_failures),
      static_cast<unsigned long long>(stats.resource_rejections),
      static_cast<unsigned long long>(stats.verify_failures),
      static_cast<unsigned long long>(stats.benign_survivals));
  return 0;
}

}  // namespace
}  // namespace discsec

int main(int argc, char** argv) {
  uint64_t seed = 20050915;
  uint64_t iterations = 2000;
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--iterations") == 0 && i + 1 < argc) {
      iterations = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      verbose = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--seed N] [--iterations N] [--verbose]\n",
                   argv[0]);
      return 2;
    }
  }
  return discsec::Run(seed, iterations, verbose);
}
