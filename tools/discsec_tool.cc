// discsec_tool — command-line front end for the library's authoring
// operations: key generation, certificate issuance, XML signing and
// verification, XML encryption and decryption, and canonicalization.
//
// Usage:
//   discsec_tool keygen --bits 1024 --out key.xml
//   discsec_tool cert-root --key key.xml --subject "CN=Root" --out root.xml
//   discsec_tool cert-issue --issuer-key root-key.xml --issuer-cert root.xml
//                --key leaf-key.xml --subject "CN=Leaf" --serial 2
//                --out leaf.xml [--ca]
//   discsec_tool sign --key key.xml --in doc.xml --out signed.xml
//                [--cert leaf.xml --cert root.xml] [--detached-id <id>]
//   discsec_tool verify --in signed.xml [--root root.xml | --allow-bare-key]
//                [--streaming-verify]
//   discsec_tool encrypt --in doc.xml --target-id <id> --key-hex <32 hex>
//                --key-name <name> --out enc.xml
//   discsec_tool decrypt --in enc.xml --key-hex <32 hex> --key-name <name>
//                --out dec.xml
//   discsec_tool c14n --in doc.xml [--with-comments]
//   discsec_tool play-demo [--repeat N] [--jobs N] [--async]
//                [--streaming-verify]
//   discsec_tool play [--discs N] [--repeat N] [--jobs N] [--async]
//                [--streaming-verify]
//   discsec_tool xkmsd-demo [--players N] [--keys K] [--jobs N] [--burst N]
//   discsec_tool fleet [--players N] [--events-per-player N] [--seed S]
//                [--matrix smoke|nightly] [--json BENCH_fleet.json]
//   discsec_tool regen-golden [--dir tests/golden] [--write]
//
// Any command also accepts --inject-fault point:kind:rate[:delay_us]
// (repeatable), arming the process-global fault injector before the
// command runs — e.g. --inject-fault tool.read:corrupt:1.0 flips a bit in
// every file read, for rehearsing how the pipeline reports damaged inputs,
// and --inject-fault xkms.transport:delay:1.0:100000 makes every XKMS hop
// cost a 100ms "broadband round-trip". Kinds: error, corrupt, truncate,
// delay (delay requires the delay_us field); rate is a probability in
// [0, 1].
//
// Observability (DESIGN.md §10) — every command also accepts:
//   --trace FILE        write a Chrome-trace-format JSON of every span the
//                       command produced (open in chrome://tracing or
//                       https://ui.perfetto.dev)
//   --trace-text FILE   the same spans as an indented plain-text tree
//   --metrics FILE      write the final metrics snapshot as JSON
// `play-demo` masters a protected demo disc (signed + encrypted manifest +
// AV-essence references), stands up an in-process XKMS service behind a
// retrying transport, and plays the disc --repeat times (default 2, so the
// second pass shows digest/locate cache hits) — the quickest way to get a
// real trace of the whole pipeline.
//
// `play` is the multi-disc variant: it masters one protected disc and
// plays --discs copies of it as a batch through the task-graph engine
// (DESIGN.md §11), so the per-disc decrypt -> verify -> launch chains
// pipeline across --jobs workers. --async additionally routes the XKMS
// traffic through the timer-wheel async transport, releasing workers for
// the duration of every (possibly fault-delayed) trust-service
// round-trip. Both flags also work on play-demo; --jobs is the preferred
// spelling of the older --pool.
//
// `xkmsd-demo` stands up the overload-safe xkmsd responder (DESIGN.md §13)
// plus a simulated zipfian player fleet in one process: a warm phase
// through a shared edge LocateCache, a revocation storm, and an async
// overload burst past the Locate queue bound. It prints the
// shed/coalesce/hit-rate summary and exits non-zero if a revoked key was
// ever reported Valid. Chaos-friendly:
//   discsec_tool xkmsd-demo --inject-fault xkmsd.store:error:0.2 --trace t.json
//
// `regen-golden` regenerates the golden conformance vectors and DIFFS them
// against tests/golden/ (exit 1 on drift); --write updates the files
// instead, for intentional format changes.
//
// Exit status: 0 on success, 1 on any error (including failed
// verification and golden drift), 2 on usage errors.

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/fault.h"
#include "common/thread_pool.h"
#include "common/timer_wheel.h"
#include "crypto/digest_cache.h"
#include "obs/bridge.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pki/cert_store.h"
#include "pki/certificate.h"
#include "pki/key_codec.h"
#include "player/engine.h"
#include "sim/fleet.h"
#include "sim/report.h"
#include "sim/scenario.h"
#include "tests/golden/golden_vectors.h"
#include "tests/sim_support.h"
#include "tests/test_world.h"
#include "xkms/locate_cache.h"
#include "xkms/retrying_transport.h"
#include "xkms/service.h"
#include "xkms/xkmsd.h"
#include "xml/c14n.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xmldsig/signer.h"
#include "xmldsig/verifier.h"
#include "xmlenc/decryptor.h"
#include "xmlenc/encryptor.h"

namespace {

using namespace discsec;

/// Process-wide observability sinks; null unless --trace/--metrics was
/// given. Commands thread these into whatever they run.
obs::Tracer* g_tracer = nullptr;
obs::MetricsRegistry* g_metrics = nullptr;

struct Args {
  std::string command;
  std::map<std::string, std::string> options;
  std::vector<std::string> certs;  // repeated --cert
  bool Has(const std::string& name) const { return options.count(name) > 0; }
  std::string Get(const std::string& name,
                  const std::string& fallback = {}) const {
    auto it = options.find(name);
    return it == options.end() ? fallback : it->second;
  }
};

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream out;
  out << in.rdbuf();
  std::string text = out.str();
  DISCSEC_RETURN_IF_ERROR(fault::GlobalFaultInjector()
                              .HitData(fault::kToolRead, &text, path)
                              .WithContext("tool input"));
  return text;
}

/// Parses one --inject-fault value ("point:kind:rate[:delay_us]") and arms
/// the global injector with it.
Status ArmInjectedFault(const std::string& flag) {
  size_t first = flag.find(':');
  size_t second =
      first == std::string::npos ? std::string::npos : flag.find(':', first + 1);
  if (second == std::string::npos) {
    return Status::InvalidArgument(
        "--inject-fault wants point:kind:rate[:delay_us], got '" + flag +
        "'");
  }
  size_t third = flag.find(':', second + 1);
  fault::FaultSpec spec;
  spec.point = flag.substr(0, first);
  DISCSEC_ASSIGN_OR_RETURN(
      spec.kind, fault::KindFromName(flag.substr(first + 1,
                                                 second - first - 1)));
  std::string rate_str = flag.substr(
      second + 1, third == std::string::npos ? std::string::npos
                                             : third - second - 1);
  char* end = nullptr;
  spec.probability = std::strtod(rate_str.c_str(), &end);
  if (end == rate_str.c_str() || *end != '\0' || spec.probability < 0.0 ||
      spec.probability > 1.0) {
    return Status::InvalidArgument("--inject-fault rate must be in [0, 1]");
  }
  if (third != std::string::npos) {
    std::string delay_str = flag.substr(third + 1);
    spec.delay_us = std::strtoll(delay_str.c_str(), &end, 10);
    if (end == delay_str.c_str() || *end != '\0' || spec.delay_us < 0) {
      return Status::InvalidArgument(
          "--inject-fault delay_us must be a non-negative integer");
    }
  }
  if (spec.kind == fault::Kind::kDelay && spec.delay_us <= 0) {
    return Status::InvalidArgument(
        "--inject-fault kind 'delay' needs a delay_us field "
        "(point:delay:rate:delay_us)");
  }
  fault::GlobalFaultInjector().Arm(std::move(spec));
  return Status::OK();
}

/// Parses command input under the global tracer, so --trace covers the
/// "xml.parse" spans of every command.
Result<xml::Document> ParseInput(const std::string& text) {
  xml::ParseOptions options;
  options.tracer = g_tracer;
  return xml::Parse(text, options);
}

Status WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << content;
  return out ? Status::OK() : Status::IOError("short write to " + path);
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage(const char* message) {
  std::fprintf(stderr, "usage error: %s (see discsec_tool source header)\n",
               message);
  return 2;
}

// ---------------------------------------------------------- subcommands

int CmdKeygen(const Args& args) {
  if (!args.Has("out")) return Usage("keygen needs --out");
  size_t bits =
      static_cast<size_t>(std::strtoul(args.Get("bits", "1024").c_str(),
                                       nullptr, 10));
  Rng rng;
  auto pair = crypto::RsaGenerateKeyPair(bits, &rng);
  if (!pair.ok()) return Fail(pair.status());
  Status st = WriteFile(args.Get("out"),
                        pki::RsaPrivateKeyToXmlString(pair->private_key));
  if (!st.ok()) return Fail(st);
  std::printf("wrote %zu-bit RSA key to %s (fingerprint %s)\n", bits,
              args.Get("out").c_str(),
              pki::KeyFingerprint(pair->public_key).c_str());
  return 0;
}

Result<crypto::RsaPrivateKey> LoadKey(const std::string& path) {
  DISCSEC_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  return pki::RsaPrivateKeyFromXmlString(text);
}

int CmdCertRoot(const Args& args) {
  if (!args.Has("key") || !args.Has("subject") || !args.Has("out")) {
    return Usage("cert-root needs --key --subject --out");
  }
  auto key = LoadKey(args.Get("key"));
  if (!key.ok()) return Fail(key.status());
  pki::CertificateInfo info;
  info.subject = args.Get("subject");
  info.issuer = info.subject;
  info.serial = 1;
  int64_t now = static_cast<int64_t>(std::time(nullptr));
  info.not_before = now - 86400;
  info.not_after = now + 20LL * 365 * 86400;
  info.is_ca = true;
  info.public_key = key->PublicKey();
  auto cert = pki::IssueCertificate(info, key.value());
  if (!cert.ok()) return Fail(cert.status());
  Status st = WriteFile(args.Get("out"), cert->ToXmlString());
  if (!st.ok()) return Fail(st);
  std::printf("wrote self-signed root '%s' to %s\n", info.subject.c_str(),
              args.Get("out").c_str());
  return 0;
}

int CmdCertIssue(const Args& args) {
  for (const char* required :
       {"issuer-key", "issuer-cert", "key", "subject", "out"}) {
    if (!args.Has(required)) {
      return Usage("cert-issue needs --issuer-key --issuer-cert --key "
                   "--subject --out");
    }
  }
  auto issuer_key = LoadKey(args.Get("issuer-key"));
  if (!issuer_key.ok()) return Fail(issuer_key.status());
  auto issuer_text = ReadFile(args.Get("issuer-cert"));
  if (!issuer_text.ok()) return Fail(issuer_text.status());
  auto issuer_cert = pki::Certificate::FromXmlString(issuer_text.value());
  if (!issuer_cert.ok()) return Fail(issuer_cert.status());
  auto subject_key = LoadKey(args.Get("key"));
  if (!subject_key.ok()) return Fail(subject_key.status());

  pki::CertificateInfo info;
  info.subject = args.Get("subject");
  info.issuer = issuer_cert->info().subject;
  info.serial = std::strtoull(args.Get("serial", "2").c_str(), nullptr, 10);
  int64_t now = static_cast<int64_t>(std::time(nullptr));
  info.not_before = now - 86400;
  info.not_after = now + 2LL * 365 * 86400;
  info.is_ca = args.Has("ca");
  info.public_key = subject_key->PublicKey();
  auto cert = pki::IssueCertificate(info, issuer_key.value());
  if (!cert.ok()) return Fail(cert.status());
  Status st = WriteFile(args.Get("out"), cert->ToXmlString());
  if (!st.ok()) return Fail(st);
  std::printf("issued '%s' (serial %llu) signed by '%s'\n",
              info.subject.c_str(),
              static_cast<unsigned long long>(info.serial),
              info.issuer.c_str());
  return 0;
}

int CmdSign(const Args& args) {
  if (!args.Has("key") || !args.Has("in") || !args.Has("out")) {
    return Usage("sign needs --key --in --out");
  }
  auto key = LoadKey(args.Get("key"));
  if (!key.ok()) return Fail(key.status());
  auto text = ReadFile(args.Get("in"));
  if (!text.ok()) return Fail(text.status());
  auto doc = ParseInput(text.value());
  if (!doc.ok()) return Fail(doc.status());

  xmldsig::KeyInfoSpec key_info;
  if (args.certs.empty()) {
    key_info.include_key_value = true;
  }
  for (const std::string& path : args.certs) {
    auto cert_text = ReadFile(path);
    if (!cert_text.ok()) return Fail(cert_text.status());
    auto cert = pki::Certificate::FromXmlString(cert_text.value());
    if (!cert.ok()) return Fail(cert.status());
    key_info.certificate_chain.push_back(std::move(cert).value());
  }
  xmldsig::Signer signer(xmldsig::SigningKey::Rsa(key.value()), key_info);
  signer.set_observability(g_tracer, g_metrics);

  if (args.Has("detached-id")) {
    xml::Element* target = doc->FindById(args.Get("detached-id"));
    if (target == nullptr) {
      return Fail(Status::NotFound("no element with Id '" +
                                   args.Get("detached-id") + "'"));
    }
    auto sig = signer.SignDetached(&doc.value(), target,
                                   args.Get("detached-id"), doc->root());
    if (!sig.ok()) return Fail(sig.status());
  } else {
    auto sig = signer.SignEnveloped(&doc.value(), doc->root());
    if (!sig.ok()) return Fail(sig.status());
  }
  Status st = WriteFile(args.Get("out"), xml::Serialize(doc.value()));
  if (!st.ok()) return Fail(st);
  std::printf("signed %s -> %s\n", args.Get("in").c_str(),
              args.Get("out").c_str());
  return 0;
}

int CmdVerify(const Args& args) {
  if (!args.Has("in")) return Usage("verify needs --in");
  auto text = ReadFile(args.Get("in"));
  if (!text.ok()) return Fail(text.status());

  xmldsig::VerifyOptions options;
  options.tracer = g_tracer;
  options.metrics = g_metrics;
  options.parse_options.tracer = g_tracer;
  pki::CertStore store;
  if (args.Has("root")) {
    auto root_text = ReadFile(args.Get("root"));
    if (!root_text.ok()) return Fail(root_text.status());
    auto root = pki::Certificate::FromXmlString(root_text.value());
    if (!root.ok()) return Fail(root.status());
    Status st = store.AddTrustedRoot(root.value());
    if (!st.ok()) return Fail(st);
    options.cert_store = &store;
    options.now = static_cast<int64_t>(std::time(nullptr));
  } else if (args.Has("allow-bare-key")) {
    options.allow_bare_key_value = true;
  } else {
    return Usage("verify needs --root <cert> or --allow-bare-key");
  }
  Result<xmldsig::VerifyInfo> result = [&]() -> Result<xmldsig::VerifyInfo> {
    // Wire-level fast path (DESIGN.md §14): --streaming-verify skips the
    // DOM build entirely — one fused scan+canonicalize pass over the input
    // bytes, only the Signature subtree is parsed. The verdict is
    // identical to the DOM route by construction.
    if (args.Has("streaming-verify")) {
      return xmldsig::Verifier::VerifyStream(text.value(), options);
    }
    auto doc = ParseInput(text.value());
    if (!doc.ok()) return doc.status();
    return xmldsig::Verifier::VerifyFirstSignature(doc.value(), options);
  }();
  if (!result.ok()) return Fail(result.status());
  std::printf("VALID");
  if (!result->signer_subject.empty()) {
    std::printf("  signer: %s", result->signer_subject.c_str());
  }
  std::printf("  references:");
  for (const std::string& uri : result->reference_uris) {
    std::printf(" '%s'", uri.c_str());
  }
  std::printf("\n");
  return 0;
}

int CmdEncrypt(const Args& args) {
  for (const char* required : {"in", "target-id", "key-hex", "key-name",
                               "out"}) {
    if (!args.Has(required)) {
      return Usage("encrypt needs --in --target-id --key-hex --key-name "
                   "--out");
    }
  }
  auto key = FromHex(args.Get("key-hex"));
  if (!key.ok()) return Fail(key.status());
  auto text = ReadFile(args.Get("in"));
  if (!text.ok()) return Fail(text.status());
  auto doc = ParseInput(text.value());
  if (!doc.ok()) return Fail(doc.status());
  xml::Element* target = doc->FindById(args.Get("target-id"));
  if (target == nullptr) {
    return Fail(Status::NotFound("no element with Id '" +
                                 args.Get("target-id") + "'"));
  }
  xmlenc::EncryptionSpec spec;
  spec.content_key = key.value();
  spec.content_algorithm = key->size() == 32 ? crypto::kAlgAes256Cbc
                                             : crypto::kAlgAes128Cbc;
  spec.key_mode = xmlenc::KeyMode::kDirectReference;
  spec.key_name = args.Get("key-name");
  Rng rng;
  auto encryptor = xmlenc::Encryptor::Create(spec, &rng);
  if (!encryptor.ok()) return Fail(encryptor.status());
  auto enc = encryptor->EncryptElement(&doc.value(), target,
                                       "enc-" + args.Get("target-id"));
  if (!enc.ok()) return Fail(enc.status());
  Status st = WriteFile(args.Get("out"), xml::Serialize(doc.value()));
  if (!st.ok()) return Fail(st);
  std::printf("encrypted '#%s' -> %s\n", args.Get("target-id").c_str(),
              args.Get("out").c_str());
  return 0;
}

int CmdDecrypt(const Args& args) {
  for (const char* required : {"in", "key-hex", "key-name", "out"}) {
    if (!args.Has(required)) {
      return Usage("decrypt needs --in --key-hex --key-name --out");
    }
  }
  auto key = FromHex(args.Get("key-hex"));
  if (!key.ok()) return Fail(key.status());
  auto text = ReadFile(args.Get("in"));
  if (!text.ok()) return Fail(text.status());
  auto doc = ParseInput(text.value());
  if (!doc.ok()) return Fail(doc.status());
  xmlenc::KeyRing ring;
  ring.AddKey(args.Get("key-name"), key.value());
  xmlenc::Decryptor decryptor(std::move(ring));
  decryptor.set_observability(g_tracer, g_metrics);
  Status st = decryptor.DecryptAll(&doc.value(), nullptr, {});
  if (!st.ok()) return Fail(st);
  st = WriteFile(args.Get("out"), xml::Serialize(doc.value()));
  if (!st.ok()) return Fail(st);
  std::printf("decrypted %s -> %s\n", args.Get("in").c_str(),
              args.Get("out").c_str());
  return 0;
}

int CmdC14n(const Args& args) {
  if (!args.Has("in")) return Usage("c14n needs --in");
  auto text = ReadFile(args.Get("in"));
  if (!text.ok()) return Fail(text.status());
  auto doc = ParseInput(text.value());
  if (!doc.ok()) return Fail(doc.status());
  xml::C14NOptions options;
  options.tracer = g_tracer;
  options.with_comments = args.Has("with-comments");
  std::fputs(xml::Canonicalize(doc.value(), options).c_str(), stdout);
  std::fputc('\n', stdout);
  return 0;
}

// ------------------------------------------------- play / play-demo

/// Shared fixture for the playback commands: a mastered protected demo
/// disc plus the production trust stack (retrying transport, TTL locate
/// cache, content-addressed digest cache, optional worker pool, and —
/// with --async — the timer-wheel async XKMS transport). Member order is
/// destruction order in reverse: the engine dies first, the wheel outlives
/// the client whose async transport parks continuations on it.
struct PlayRig {
  testing_world::World world;
  Result<disc::DiscImage> image = Status::Unavailable("not mastered");
  xkms::XkmsService service;
  std::unique_ptr<TimerWheel> wheel;  // only with --async
  std::shared_ptr<const xkms::RetryingTransportStats> transport_stats;
  std::unique_ptr<xkms::XkmsClient> client;
  std::unique_ptr<xkms::LocateCache> locate_cache;
  crypto::DigestCache digest_cache;
  std::unique_ptr<ThreadPool> pool;
  std::unique_ptr<player::InteractiveApplicationEngine> engine;

  Status Init(size_t jobs, bool async, bool streaming_verify = false) {
    // Deterministic end-to-end fixture: root CA, studio chain, demo
    // cluster, mastered fully protected (enveloped signature with the
    // Decryption Transform in the chain, encrypted manifest, external
    // references over the AV essence).
    disc::InteractiveCluster cluster = world.DemoCluster();
    authoring::Author author = world.MakeAuthor();
    authoring::Author::ProtectOptions protect;
    protect.sign = true;
    protect.sign_av_essence = true;
    protect.encrypt_ids = {"quiz"};
    protect.encryption = world.MakeEncryptionSpec();
    image = author.MasterProtected(cluster, protect, &world.rng);
    if (!image.ok()) return image.status();

    std::string fingerprint =
        pki::KeyFingerprint(world.studio_key.public_key);
    DISCSEC_RETURN_IF_ERROR(
        service.Register({fingerprint, world.studio_key.public_key,
                          {"Signature"}, xkms::KeyStatus::kValid}));
    client = std::make_unique<xkms::XkmsClient>(xkms::MakeRetryingTransport(
        xkms::XkmsClient::DirectTransport(&service),
        xkms::RetryingTransportOptions{}, &transport_stats));
    if (async) {
      // The async leg gets its own retrying wrapper so XKMS backoff also
      // parks on the wheel instead of a worker sleeping through it.
      wheel = std::make_unique<TimerWheel>();
      client->set_async_transport(xkms::MakeAsyncRetryingTransport(
          xkms::XkmsClient::DirectAsyncTransport(&service, wheel.get()),
          xkms::RetryingTransportOptions{}, wheel.get()));
    }
    locate_cache = std::make_unique<xkms::LocateCache>(client.get());
    if (jobs > 0) pool = std::make_unique<ThreadPool>(jobs);

    player::PlayerConfig config = world.MakePlayerConfig();
    config.xkms = client.get();
    config.xkms_cache = locate_cache.get();
    config.digest_cache = &digest_cache;
    config.pool = pool.get();
    config.streaming_verify = streaming_verify;
    config.arena_parse = streaming_verify;
    config.tracer = g_tracer;
    config.metrics = g_metrics;
    engine = std::make_unique<player::InteractiveApplicationEngine>(
        std::move(config));
    return Status::OK();
  }

  /// Folds component counters into the --metrics snapshot and prints the
  /// cache/trace summary lines.
  void PrintStats() {
    engine->AbsorbComponentMetrics();
    if (g_metrics != nullptr && transport_stats != nullptr) {
      obs::AbsorbRetryingTransportStats(*transport_stats, g_metrics);
    }
    crypto::DigestCacheStats cache_stats = digest_cache.stats();
    xkms::LocateCacheStats locate_stats = locate_cache->stats();
    std::printf("digest cache: %llu hit(s), %llu miss(es)\n",
                static_cast<unsigned long long>(cache_stats.hits),
                static_cast<unsigned long long>(cache_stats.misses));
    std::printf("xkms locate cache: %llu hit(s), %llu transport call(s)\n",
                static_cast<unsigned long long>(locate_stats.hits),
                static_cast<unsigned long long>(locate_stats.transport_calls));
    if (g_tracer != nullptr) {
      std::printf("captured %zu span(s)\n", g_tracer->size());
    }
  }
};

size_t SizeOption(const Args& args, const std::string& name,
                  const std::string& fallback) {
  return static_cast<size_t>(
      std::strtoul(args.Get(name, fallback).c_str(), nullptr, 10));
}

int CmdPlayDemo(const Args& args) {
  size_t repeat = SizeOption(args, "repeat", "2");
  if (repeat == 0) repeat = 1;
  // --jobs is the preferred spelling; --pool stays accepted.
  size_t jobs = SizeOption(args, "jobs", args.Get("pool", "0"));

  PlayRig rig;
  Status st = rig.Init(jobs, args.Has("async"), args.Has("streaming-verify"));
  if (!st.ok()) return Fail(st);

  for (size_t round = 1; round <= repeat; ++round) {
    auto playback = rig.engine->PlayDisc(rig.image.value());
    if (!playback.ok()) return Fail(playback.status());
    std::printf("round %zu: played %zu track(s), quarantined %zu, app %s\n",
                round, playback->played.size() + (playback->app ? 1u : 0u),
                playback->quarantined.size(),
                playback->app ? "launched" : "absent");
  }
  rig.PrintStats();
  return 0;
}

int CmdPlay(const Args& args) {
  size_t discs = SizeOption(args, "discs", "4");
  if (discs == 0) discs = 1;
  size_t repeat = SizeOption(args, "repeat", "1");
  if (repeat == 0) repeat = 1;
  size_t jobs = SizeOption(args, "jobs", "0");

  PlayRig rig;
  Status st = rig.Init(jobs, args.Has("async"), args.Has("streaming-verify"));
  if (!st.ok()) return Fail(st);

  std::vector<const disc::DiscImage*> batch(discs, &rig.image.value());
  for (size_t round = 1; round <= repeat; ++round) {
    auto results = rig.engine->PlayDiscs(batch);
    size_t tracks = 0, quarantined = 0;
    for (const auto& playback : results) {
      if (!playback.ok()) return Fail(playback.status());
      tracks += playback->played.size() + (playback->app ? 1u : 0u);
      quarantined += playback->quarantined.size();
    }
    std::printf(
        "round %zu: %zu disc(s), %zu track(s) played, %zu quarantined "
        "(%s, %zu job(s))\n",
        round, results.size(), tracks, quarantined,
        args.Has("async") ? "async xkms" : "sync xkms", jobs);
  }
  rig.PrintStats();
  return 0;
}

// ---------------------------------------------------- xkmsd-demo

/// Responder + simulated fleet in one process: seeds a keyspace, drives
/// zipfian Locate traffic through a shared edge LocateCache, runs a
/// revocation storm, then an async overload burst past the Locate queue
/// bound — and prints the shed/coalesce/hit-rate summary. The responder
/// rides the global fault injector, so --inject-fault xkmsd.store:error:0.2
/// (or xkmsd.queue / xkmsd.snapshot) makes the demo degrade live.
int CmdXkmsdDemo(const Args& args) {
  size_t players = SizeOption(args, "players", "200");
  if (players == 0) players = 1;
  size_t keys = SizeOption(args, "keys", "32");
  if (keys == 0) keys = 1;
  size_t jobs = SizeOption(args, "jobs", "4");
  size_t burst = SizeOption(args, "burst", "2000");

  ThreadPool pool(jobs);
  xkms::XkmsdOptions options;
  options.pool = &pool;
  options.tracer = g_tracer;
  options.metrics = g_metrics;
  options.queue_limits[static_cast<size_t>(xkms::XkmsdPriority::kLocate)] =
      256;
  xkms::Xkmsd xkmsd(options);

  testing_world::World world;
  std::vector<std::string> names;
  for (size_t i = 0; i < keys; ++i) {
    xkms::KeyBinding binding;
    binding.name = "studio-key-" + std::to_string(i);
    binding.key = world.studio_key.public_key;
    binding.key_usage = {"Signature"};
    Status st = xkmsd.SeedBinding(binding);
    if (!st.ok()) return Fail(st);
    names.push_back(binding.name);
  }
  xkmsd.RefreshSnapshot();

  // Zipfian popularity (exponent 1): the head keys carry the fleet.
  std::vector<double> cdf(keys);
  double total = 0.0;
  for (size_t i = 0; i < keys; ++i) total += 1.0 / static_cast<double>(i + 1);
  double acc = 0.0;
  for (size_t i = 0; i < keys; ++i) {
    acc += 1.0 / static_cast<double>(i + 1) / total;
    cdf[i] = acc;
  }
  cdf.back() = 1.0;
  Rng rng(20050915);
  auto sample = [&] {
    double u = static_cast<double>(rng.NextUint64() >> 11) * 0x1.0p-53;
    for (size_t i = 0; i < keys; ++i) {
      if (u <= cdf[i]) return i;
    }
    return keys - 1;
  };

  // Phase 1: the fleet locates through one shared edge cache.
  xkms::XkmsClient client(xkms::MakeServerTransport(&xkmsd));
  xkms::LocateCache cache(&client);
  size_t fleet_errors = 0;
  for (size_t p = 0; p < players; ++p) {
    for (int r = 0; r < 3; ++r) {
      if (!cache.Locate(names[sample()]).ok()) ++fleet_errors;
    }
  }

  // Phase 2: revocation storm over the hot half of the keyspace, then the
  // fleet re-checks it (cache invalidated: revocation is exactly the event
  // an edge cache must not paper over).
  size_t stale_valids = 0;
  for (size_t i = 0; i < keys / 2; ++i) {
    // Retry through injected faults until the revocation lands — the
    // post-storm check below assumes every one of these keys is revoked.
    Status st;
    do {
      st = client.Revoke(names[i]);
      if (!st.ok() && !st.IsRetryable()) return Fail(st);
    } while (!st.ok());
    cache.Invalidate(names[i]);
  }
  for (size_t i = 0; i < keys / 2; ++i) {
    auto found = cache.Locate(names[i]);
    if (found.ok() && found->status == xkms::KeyStatus::kValid) {
      ++stale_valids;
    }
  }

  // Phase 3: async overload burst straight into the front door, far past
  // the Locate queue bound; the surplus sheds with retry-after hints.
  std::atomic<size_t> completions{0};
  std::atomic<size_t> shed_hints{0};
  std::atomic<int64_t> max_hint_us{0};
  std::mutex done_mu;
  std::condition_variable done_cv;
  for (size_t i = 0; i < burst; ++i) {
    xkmsd.Submit(xkms::BuildLocateRequest(names[sample()]), {},
                 [&](Result<std::string> response) {
                   if (!response.ok() &&
                       response.status().retry_after_us() > 0) {
                     shed_hints.fetch_add(1);
                     int64_t hint = response.status().retry_after_us();
                     int64_t seen = max_hint_us.load();
                     while (hint > seen &&
                            !max_hint_us.compare_exchange_weak(seen, hint)) {
                     }
                   }
                   if (completions.fetch_add(1) + 1 == burst) {
                     std::lock_guard<std::mutex> lock(done_mu);
                     done_cv.notify_all();
                   }
                 });
  }
  {
    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait(lock, [&] { return completions.load() == burst; });
  }

  xkms::XkmsdStats stats = xkmsd.stats();
  xkms::LocateCacheStats edge = cache.stats();
  if (g_metrics != nullptr) obs::AbsorbXkmsdStats(stats, g_metrics);
  if (g_metrics != nullptr) obs::AbsorbLocateCacheStats(edge, g_metrics);

  std::printf("xkmsd-demo: %zu player(s), %zu key(s), %zu job(s)\n", players,
              keys, jobs);
  std::printf(
      "responder: %llu admitted, %llu served, %llu coalesced, "
      "%llu store lookup(s), %llu degraded\n",
      static_cast<unsigned long long>(stats.admitted),
      static_cast<unsigned long long>(stats.served),
      static_cast<unsigned long long>(stats.coalesced_locates),
      static_cast<unsigned long long>(stats.store_lookups),
      static_cast<unsigned long long>(stats.degraded_locates));
  std::printf(
      "sheds: %llu queue-full, %llu deadline, %llu oversized, "
      "%llu malformed, %llu fault (max retry-after %lldus)\n",
      static_cast<unsigned long long>(stats.shed_queue_full),
      static_cast<unsigned long long>(stats.shed_deadline),
      static_cast<unsigned long long>(stats.shed_oversized),
      static_cast<unsigned long long>(stats.shed_malformed),
      static_cast<unsigned long long>(stats.shed_fault),
      static_cast<long long>(max_hint_us.load()));
  double hit_rate =
      edge.hits + edge.misses > 0
          ? static_cast<double>(edge.hits) /
                static_cast<double>(edge.hits + edge.misses)
          : 0.0;
  std::printf(
      "edge cache: %.1f%% hit rate (%llu hit(s), %llu transport call(s))\n",
      hit_rate * 100.0, static_cast<unsigned long long>(edge.hits),
      static_cast<unsigned long long>(edge.transport_calls));
  std::printf("storm: %zu revoked, %zu stale Valid answer(s)%s\n", keys / 2,
              stale_valids, stale_valids == 0 ? " (good)" : "  <-- BUG");
  if (fleet_errors > 0) {
    std::printf("fleet: %zu request(s) failed (expected under injected "
                "faults)\n",
                fleet_errors);
  }
  if (g_tracer != nullptr) {
    std::printf("captured %zu span(s)\n", g_tracer->size());
  }
  return stale_valids == 0 ? 0 : 1;
}

// ---------------------------------------------------- fleet

/// Mass-playback fleet simulator (DESIGN.md §15): runs the smoke or nightly
/// scenario matrix, prints the deterministic matrix table, optionally
/// writes the discsec-bench-v1 BENCH_fleet.json artifact, and exits
/// non-zero when any in-run invariant (attack acceptance, Valid after
/// revoke, streaming/DOM parity, lost burst submissions) is violated.
int CmdFleet(const Args& args) {
  size_t players = SizeOption(args, "players", "1000");
  if (players == 0) players = 1;
  size_t events_per_player = SizeOption(args, "events-per-player", "1");
  if (events_per_player == 0) events_per_player = 1;
  uint64_t seed =
      std::strtoull(args.Get("seed", "20050915").c_str(), nullptr, 10);
  std::string matrix_name = args.Get("matrix", "smoke");

  std::vector<sim::ScenarioSpec> matrix;
  if (matrix_name == "smoke") {
    matrix = sim::SmokeMatrix(static_cast<uint32_t>(players));
  } else if (matrix_name == "nightly") {
    matrix = sim::NightlyMatrix(static_cast<uint32_t>(players));
  } else {
    return Usage("fleet --matrix must be smoke or nightly");
  }
  for (sim::ScenarioSpec& spec : matrix) {
    spec.events_per_player = static_cast<uint32_t>(events_per_player);
  }

  testing_world::World world;
  auto simulator = sim::FleetSimulator::Create(
      sim_support::MakeFleetEnvironment(world));
  if (!simulator.ok()) return Fail(simulator.status());

  auto report = simulator.value()->RunMatrix(matrix, seed);
  if (!report.ok()) return Fail(report.status());

  std::fputs(sim::MatrixTable(report.value()).c_str(), stdout);

  if (args.Has("json")) {
    std::string path = args.Get("json");
    Status wrote = sim::WriteFleetBenchJson(report.value(), path);
    if (!wrote.ok()) return Fail(wrote);
    std::printf("bench report -> %s\n", path.c_str());
  }

  Status invariants = report.value().CheckInvariants();
  if (!invariants.ok()) return Fail(invariants);
  uint64_t events = 0, attacks_rejected = 0;
  for (const sim::ScenarioResult& row : report.value().rows) {
    events += row.events;
    attacks_rejected += row.attack_rejected;
  }
  std::printf(
      "fleet invariants hold: %llu event(s) across %zu scenario(s), "
      "%llu attack disc(s) rejected, 0 accepted, 0 stale Valid\n",
      static_cast<unsigned long long>(events), report.value().rows.size(),
      static_cast<unsigned long long>(attacks_rejected));
  return 0;
}

// ---------------------------------------------------- regen-golden

int CmdRegenGolden(const Args& args) {
  std::string dir = args.Get("dir", "tests/golden");
  bool write = args.Has("write");
  auto vectors = golden::GenerateGoldenVectors();
  if (!vectors.ok()) return Fail(vectors.status());
  size_t drifted = 0, updated = 0;
  for (const golden::GoldenVector& vector : vectors.value()) {
    std::string path = dir + "/" + vector.filename;
    auto existing = ReadFile(path);
    bool matches = existing.ok() &&
                   golden::CompareGolden(vector.filename, existing.value(),
                                         vector.content)
                       .ok();
    if (matches) continue;
    if (write) {
      Status st = WriteFile(path, vector.content);
      if (!st.ok()) return Fail(st);
      std::printf("updated %s (%zu bytes)\n", path.c_str(),
                  vector.content.size());
      ++updated;
      continue;
    }
    ++drifted;
    if (!existing.ok()) {
      std::fprintf(stderr, "MISSING %s (%zu bytes to write)\n", path.c_str(),
                   vector.content.size());
      continue;
    }
    Status diff = golden::CompareGolden(vector.filename, existing.value(),
                                        vector.content);
    std::fprintf(stderr, "DRIFT   %s\n", diff.message().c_str());
  }
  if (write) {
    std::printf("%zu file(s) updated, %zu unchanged\n", updated,
                vectors->size() - updated);
    return 0;
  }
  if (drifted > 0) {
    std::fprintf(stderr,
                 "%zu golden vector(s) drifted; rerun with --write after "
                 "confirming the change is intentional\n",
                 drifted);
    return 1;
  }
  std::printf("all %zu golden vector(s) match\n", vectors->size());
  return 0;
}

int Dispatch(const Args& args) {
  if (args.command == "keygen") return CmdKeygen(args);
  if (args.command == "cert-root") return CmdCertRoot(args);
  if (args.command == "cert-issue") return CmdCertIssue(args);
  if (args.command == "sign") return CmdSign(args);
  if (args.command == "verify") return CmdVerify(args);
  if (args.command == "encrypt") return CmdEncrypt(args);
  if (args.command == "decrypt") return CmdDecrypt(args);
  if (args.command == "c14n") return CmdC14n(args);
  if (args.command == "play-demo") return CmdPlayDemo(args);
  if (args.command == "play") return CmdPlay(args);
  if (args.command == "xkmsd-demo") return CmdXkmsdDemo(args);
  if (args.command == "fleet") return CmdFleet(args);
  if (args.command == "regen-golden") return CmdRegenGolden(args);
  return Usage(("unknown command '" + args.command + "'").c_str());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage("no command given");
  Args args;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) return Usage("expected --option");
    std::string name = arg.substr(2);
    // Flags without values.
    if (name == "ca" || name == "allow-bare-key" || name == "with-comments" ||
        name == "write" || name == "async" || name == "streaming-verify") {
      args.options[name] = "1";
      continue;
    }
    if (i + 1 >= argc) return Usage(("missing value for --" + name).c_str());
    std::string value = argv[++i];
    if (name == "cert") {
      args.certs.push_back(value);
    } else if (name == "inject-fault") {
      Status st = ArmInjectedFault(value);
      if (!st.ok()) return Usage(st.message().c_str());
    } else {
      args.options[name] = value;
    }
  }

  // Observability sinks live for the whole command; the files are written
  // after it finishes (success or failure — a trace of a failing run is
  // exactly what you want to look at).
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  if (args.Has("trace") || args.Has("trace-text")) g_tracer = &tracer;
  if (args.Has("metrics")) g_metrics = &metrics;

  int rc = Dispatch(args);

  if (args.Has("trace")) {
    Status st = WriteFile(args.Get("trace"), tracer.ChromeTraceJson());
    if (!st.ok()) return Fail(st);
    std::fprintf(stderr, "trace: %zu span(s) -> %s\n", tracer.size(),
                 args.Get("trace").c_str());
  }
  if (args.Has("trace-text")) {
    Status st = WriteFile(args.Get("trace-text"), tracer.TextReport());
    if (!st.ok()) return Fail(st);
  }
  if (args.Has("metrics")) {
    Status st = WriteFile(args.Get("metrics"), metrics.Snapshot().ToJson());
    if (!st.ok()) return Fail(st);
    std::fprintf(stderr, "metrics -> %s\n", args.Get("metrics").c_str());
  }
  return rc;
}
