#ifndef DISCSEC_BENCH_BENCH_JSON_H_
#define DISCSEC_BENCH_BENCH_JSON_H_

#include <benchmark/benchmark.h>

#include <string>

namespace discsec {
namespace bench {

/// Runs every registered benchmark (honoring the usual --benchmark_* flags,
/// console output included) and writes `BENCH_<bench_name>.json` into the
/// current directory with the repository-wide result schema:
///
///   {
///     "schema": "discsec-bench-v1",
///     "bench": "<bench_name>",
///     "results": [
///       {
///         "name": "BM_Case",          // benchmark family
///         "params": "16384/2",        // the /arg suffix, "" when none
///         "iterations": 12345,
///         "samples": 3,               // repetition count behind p50/p99
///         "real_us": {"p50": ..., "p99": ..., "mean": ...},
///         "allocs": 12.0,             // allocs_per_iter, only when tracked
///         "counters": { ... every user counter ... }
///       }, ...
///     ]
///   }
///
/// p50/p99 are nearest-rank percentiles over the per-repetition mean
/// iteration times; a benchmark run without --benchmark_repetitions has one
/// sample and p50 == p99 == mean. Returns the process exit code.
int RunAndExport(const std::string& bench_name);

}  // namespace bench
}  // namespace discsec

/// Drop-in replacement for BENCHMARK_MAIN() that also emits the shared
/// BENCH_<name>.json artifact (the name is the bare experiment name, e.g.
/// "taskgraph" -> BENCH_taskgraph.json).
#define DISCSEC_BENCH_MAIN(bench_name)                                \
  int main(int argc, char** argv) {                                   \
    benchmark::Initialize(&argc, argv);                               \
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    int rc = discsec::bench::RunAndExport(bench_name);                \
    benchmark::Shutdown();                                            \
    return rc;                                                        \
  }

#endif  // DISCSEC_BENCH_BENCH_JSON_H_
