// E14 — async task-graph executor (DESIGN.md §11): multi-disc playback
// throughput under injected XKMS latency.
//
// Blocking fan-out keeps a pool worker sleeping through every trust-service
// round-trip, so a batch of discs serializes on the worker count. The task
// graph runs the XKMS stage as an async node whose transport latency parks
// on the timer wheel — the workers keep verifying and executing the other
// discs' tracks while requests are in flight. Expected shape: the
// TaskGraphWheel rows approach one XKMS round-trip of wall time per batch
// regardless of disc count, while the Blocking rows grow with
// ceil(discs / workers); the gap widens with the injected delay (the 100ms
// rows are the paper's broadband profile).

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "common/fault.h"
#include "common/thread_pool.h"
#include "common/timer_wheel.h"
#include "pki/key_codec.h"
#include "player/engine.h"
#include "player/session.h"
#include "xkms/client.h"
#include "xkms/service.h"

namespace discsec {
namespace {

using bench::SharedWorld;

constexpr int kPoolThreads = 4;

disc::DiscImage SignedDemoImage() {
  auto& world = SharedWorld();
  authoring::Author author = world.MakeAuthor();
  disc::InteractiveCluster cluster = world.DemoCluster();
  auto doc = author.BuildSigned(cluster, authoring::SignLevel::kCluster);
  return author.Master(cluster, doc.value()).value();
}

xkms::XkmsService RegisteredService() {
  auto& world = SharedWorld();
  xkms::XkmsService service;
  std::string fingerprint = pki::KeyFingerprint(world.studio_key.public_key);
  (void)service.Register({fingerprint, world.studio_key.public_key,
                          {"Signature"}, xkms::KeyStatus::kValid});
  return service;
}

/// One batch of identical signed discs through PlayDiscs, with every XKMS
/// transport hop carrying an injected kDelay of range(1) milliseconds.
/// `async_mode` switches the client onto the wheel-parking async transport.
void RunBatch(benchmark::State& state, bool async_mode) {
  auto& world = SharedWorld();
  const int discs = static_cast<int>(state.range(0));
  const int64_t delay_us = state.range(1) * 1000;

  disc::DiscImage image = SignedDemoImage();
  xkms::XkmsService service = RegisteredService();
  fault::FaultInjector injector;
  fault::FaultSpec spec;
  spec.point = std::string(fault::kXkmsTransport);
  spec.kind = fault::Kind::kDelay;
  spec.delay_us = delay_us;
  injector.Arm(spec);

  ThreadPool pool(kPoolThreads);
  TimerWheel wheel;
  xkms::XkmsClient client(
      xkms::XkmsClient::DirectTransport(&service, &injector));
  if (async_mode) {
    client.set_async_transport(
        xkms::XkmsClient::DirectAsyncTransport(&service, &wheel, &injector));
  }
  player::PlayerConfig config = world.MakePlayerConfig();
  config.pool = &pool;
  config.xkms = &client;
  player::InteractiveApplicationEngine engine(std::move(config));

  std::vector<const disc::DiscImage*> batch(static_cast<size_t>(discs),
                                            &image);
  for (auto _ : state) {
    std::vector<Result<player::DiscPlayback>> results =
        engine.PlayDiscs(batch);
    for (const auto& result : results) {
      if (!result.ok()) {
        state.SkipWithError(result.status().ToString().c_str());
        return;
      }
    }
    benchmark::DoNotOptimize(results.size());
  }
  state.SetItemsProcessed(state.iterations() * discs);
  state.counters["discs"] = static_cast<double>(discs);
  state.counters["xkms_delay_ms"] = static_cast<double>(state.range(1));
  state.counters["pool_threads"] = kPoolThreads;
}

void BM_MultiDiscBlockingXkms(benchmark::State& state) {
  RunBatch(state, /*async_mode=*/false);
}
void BM_MultiDiscTaskGraphWheel(benchmark::State& state) {
  RunBatch(state, /*async_mode=*/true);
}

BENCHMARK(BM_MultiDiscBlockingXkms)
    ->Args({4, 20})
    ->Args({8, 20})
    ->Args({8, 100})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3)
    ->UseRealTime();
BENCHMARK(BM_MultiDiscTaskGraphWheel)
    ->Args({4, 20})
    ->Args({8, 20})
    ->Args({8, 100})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3)
    ->UseRealTime();

}  // namespace
}  // namespace discsec

DISCSEC_BENCH_MAIN("taskgraph");
