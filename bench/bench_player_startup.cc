// E7 — §8 feasibility: "this performance reduction while using XML based
// security would be within the allowable performance requirements" of a CE
// player. Measures disc-insert-to-application-running latency for signed,
// signed+encrypted, and unsigned discs, and the security layer's share of
// the total.

#include <benchmark/benchmark.h>

#include "bench/bench_json.h"

#include "bench/bench_util.h"

namespace discsec {
namespace {

using bench::SharedWorld;

enum class Protection { kNone, kSigned, kSignedAndEncrypted };

disc::DiscImage BuildDisc(Protection protection, size_t payload) {
  auto& world = SharedWorld();
  disc::InteractiveCluster cluster = bench::ClusterWithPayload(payload);
  authoring::Author author = world.MakeAuthor();
  xml::Document doc = cluster.ToXml();
  switch (protection) {
    case Protection::kNone:
      break;
    case Protection::kSigned:
      doc = author.BuildSigned(cluster, authoring::SignLevel::kCluster)
                .value();
      break;
    case Protection::kSignedAndEncrypted: {
      authoring::Author::ProtectOptions options;
      options.sign = true;
      options.encrypt_ids = {"quiz"};
      options.encryption = world.MakeEncryptionSpec();
      doc = author.BuildProtected(cluster, options, &world.rng).value();
      break;
    }
  }
  return author.Master(cluster, doc).value();
}

void RunStartup(benchmark::State& state, Protection protection) {
  auto& world = SharedWorld();
  disc::DiscImage image =
      BuildDisc(protection, static_cast<size_t>(state.range(0)));
  player::PhaseTimings timings;
  for (auto _ : state) {
    player::InteractiveApplicationEngine engine(world.MakePlayerConfig());
    auto report = engine.LaunchFromDisc(image);
    if (!report.ok()) {
      state.SkipWithError(report.status().ToString().c_str());
      break;
    }
    timings = report->timings;
  }
  double security_us =
      static_cast<double>(timings.verify_us + timings.decrypt_us);
  double total_us = static_cast<double>(timings.TotalUs());
  state.counters["security_us"] = security_us;
  state.counters["total_us"] = total_us;
  state.counters["security_share"] =
      total_us > 0 ? security_us / total_us : 0;
}

void BM_Startup_Unsigned(benchmark::State& state) {
  RunStartup(state, Protection::kNone);
}
void BM_Startup_Signed(benchmark::State& state) {
  RunStartup(state, Protection::kSigned);
}
void BM_Startup_SignedEncrypted(benchmark::State& state) {
  RunStartup(state, Protection::kSignedAndEncrypted);
}

BENCHMARK(BM_Startup_Unsigned)
    ->Arg(1 << 10)
    ->Arg(32 << 10)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Startup_Signed)
    ->Arg(1 << 10)
    ->Arg(32 << 10)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Startup_SignedEncrypted)
    ->Arg(1 << 10)
    ->Arg(32 << 10)
    ->Unit(benchmark::kMillisecond);

void BM_ScriptExecutionBudget(benchmark::State& state) {
  // Interpreter throughput under the embedded profile: steps per second
  // for a busy loop of the given iteration count.
  script::Limits limits;
  limits.max_steps = 0;  // unlimited for measurement
  std::string source = "var s = 0; for (var i = 0; i < " +
                       std::to_string(state.range(0)) + "; i++) { s += i; }";
  uint64_t steps = 0;
  for (auto _ : state) {
    script::Interpreter interpreter(limits);
    auto result = interpreter.Run(source);
    if (!result.ok()) state.SkipWithError("script failed");
    steps = interpreter.steps_used();
  }
  state.counters["steps"] = static_cast<double>(steps);
  state.counters["steps_per_second"] = benchmark::Counter(
      static_cast<double>(steps) * state.iterations(),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ScriptExecutionBudget)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace discsec

DISCSEC_BENCH_MAIN("player_startup");
