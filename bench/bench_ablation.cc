// Ablations over the design choices DESIGN.md calls out: signature
// algorithm (rsa-sha1 vs rsa-sha256 vs hmac-sha1), RSA modulus size
// (512 vs 1024, author vs player asymmetry), digest algorithm inside the
// references, AES key size for content encryption, and C14N-in-the-loop
// versus the (incorrect) plain-serialization digesting a naive
// implementation might attempt.

#include <benchmark/benchmark.h>

#include "bench/bench_json.h"

#include "bench/bench_util.h"
#include "crypto/sha1.h"
#include "xml/c14n.h"
#include "xmldsig/verifier.h"

namespace discsec {
namespace {

using bench::SharedWorld;

xml::Document TestDoc() {
  return xml::Parse(bench::ClusterWithPayload(16 << 10).ToXmlString())
      .value();
}

// --------------------------------------------- signature algorithm

void BM_SignatureAlgorithm(benchmark::State& state) {
  auto& world = SharedWorld();
  const char* names[] = {"rsa_sha1", "rsa_sha256", "hmac_sha1"};
  int which = static_cast<int>(state.range(0));
  xmldsig::SigningKey key;
  xmldsig::VerifyOptions verify;
  Bytes secret = ToBytes("shared-player-secret");
  switch (which) {
    case 0:
      key = xmldsig::SigningKey::Rsa(world.studio_key.private_key,
                                     crypto::kAlgRsaSha1);
      verify.trusted_key = world.studio_key.public_key;
      break;
    case 1:
      key = xmldsig::SigningKey::Rsa(world.studio_key.private_key,
                                     crypto::kAlgRsaSha256);
      verify.trusted_key = world.studio_key.public_key;
      break;
    case 2:
      key = xmldsig::SigningKey::HmacSecret(secret);
      verify.hmac_secret = secret;
      break;
  }
  xmldsig::Signer signer(key, {});
  xml::Document doc = TestDoc();
  auto sig = signer.SignEnveloped(&doc, doc.root());
  if (!sig.ok()) {
    state.SkipWithError("sign failed");
    return;
  }
  bool verify_side = state.range(1) == 1;
  for (auto _ : state) {
    if (verify_side) {
      auto result = xmldsig::Verifier::VerifyFirstSignature(doc, verify);
      if (!result.ok()) state.SkipWithError("verify failed");
      benchmark::DoNotOptimize(result.ok());
    } else {
      xml::Document fresh = TestDoc();
      auto s = signer.SignEnveloped(&fresh, fresh.root());
      if (!s.ok()) state.SkipWithError("sign failed");
      benchmark::DoNotOptimize(s.value());
    }
  }
  state.SetLabel(std::string(names[which]) +
                 (verify_side ? "/verify" : "/sign"));
}
BENCHMARK(BM_SignatureAlgorithm)
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({2, 0})
    ->Args({2, 1})
    ->Unit(benchmark::kMicrosecond);

// --------------------------------------------- RSA modulus size

void BM_RsaModulusSize(benchmark::State& state) {
  Rng rng(515);
  auto pair = crypto::RsaGenerateKeyPair(
                  static_cast<size_t>(state.range(0)), &rng)
                  .value();
  xmldsig::KeyInfoSpec ki;
  ki.include_key_value = true;
  xmldsig::Signer signer(xmldsig::SigningKey::Rsa(pair.private_key), ki);
  xml::Document doc = TestDoc();
  auto sig = signer.SignEnveloped(&doc, doc.root());
  if (!sig.ok()) {
    state.SkipWithError("sign failed");
    return;
  }
  xmldsig::VerifyOptions verify;
  verify.allow_bare_key_value = true;
  bool verify_side = state.range(1) == 1;
  for (auto _ : state) {
    if (verify_side) {
      auto result = xmldsig::Verifier::VerifyFirstSignature(doc, verify);
      if (!result.ok()) state.SkipWithError("verify failed");
    } else {
      xml::Document fresh = TestDoc();
      auto s = signer.SignEnveloped(&fresh, fresh.root());
      if (!s.ok()) state.SkipWithError("sign failed");
    }
  }
  state.SetLabel(std::to_string(state.range(0)) +
                 (verify_side ? "b/verify" : "b/sign"));
}
BENCHMARK(BM_RsaModulusSize)
    ->Args({512, 0})
    ->Args({512, 1})
    ->Args({1024, 0})
    ->Args({1024, 1})
    ->Unit(benchmark::kMicrosecond);

// --------------------------------------------- AES key size (content)

void BM_ContentCipherKeySize(benchmark::State& state) {
  auto& world = SharedWorld();
  xmlenc::EncryptionSpec spec;
  spec.key_mode = xmlenc::KeyMode::kDirectReference;
  spec.key_name = "k";
  spec.content_algorithm = state.range(0) == 128 ? crypto::kAlgAes128Cbc
                                                 : crypto::kAlgAes256Cbc;
  auto encryptor = xmlenc::Encryptor::Create(spec, &world.rng).value();
  Bytes payload = world.rng.NextBytes(64 << 10);
  for (auto _ : state) {
    auto data = encryptor.EncryptData(payload);
    if (!data.ok()) state.SkipWithError("encrypt failed");
    benchmark::DoNotOptimize(data.value()->name());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(payload.size()));
  state.SetLabel("aes-" + std::to_string(state.range(0)));
}
BENCHMARK(BM_ContentCipherKeySize)->Arg(128)->Arg(256);

// --------------------------------------------- C14N in the loop

void BM_DigestPath_C14N(benchmark::State& state) {
  // What the spec requires: canonicalize, then digest.
  xml::Document doc = TestDoc();
  for (auto _ : state) {
    std::string canonical = xml::Canonicalize(doc);
    benchmark::DoNotOptimize(
        crypto::Sha1::Hash(ToBytes(canonical)));
  }
}

void BM_DigestPath_PlainSerialize(benchmark::State& state) {
  // The naive alternative (digest the serializer output): ~the same cost —
  // C14N is NOT the expensive part, so there is no performance excuse for
  // skipping it and breaking cross-implementation verification.
  xml::Document doc = TestDoc();
  xml::SerializeOptions options;
  options.xml_declaration = false;
  for (auto _ : state) {
    std::string plain = xml::Serialize(doc, options);
    benchmark::DoNotOptimize(crypto::Sha1::Hash(ToBytes(plain)));
  }
}
BENCHMARK(BM_DigestPath_C14N)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_DigestPath_PlainSerialize)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace discsec

DISCSEC_BENCH_MAIN("ablation");
