// E12 — the parallel verification engine: PlayDisc swept over executor
// counts (1 = the serial-equivalent pool path, then 2/4/8) and disc sizes,
// and the content-addressed digest cache measured cold vs warm. The speedup
// claims only mean anything on a multi-core host (CI runners); on a 1-CPU
// container the thread sweep degenerates to constant time plus scheduling
// overhead, while the cache hit-rate win is machine-independent.
//
// Thread accounting: "threads" is the number of EXECUTING threads. The
// calling thread always participates in ParallelFor, so a pool of N workers
// gives N+1 executors — the sweep therefore builds ThreadPool(threads - 1).

#include <benchmark/benchmark.h>

#include "bench/bench_json.h"

#include <map>
#include <memory>
#include <string>

#include "authoring/author.h"
#include "bench/bench_util.h"
#include "common/thread_pool.h"
#include "crypto/digest_cache.h"
#include "crypto/sha256.h"
#include "player/engine.h"

namespace discsec {
namespace player {
namespace {

using bench::SharedWorld;

/// DemoCluster plus extra AV tracks, each with its own clip, playlist and
/// signed essence — the per-track fan-out workload.
disc::InteractiveCluster MultiTrackCluster(size_t av_tracks) {
  disc::InteractiveCluster cluster = SharedWorld().DemoCluster();
  for (size_t i = 2; i <= av_tracks; ++i) {
    std::string n = std::to_string(i);
    disc::ClipInfo clip;
    clip.id = "clip-" + n;
    clip.ts_path = std::string(disc::kStreamDir) + "clip" + n + ".m2ts";
    clip.duration_ms = 4000;  // bigger essence -> more digest work per track
    cluster.clips.push_back(clip);
    disc::Playlist playlist;
    playlist.id = "pl-" + n;
    playlist.items.push_back({clip.id, 0, 4000});
    cluster.playlists.push_back(playlist);
    disc::Track track;
    track.id = "track-av-" + n;
    track.kind = disc::Track::Kind::kAudioVideo;
    track.playlist_id = playlist.id;
    cluster.tracks.push_back(track);
  }
  return cluster;
}

/// Protected multi-track image with one external essence reference per clip
/// (sign_av_essence), cached per track count.
const disc::DiscImage& ImageWithTracks(size_t av_tracks) {
  static std::map<size_t, const disc::DiscImage*> images;
  auto it = images.find(av_tracks);
  if (it == images.end()) {
    authoring::Author::ProtectOptions options;
    options.sign = true;
    options.sign_av_essence = true;
    Rng rng(av_tracks);
    it = images
             .emplace(av_tracks,
                      new disc::DiscImage(
                          SharedWorld()
                              .MakeAuthor()
                              .MasterProtected(MultiTrackCluster(av_tracks),
                                               options, &rng)
                              .value()))
             .first;
  }
  return *it->second;
}

/// Full disc insertion: application launch (multi-reference signature
/// verification) plus a playback plan per AV track. range(0) = executing
/// threads, range(1) = AV tracks. No digest cache: pure parallel speedup.
void BM_PlayDisc_Threads(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  const size_t tracks = static_cast<size_t>(state.range(1));
  const disc::DiscImage& image = ImageWithTracks(tracks);
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads - 1);
  for (auto _ : state) {
    PlayerConfig config = SharedWorld().MakePlayerConfig();
    config.pool = pool.get();
    InteractiveApplicationEngine engine(std::move(config));
    auto playback = engine.PlayDisc(image);
    if (!playback.ok()) state.SkipWithError("PlayDisc failed");
    benchmark::DoNotOptimize(playback.value().played.size());
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["tracks"] = static_cast<double>(tracks);
}
BENCHMARK(BM_PlayDisc_Threads)
    ->ArgsProduct({{1, 2, 4, 8}, {4, 12}})
    ->Unit(benchmark::kMillisecond);

/// The same insertion with a per-iteration (cold) digest cache: every
/// reference misses, so this is the cache's bookkeeping overhead on top of
/// the serial baseline above.
void BM_PlayDisc_ColdCache(benchmark::State& state) {
  const size_t tracks = static_cast<size_t>(state.range(0));
  const disc::DiscImage& image = ImageWithTracks(tracks);
  for (auto _ : state) {
    crypto::DigestCache cache;
    PlayerConfig config = SharedWorld().MakePlayerConfig();
    config.digest_cache = &cache;
    InteractiveApplicationEngine engine(std::move(config));
    auto playback = engine.PlayDisc(image);
    if (!playback.ok()) state.SkipWithError("PlayDisc failed");
    benchmark::DoNotOptimize(playback.value().played.size());
  }
  state.counters["tracks"] = static_cast<double>(tracks);
  state.counters["hit_rate"] = 0.0;
}
BENCHMARK(BM_PlayDisc_ColdCache)
    ->Arg(4)
    ->Arg(12)
    ->Unit(benchmark::kMillisecond);

/// Warm cache: one shared DigestCache seeded by a first insertion, then
/// every iteration re-verifies the same disc — the repeated-insertion /
/// fleet-of-players case. hit_rate records the measured fraction of digest
/// computations served from the cache during the timed loop.
void BM_PlayDisc_WarmCache(benchmark::State& state) {
  const size_t tracks = static_cast<size_t>(state.range(0));
  const disc::DiscImage& image = ImageWithTracks(tracks);
  crypto::DigestCache cache;
  {
    PlayerConfig config = SharedWorld().MakePlayerConfig();
    config.digest_cache = &cache;
    InteractiveApplicationEngine engine(std::move(config));
    if (!engine.PlayDisc(image).ok()) state.SkipWithError("warmup failed");
  }
  crypto::DigestCacheStats before = cache.stats();
  for (auto _ : state) {
    PlayerConfig config = SharedWorld().MakePlayerConfig();
    config.digest_cache = &cache;
    InteractiveApplicationEngine engine(std::move(config));
    auto playback = engine.PlayDisc(image);
    if (!playback.ok()) state.SkipWithError("PlayDisc failed");
    benchmark::DoNotOptimize(playback.value().played.size());
  }
  crypto::DigestCacheStats after = cache.stats();
  const double hits = static_cast<double>(after.hits - before.hits);
  const double misses = static_cast<double>(after.misses - before.misses);
  state.counters["tracks"] = static_cast<double>(tracks);
  state.counters["hit_rate"] =
      hits + misses > 0 ? hits / (hits + misses) : 0.0;
}
BENCHMARK(BM_PlayDisc_WarmCache)
    ->Arg(4)
    ->Arg(12)
    ->Unit(benchmark::kMillisecond);

/// Microbenchmark of the cache itself: digesting `range(0)` bytes through a
/// CachingDigestSink on a guaranteed miss (fresh content key per iteration
/// is emulated by clearing) vs a guaranteed hit. The hit skips the real
/// digest pass entirely, so the gap is the per-reference win a warm cache
/// delivers independent of core count.
void BM_DigestSink_Miss(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  Bytes data(len, 0x5A);
  crypto::DigestCache cache;
  for (auto _ : state) {
    cache.Clear();
    crypto::Sha256 digest;
    crypto::CachingDigestSink sink(&cache, &digest,
                                   "http://www.w3.org/2000/09/xmldsig#sha1");
    sink.Append(data.data(), data.size());
    benchmark::DoNotOptimize(sink.Finalize());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(len));
}
BENCHMARK(BM_DigestSink_Miss)->Arg(4096)->Arg(262144);

void BM_DigestSink_Hit(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  Bytes data(len, 0x5A);
  crypto::DigestCache cache;
  {
    crypto::Sha256 digest;
    crypto::CachingDigestSink sink(&cache, &digest,
                                   "http://www.w3.org/2000/09/xmldsig#sha1");
    sink.Append(data.data(), data.size());
    benchmark::DoNotOptimize(sink.Finalize());
  }
  for (auto _ : state) {
    crypto::Sha256 digest;
    crypto::CachingDigestSink sink(&cache, &digest,
                                   "http://www.w3.org/2000/09/xmldsig#sha1");
    sink.Append(data.data(), data.size());
    benchmark::DoNotOptimize(sink.Finalize());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(len));
}
BENCHMARK(BM_DigestSink_Hit)->Arg(4096)->Arg(262144);

}  // namespace
}  // namespace player
}  // namespace discsec

DISCSEC_BENCH_MAIN("parallel");
