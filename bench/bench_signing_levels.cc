// E3 — Figs. 3-5: signing/verification at the levels of the content
// hierarchy (cluster, track, manifest, markup part, code part, single
// script, single SubMarkup).
//
// Expected shape (the §9 claim "the flexibility of partially signing ...
// translates into better performance"): verification cost drops with
// granularity because fewer bytes are canonicalized and digested; the
// signed_bytes counter makes the scope visible.

#include <benchmark/benchmark.h>

#include "bench/alloc_tracker.h"
#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "common/byte_sink.h"
#include "xml/c14n.h"
#include "xmldsig/verifier.h"

namespace discsec {
namespace {

using authoring::SignLevel;
using bench::SharedWorld;

const SignLevel kLevels[] = {
    SignLevel::kCluster,   SignLevel::kTrack,  SignLevel::kManifest,
    SignLevel::kMarkupPart, SignLevel::kCodePart, SignLevel::kScript,
    SignLevel::kSubMarkup,
};

std::string NameFor(SignLevel level) {
  return authoring::SignLevelName(level);
}

std::string ArgName(SignLevel level) {
  std::string n = NameFor(level);
  for (char& c : n) {
    if (c == '-') c = '_';
  }
  return n;
}

size_t SignedBytes(const disc::InteractiveCluster& cluster, SignLevel level,
                   const std::string& name) {
  // CountingSink measures the canonical size without materializing the
  // canonical form — the same streaming path the signer itself uses.
  xml::Document doc = cluster.ToXml();
  CountingSink sink;
  if (level == SignLevel::kCluster) {
    xml::Canonicalize(doc, xml::C14NOptions(), &sink);
  } else {
    std::string id =
        authoring::ResolveSignTargetId(cluster, level, "", name).value();
    xml::CanonicalizeElement(*doc.FindById(id), xml::C14NOptions(), &sink);
  }
  return sink.count();
}

void RunSign(benchmark::State& state, SignLevel level,
             const std::string& name) {
  auto& world = SharedWorld();
  // A sizable application so granularity differences are visible.
  disc::InteractiveCluster cluster = bench::ClusterWithPayload(32 << 10);
  authoring::Author author = world.MakeAuthor();
  bench::ResetAllocStats();
  for (auto _ : state) {
    auto doc = author.BuildSigned(cluster, level, "", name);
    if (!doc.ok()) state.SkipWithError(doc.status().ToString().c_str());
    benchmark::DoNotOptimize(doc.value().root());
  }
  state.counters["peak_alloc_bytes"] =
      static_cast<double>(bench::AllocPeakBytes());
  state.counters["allocs_per_iter"] =
      static_cast<double>(bench::AllocCount()) /
      static_cast<double>(state.iterations());
  state.counters["signed_bytes"] =
      static_cast<double>(SignedBytes(cluster, level, name));
}

void RunVerify(benchmark::State& state, SignLevel level,
               const std::string& name) {
  auto& world = SharedWorld();
  disc::InteractiveCluster cluster = bench::ClusterWithPayload(32 << 10);
  authoring::Author author = world.MakeAuthor();
  auto doc = author.BuildSigned(cluster, level, "", name);
  std::string wire = xml::Serialize(doc.value());
  pki::CertStore store;
  (void)store.AddTrustedRoot(world.root_cert);
  bench::ResetAllocStats();
  for (auto _ : state) {
    auto parsed = xml::Parse(wire).value();
    xmldsig::VerifyOptions options;
    options.cert_store = &store;
    options.now = testing_world::kNow;
    auto result = xmldsig::Verifier::VerifyFirstSignature(parsed, options);
    if (!result.ok()) state.SkipWithError("verify failed");
    benchmark::DoNotOptimize(result.value().signer_subject);
  }
  state.counters["peak_alloc_bytes"] =
      static_cast<double>(bench::AllocPeakBytes());
  state.counters["allocs_per_iter"] =
      static_cast<double>(bench::AllocCount()) /
      static_cast<double>(state.iterations());
  state.counters["signed_bytes"] =
      static_cast<double>(SignedBytes(cluster, level, name));
  state.counters["wire_bytes"] = static_cast<double>(wire.size());
}

void RegisterAll() {
  for (SignLevel level : kLevels) {
    std::string name = level == SignLevel::kScript      ? "main"
                       : level == SignLevel::kSubMarkup ? "menu"
                                                        : "";
    benchmark::RegisterBenchmark(
        ("BM_Sign/" + ArgName(level)).c_str(),
        [level, name](benchmark::State& state) { RunSign(state, level, name); })
        ->Unit(benchmark::kMicrosecond);
    benchmark::RegisterBenchmark(
        ("BM_Verify/" + ArgName(level)).c_str(),
        [level, name](benchmark::State& state) {
          RunVerify(state, level, name);
        })
        ->Unit(benchmark::kMicrosecond);
  }
}

}  // namespace
}  // namespace discsec

int main(int argc, char** argv) {
  discsec::RegisterAll();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  int rc = discsec::bench::RunAndExport("signing_levels");
  benchmark::Shutdown();
  return rc;
}
