// E5 — Figs. 7-8: XML Encryption of the Track target (non-markup octets,
// embedded vs detached EncryptedData) and the Manifest target (element
// replaced in place), plus the paper's partial-encryption performance
// claim: "the player needs to decrypt only the scores, which can be done in
// parallel to the execution of the markup" — here measured as
// partial-vs-full decrypt cost.

#include <benchmark/benchmark.h>

#include "bench/bench_json.h"

#include "bench/bench_util.h"
#include "disc/content.h"
#include "xmlenc/decryptor.h"
#include "xmlenc/encryptor.h"

namespace discsec {
namespace {

using bench::SharedWorld;

xmlenc::KeyRing Ring() {
  xmlenc::KeyRing ring;
  ring.AddKey("disc-content-key", SharedWorld().disc_content_key);
  return ring;
}

void BM_EncryptTrackData(benchmark::State& state) {
  // Fig. 7: a chapter's AV essence as a standalone EncryptedData.
  auto& world = SharedWorld();
  Bytes ts = disc::GenerateTransportStream(
      1, static_cast<size_t>(state.range(0)));
  auto encryptor =
      xmlenc::Encryptor::Create(world.MakeEncryptionSpec(), &world.rng)
          .value();
  for (auto _ : state) {
    auto data = encryptor.EncryptData(ts, "video/mp2t", "enc-track");
    if (!data.ok()) state.SkipWithError("encrypt failed");
    benchmark::DoNotOptimize(data.value()->name());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(ts.size()));
}
BENCHMARK(BM_EncryptTrackData)->Arg(16)->Arg(256)->Arg(1024);

void BM_DecryptTrackData(benchmark::State& state) {
  auto& world = SharedWorld();
  Bytes ts = disc::GenerateTransportStream(
      1, static_cast<size_t>(state.range(0)));
  auto encryptor =
      xmlenc::Encryptor::Create(world.MakeEncryptionSpec(), &world.rng)
          .value();
  auto data = encryptor.EncryptData(ts, "video/mp2t").value();
  xmlenc::Decryptor decryptor(Ring());
  for (auto _ : state) {
    auto plain = decryptor.DecryptData(*data);
    if (!plain.ok()) state.SkipWithError("decrypt failed");
    benchmark::DoNotOptimize(plain.value().size());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(ts.size()));
}
BENCHMARK(BM_DecryptTrackData)->Arg(16)->Arg(256)->Arg(1024);

void BM_EncryptManifestElement(benchmark::State& state) {
  // Fig. 8: the XML manifest element replaced in place.
  auto& world = SharedWorld();
  disc::InteractiveCluster cluster =
      bench::ClusterWithPayload(static_cast<size_t>(state.range(0)));
  auto encryptor =
      xmlenc::Encryptor::Create(world.MakeEncryptionSpec(), &world.rng)
          .value();
  for (auto _ : state) {
    xml::Document doc = cluster.ToXml();
    auto result =
        encryptor.EncryptElement(&doc, doc.FindById("quiz"), "enc-quiz");
    if (!result.ok()) state.SkipWithError("encrypt failed");
    benchmark::DoNotOptimize(result.value());
  }
}
BENCHMARK(BM_EncryptManifestElement)
    ->Arg(1 << 10)
    ->Arg(16 << 10)
    ->Arg(128 << 10)
    ->Unit(benchmark::kMicrosecond);

// ------------------------------------------------- partial vs full

/// A local-storage scores document next to markup, as in §4's example.
std::string ScoresDoc(int entries) {
  std::string out = "<app><markup>";
  for (int i = 0; i < 200; ++i) out += "<widget idx=\"" + std::to_string(i) +
                                       "\">layout chrome</widget>";
  out += "</markup><scores>";
  for (int i = 0; i < entries; ++i) {
    out += "<entry rank=\"" + std::to_string(i) + "\">" +
           std::to_string(10000 - i) + "</entry>";
  }
  out += "</scores></app>";
  return out;
}

void BM_PartialEncryptScoresOnly(benchmark::State& state) {
  // Encrypt only <scores>: the markup stays plaintext and needs no crypto
  // work at load time.
  auto& world = SharedWorld();
  std::string text = ScoresDoc(static_cast<int>(state.range(0)));
  auto encryptor =
      xmlenc::Encryptor::Create(world.MakeEncryptionSpec(), &world.rng)
          .value();
  xmlenc::Decryptor decryptor(Ring());
  for (auto _ : state) {
    auto doc = xml::Parse(text).value();
    xml::Element* scores =
        doc.root()->FirstChildElementByLocalName("scores");
    if (!encryptor.EncryptElement(&doc, scores).ok()) {
      state.SkipWithError("encrypt failed");
    }
    if (!decryptor.DecryptAll(&doc, nullptr, {}).ok()) {
      state.SkipWithError("decrypt failed");
    }
    benchmark::DoNotOptimize(doc.root());
  }
}
BENCHMARK(BM_PartialEncryptScoresOnly)
    ->Arg(10)
    ->Arg(100)
    ->Arg(1000)
    ->Unit(benchmark::kMicrosecond);

void BM_FullEncryptWholeApp(benchmark::State& state) {
  // Encrypt the whole application element: every load pays for the markup
  // bytes too.
  auto& world = SharedWorld();
  std::string text = ScoresDoc(static_cast<int>(state.range(0)));
  auto encryptor =
      xmlenc::Encryptor::Create(world.MakeEncryptionSpec(), &world.rng)
          .value();
  xmlenc::Decryptor decryptor(Ring());
  for (auto _ : state) {
    auto doc = xml::Parse(text).value();
    // Encrypt the root's content (everything).
    if (!encryptor.EncryptContent(&doc, doc.root()).ok()) {
      state.SkipWithError("encrypt failed");
    }
    if (!decryptor.DecryptAll(&doc, nullptr, {}).ok()) {
      state.SkipWithError("decrypt failed");
    }
    benchmark::DoNotOptimize(doc.root());
  }
}
BENCHMARK(BM_FullEncryptWholeApp)
    ->Arg(10)
    ->Arg(100)
    ->Arg(1000)
    ->Unit(benchmark::kMicrosecond);

// ------------------------------------------------- key handling modes

void BM_KeyMode(benchmark::State& state) {
  auto& world = SharedWorld();
  Bytes payload = world.rng.NextBytes(4096);
  xmlenc::EncryptionSpec spec;
  xmlenc::KeyRing ring;
  switch (state.range(0)) {
    case 0:  // direct reference
      spec = world.MakeEncryptionSpec();
      ring.AddKey("disc-content-key", world.disc_content_key);
      break;
    case 1:  // AES key wrap
      spec.key_mode = xmlenc::KeyMode::kAesKeyWrap;
      spec.kek = world.disc_content_key;
      spec.key_name = "kek";
      ring.AddKey("kek", world.disc_content_key);
      break;
    case 2:  // RSA transport
      spec.key_mode = xmlenc::KeyMode::kRsaTransport;
      spec.recipient_key = world.server_key.public_key;
      ring.SetRsaKey(world.server_key.private_key);
      break;
  }
  xmlenc::Decryptor decryptor(std::move(ring));
  for (auto _ : state) {
    auto encryptor = xmlenc::Encryptor::Create(spec, &world.rng).value();
    auto data = encryptor.EncryptData(payload);
    if (!data.ok()) state.SkipWithError("encrypt failed");
    auto plain = decryptor.DecryptData(*data.value());
    if (!plain.ok()) state.SkipWithError("decrypt failed");
    benchmark::DoNotOptimize(plain.value().size());
  }
  static const char* kNames[] = {"direct", "kw_aes", "rsa_transport"};
  state.SetLabel(kNames[state.range(0)]);
}
BENCHMARK(BM_KeyMode)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace discsec

DISCSEC_BENCH_MAIN("encryption_targets");
