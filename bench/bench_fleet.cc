// E18 — mass-playback fleet simulator throughput (DESIGN.md §15).
//
// Each benchmark drives one scenario-matrix row through the simulator:
// mixed traffic (all §5 signing levels, all §6 encryption targets, the
// scratched degraded disc, interleaved attack-corpus documents) against
// the composed fleet stack — shared DigestCache/LocateCache, the xkmsd
// responder, and in the pool rows a worker pool plus an async overload
// burst. The in-run invariants stay armed: an accepted attack disc, a
// Valid-after-revoke verdict or a streaming/DOM parity mismatch fails the
// benchmark instead of producing a fast-but-wrong number.
//
// Scale: --benchmark_filter picks rows; the default 10^3 players per
// iteration is the nightly PR size, 10^4-10^5 is a one-flag change
// (FLEET_PLAYERS env) for the full fleet sweep.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>
#include <string>

#include "bench/bench_json.h"
#include "sim/fleet.h"
#include "sim/scenario.h"
#include "tests/sim_support.h"

namespace discsec {
namespace {

uint32_t FleetPlayers() {
  const char* env = std::getenv("FLEET_PLAYERS");
  if (env != nullptr && *env != '\0') {
    return static_cast<uint32_t>(std::strtoul(env, nullptr, 10));
  }
  return 1000;
}

sim::FleetSimulator& Simulator() {
  static std::unique_ptr<sim::FleetSimulator> simulator = [] {
    static testing_world::World world;
    auto made = sim::FleetSimulator::Create(
        sim_support::MakeFleetEnvironment(world));
    if (!made.ok()) {
      std::fprintf(stderr, "FleetSimulator::Create: %s\n",
                   made.status().ToString().c_str());
      std::abort();
    }
    return std::move(made).value();
  }();
  return *simulator;
}

const sim::ScenarioSpec& RowByName(const std::string& name) {
  static std::vector<sim::ScenarioSpec> matrix =
      sim::NightlyMatrix(FleetPlayers());
  for (const sim::ScenarioSpec& spec : matrix) {
    if (spec.name == name) return spec;
  }
  std::fprintf(stderr, "no scenario '%s' in the nightly matrix\n",
               name.c_str());
  std::abort();
}

void BM_Fleet(benchmark::State& state, const char* scenario_name) {
  const sim::ScenarioSpec& spec = RowByName(scenario_name);
  uint64_t seed = 20050915;
  uint64_t events = 0, rejected = 0, clean = 0, degraded = 0;
  for (auto _ : state) {
    auto row = Simulator().Run(spec, seed);
    seed += 7919;  // fresh-but-replayable event plan per iteration
    if (!row.ok()) {
      state.SkipWithError(row.status().ToString().c_str());
      break;
    }
    if (row->attack_accepted != 0 || row->attack_wrong_code != 0 ||
        row->incorrect_valid != 0 || row->parity_mismatches != 0 ||
        row->burst_completions != row->burst_submitted) {
      state.SkipWithError("fleet invariant violated");
      break;
    }
    events += row->events;
    rejected += row->attack_rejected;
    clean += row->played_clean;
    degraded += row->played_degraded;
  }
  state.counters["events_per_s"] =
      benchmark::Counter(static_cast<double>(events),
                         benchmark::Counter::kIsRate);
  state.counters["attack_rejected"] = static_cast<double>(rejected);
  state.counters["played_clean"] = static_cast<double>(clean);
  state.counters["played_degraded"] = static_cast<double>(degraded);
}

BENCHMARK_CAPTURE(BM_Fleet, cold_dom, "cold-dom")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Fleet, warm_dom, "warm-dom")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Fleet, cold_streaming, "cold-streaming")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Fleet, warm_streaming, "warm-streaming")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Fleet, parity, "parity")->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Fleet, chaos_disc, "chaos-disc")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Fleet, throughput_pool4, "throughput-pool4")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Fleet, overload_burst, "overload-burst")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Fleet, chaos_storm_pool4, "chaos-storm-pool4")
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace discsec

DISCSEC_BENCH_MAIN("fleet")
