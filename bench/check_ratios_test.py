#!/usr/bin/env python3
"""Regression harness for the check_ratios.py perf gate.

The gate is itself load-bearing CI logic: if a refactor silently made it
accept everything (wrong counter names, inverted direction, broken exit
code), streaming-verify regressions would ship unnoticed. This test feeds
the checker the checked-in baseline plus synthetically degraded copies and
asserts the exit codes and failure messages it MUST produce:

  1. baseline vs itself                      -> pass (the fixpoint)
  2. streaming_speedup crushed to 60%        -> fail (absolute floor >= 2.0
                                                AND the relative floor)
  3. streaming_over_dcf inflated by 25%      -> fail (relative ceiling only;
                                                no absolute gate exists for
                                                this counter)
  4. empty results array                     -> fail (zero gates checked
                                                means the wrong input file)
  5. streaming_over_dcf drifted +5%          -> pass (inside the 10% slack)

Runs standalone (python3 bench/check_ratios_test.py) and as the
check_ratios_gate ctest.
"""

import copy
import json
import os
import subprocess
import sys
import tempfile

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
CHECKER = os.path.join(BENCH_DIR, "check_ratios.py")
BASELINE = os.path.join(BENCH_DIR, "baselines", "BENCH_ratio.baseline.json")

failures = []


def run_checker(doc, extra_args=()):
    """Writes `doc` to a temp BENCH_ratio.json and runs the gate on it."""
    with tempfile.NamedTemporaryFile(
        "w", suffix=".json", delete=False
    ) as tmp:
        json.dump(doc, tmp)
        path = tmp.name
    try:
        proc = subprocess.run(
            [sys.executable, CHECKER, path, "--baseline", BASELINE]
            + list(extra_args),
            capture_output=True,
            text=True,
        )
        return proc.returncode, proc.stdout + proc.stderr
    finally:
        os.unlink(path)


def scaled(doc, counter, factor):
    """A deep copy of `doc` with every `counter` occurrence multiplied."""
    out = copy.deepcopy(doc)
    for row in out["results"]:
        counters = row.get("counters", {})
        if counter in counters:
            counters[counter] *= factor
    return out


def expect(name, rc, output, want_rc, want_substrings=()):
    problems = []
    if rc != want_rc:
        problems.append(f"exit code {rc}, want {want_rc}")
    for substring in want_substrings:
        if substring not in output:
            problems.append(f"output missing {substring!r}")
    if problems:
        failures.append(f"{name}: " + "; ".join(problems) + "\n" + output)
        print(f"FAIL {name}")
    else:
        print(f"ok   {name}")


def main():
    with open(BASELINE) as f:
        baseline = json.load(f)

    rc, out = run_checker(baseline)
    expect("baseline-vs-itself passes", rc, out, 0, ["check_ratios: OK"])

    rc, out = run_checker(scaled(baseline, "streaming_speedup", 0.6))
    expect(
        "crushed streaming_speedup fails both gates",
        rc,
        out,
        1,
        ["violates absolute gate", "streaming_speedup regressed"],
    )

    rc, out = run_checker(scaled(baseline, "streaming_over_dcf", 1.25))
    expect(
        "inflated streaming_over_dcf fails the relative ceiling",
        rc,
        out,
        1,
        ["streaming_over_dcf regressed", "ceiling"],
    )

    empty = copy.deepcopy(baseline)
    empty["results"] = []
    rc, out = run_checker(empty)
    expect(
        "empty results is rejected, not vacuously green",
        rc,
        out,
        1,
        ["no ratio counters"],
    )

    rc, out = run_checker(scaled(baseline, "streaming_over_dcf", 1.05))
    expect("5% drift stays inside the slack", rc, out, 0,
           ["check_ratios: OK"])

    if failures:
        print(f"\ncheck_ratios_test: {len(failures)} failure(s)")
        for failure in failures:
            print(failure)
        return 1
    print("check_ratios_test: all gate behaviors verified")
    return 0


if __name__ == "__main__":
    sys.exit(main())
