// E11 — resilience overhead: what the always-compiled-in fault-injection
// instrumentation and the retrying XKMS transport cost on the fault-free
// fast path. The acceptance bar is <2% on the end-to-end disc launch; the
// per-layer benchmarks localize any regression.

#include <benchmark/benchmark.h>

#include "bench/bench_json.h"

#include "authoring/author.h"
#include "bench/bench_util.h"
#include "common/fault.h"
#include "common/retry.h"
#include "disc/local_storage.h"
#include "player/engine.h"
#include "xkms/retrying_transport.h"

namespace discsec {
namespace player {
namespace {

using bench::SharedWorld;

const disc::DiscImage& SignedImage() {
  static const disc::DiscImage* image = [] {
    auto& world = SharedWorld();
    authoring::Author author = world.MakeAuthor();
    authoring::Author::ProtectOptions options;
    options.sign = true;
    Rng rng(1);
    return new disc::DiscImage(
        author.MasterProtected(world.DemoCluster(), options, &rng).value());
  }();
  return *image;
}

/// End-to-end disc launch with every fault point on the path consulted but
/// disarmed — the production configuration.
void BM_DiscLaunch_InjectorDisarmed(benchmark::State& state) {
  auto& world = SharedWorld();
  disc::DiscImage image = SignedImage();
  fault::FaultInjector disarmed;
  image.set_fault_injector(&disarmed);
  for (auto _ : state) {
    PlayerConfig config = world.MakePlayerConfig();
    config.trust_disc_content = false;
    config.fault = &disarmed;
    InteractiveApplicationEngine engine(std::move(config));
    auto report = engine.LaunchFromDisc(image);
    if (!report.ok()) state.SkipWithError("launch failed");
    benchmark::DoNotOptimize(report.value().signature_verified);
  }
}
BENCHMARK(BM_DiscLaunch_InjectorDisarmed)->Unit(benchmark::kMicrosecond);

/// The same launch with the instrumentation bypassed entirely (no injector
/// attached anywhere would still consult the global one, so this is the
/// honest baseline: a disarmed *global* injector, which is the cheapest
/// state the code can be in).
void BM_DiscLaunch_GlobalFallback(benchmark::State& state) {
  auto& world = SharedWorld();
  const disc::DiscImage& image = SignedImage();
  for (auto _ : state) {
    PlayerConfig config = world.MakePlayerConfig();
    config.trust_disc_content = false;
    InteractiveApplicationEngine engine(std::move(config));
    auto report = engine.LaunchFromDisc(image);
    if (!report.ok()) state.SkipWithError("launch failed");
    benchmark::DoNotOptimize(report.value().signature_verified);
  }
}
BENCHMARK(BM_DiscLaunch_GlobalFallback)->Unit(benchmark::kMicrosecond);

/// Raw cost of one disarmed fault-point consultation (the map-emptiness
/// fast path) — nanoseconds, the unit everything above amortizes.
void BM_FaultPoint_DisarmedHit(benchmark::State& state) {
  fault::FaultInjector injector;
  Bytes payload(4096, 0x5A);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        injector.HitData(fault::kDiscRead, &payload, "BDMV/cluster.xml"));
  }
}
BENCHMARK(BM_FaultPoint_DisarmedHit);

/// An armed-but-not-firing point (probability 0): the full trigger
/// evaluation without any mangling.
void BM_FaultPoint_ArmedNotFiring(benchmark::State& state) {
  fault::FaultInjector injector;
  fault::FaultSpec spec;
  spec.point = std::string(fault::kDiscRead);
  spec.probability = 0.0;
  injector.Arm(spec);
  Bytes payload(4096, 0x5A);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        injector.HitData(fault::kDiscRead, &payload, "BDMV/cluster.xml"));
  }
}
BENCHMARK(BM_FaultPoint_ArmedNotFiring);

/// Local-storage round-trip with per-entry checksums (write + verified
/// read), the integrity tax added for torn-write detection.
void BM_StorageChecksummedRoundTrip(benchmark::State& state) {
  disc::LocalStorage storage;
  fault::FaultInjector disarmed;
  storage.set_fault_injector(&disarmed);
  Bytes value(static_cast<size_t>(state.range(0)), 0x3C);
  for (auto _ : state) {
    if (!storage.Write("scores/p", value).ok()) {
      state.SkipWithError("write failed");
    }
    auto read = storage.Read("scores/p");
    if (!read.ok()) state.SkipWithError("read failed");
    benchmark::DoNotOptimize(read.value().size());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0) * 2);
}
BENCHMARK(BM_StorageChecksummedRoundTrip)
    ->Arg(64)
    ->Arg(4096)
    ->Unit(benchmark::kMicrosecond);

/// XKMS Locate through the retrying wrapper on the all-success path: the
/// breaker bookkeeping and closure hop it adds over the direct transport.
void BM_XkmsLocate_Direct(benchmark::State& state) {
  auto& world = SharedWorld();
  xkms::XkmsService service;
  (void)service.Register({"k", world.studio_key.public_key, {"Signature"},
                          xkms::KeyStatus::kValid});
  xkms::XkmsClient client = xkms::XkmsClient::Direct(&service);
  for (auto _ : state) {
    auto binding = client.Locate("k");
    if (!binding.ok()) state.SkipWithError("locate failed");
    benchmark::DoNotOptimize(binding.value().name);
  }
}
BENCHMARK(BM_XkmsLocate_Direct)->Unit(benchmark::kMicrosecond);

void BM_XkmsLocate_Retrying(benchmark::State& state) {
  auto& world = SharedWorld();
  xkms::XkmsService service;
  (void)service.Register({"k", world.studio_key.public_key, {"Signature"},
                          xkms::KeyStatus::kValid});
  xkms::XkmsClient client(xkms::MakeRetryingTransport(
      xkms::XkmsClient::DirectTransport(&service), {}));
  for (auto _ : state) {
    auto binding = client.Locate("k");
    if (!binding.ok()) state.SkipWithError("locate failed");
    benchmark::DoNotOptimize(binding.value().name);
  }
}
BENCHMARK(BM_XkmsLocate_Retrying)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace player
}  // namespace discsec

DISCSEC_BENCH_MAIN("resilience");
