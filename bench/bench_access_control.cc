// E8 — §3.1/§4 access control: permission-request evaluation and XACML-lite
// PDP decision throughput versus policy-set size.

#include <benchmark/benchmark.h>

#include "bench/bench_json.h"

#include "access/pep.h"
#include "access/permission_request.h"
#include "access/policy.h"

namespace discsec {
namespace access {
namespace {

Policy MakePolicy(int index) {
  Policy policy;
  policy.id = "policy-" + std::to_string(index);
  policy.target.subjects = {"CN=Org" + std::to_string(index) + "*"};
  Rule permit;
  permit.id = "permit";
  permit.effect = Decision::kPermit;
  permit.target.resources = {"localstorage"};
  permit.conditions.push_back(
      {"path", Condition::Op::kPrefix, "app" + std::to_string(index) + "/"});
  Rule deny;
  deny.id = "deny-system";
  deny.effect = Decision::kDeny;
  deny.conditions.push_back({"path", Condition::Op::kPrefix, "system/"});
  policy.rules = {permit, deny};
  return policy;
}

void BM_PdpEvaluate(benchmark::State& state) {
  PolicyDecisionPoint pdp;
  int n = static_cast<int>(state.range(0));
  for (int i = 0; i < n; ++i) pdp.AddPolicy(MakePolicy(i));
  RequestContext request;
  request.subject = "CN=Org" + std::to_string(n / 2) + " Signing";
  request.resource = "localstorage";
  request.action = "write";
  request.attributes = {{"path", "app" + std::to_string(n / 2) + "/x"}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(pdp.Evaluate(request));
  }
  state.counters["policies"] = n;
}
BENCHMARK(BM_PdpEvaluate)->Arg(1)->Arg(10)->Arg(100)->Arg(1000);

void BM_PolicySetParse(benchmark::State& state) {
  PolicyDecisionPoint source;
  int n = static_cast<int>(state.range(0));
  for (int i = 0; i < n; ++i) source.AddPolicy(MakePolicy(i));
  std::string xml_text = source.ToXmlString();
  for (auto _ : state) {
    PolicyDecisionPoint pdp;
    if (!pdp.LoadPolicySet(xml_text).ok()) {
      state.SkipWithError("parse failed");
    }
    benchmark::DoNotOptimize(pdp.PolicyCount());
  }
  state.counters["xml_bytes"] = static_cast<double>(xml_text.size());
}
BENCHMARK(BM_PolicySetParse)->Arg(10)->Arg(100)->Unit(benchmark::kMicrosecond);

void BM_PermissionRequestParse(benchmark::State& state) {
  PermissionRequest request;
  request.app_id = "0x4501";
  request.org_id = "acme.example";
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    Permission p;
    p.resource = "localstorage";
    p.attributes = {{"path", "dir" + std::to_string(i) + "/"},
                    {"access", "readwrite"}};
    request.permissions.push_back(p);
  }
  std::string xml_text = request.ToXmlString();
  for (auto _ : state) {
    auto parsed = PermissionRequest::FromXmlString(xml_text);
    if (!parsed.ok()) state.SkipWithError("parse failed");
    benchmark::DoNotOptimize(parsed.value().permissions.size());
  }
}
BENCHMARK(BM_PermissionRequestParse)->Arg(2)->Arg(16)->Arg(64);

void BM_PepLaunchGrantTable(benchmark::State& state) {
  // The launch-time EvaluateAll the engine performs.
  PolicyDecisionPoint pdp;
  for (int i = 0; i < 20; ++i) pdp.AddPolicy(MakePolicy(i));
  PermissionRequest request;
  request.app_id = "1";
  request.org_id = "org5";
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    Permission p;
    p.resource = "localstorage";
    p.attributes = {{"path", "app5/f" + std::to_string(i)},
                    {"access", "readwrite"}};
    request.permissions.push_back(p);
  }
  PolicyEnforcementPoint pep(&pdp, request, "CN=Org5 Signing");
  for (auto _ : state) {
    benchmark::DoNotOptimize(pep.EvaluateAll());
  }
}
BENCHMARK(BM_PepLaunchGrantTable)->Arg(2)->Arg(8)->Arg(32);

}  // namespace
}  // namespace access
}  // namespace discsec

DISCSEC_BENCH_MAIN("access_control");
