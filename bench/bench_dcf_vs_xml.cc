// E2 — §4 / ref.[37]: "performance wise the text based XML takes a back
// seat when compared to binary-based OMA DCF".
//
// Measures protect (author side) and unprotect+verify (player side)
// throughput for the XML pipeline (XML-DSig + XML-Enc over the cluster
// markup) against the binary DCF pipeline (AES-CBC + HMAC container) for
// the same payload. Expected shape: DCF wins at every size; the gap is
// largest for small payloads where XML parse + C14N dominate.

#include <benchmark/benchmark.h>

#include <chrono>
#include <functional>

#include "bench/alloc_tracker.h"
#include "bench/bench_json.h"
#include "bench/bench_util.h"
#include "xml/stream_verify.h"
#include "dcf/dcf.h"
#include "xmldsig/verifier.h"
#include "xmlenc/decryptor.h"

namespace discsec {
namespace {

using bench::SharedWorld;

void BM_XmlProtect(benchmark::State& state) {
  auto& world = SharedWorld();
  disc::InteractiveCluster cluster =
      bench::ClusterWithPayload(static_cast<size_t>(state.range(0)));
  authoring::Author author = world.MakeAuthor();
  authoring::Author::ProtectOptions options;
  options.sign = true;
  options.encrypt_ids = {"quiz"};
  options.encryption = world.MakeEncryptionSpec();
  size_t produced = 0;
  for (auto _ : state) {
    auto doc = author.BuildProtected(cluster, options, &world.rng);
    produced = xml::Serialize(doc.value()).size();
    benchmark::DoNotOptimize(produced);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(state.range(0)));
  state.counters["container_bytes"] = static_cast<double>(produced);
}
BENCHMARK(BM_XmlProtect)->Arg(1 << 10)->Arg(16 << 10)->Arg(256 << 10);

void BM_DcfProtect(benchmark::State& state) {
  auto& world = SharedWorld();
  std::string raw =
      bench::ClusterWithPayload(static_cast<size_t>(state.range(0)))
          .ToXmlString();
  Bytes payload = ToBytes(raw);
  size_t produced = 0;
  for (auto _ : state) {
    auto container =
        dcf::DcfProtect(payload, "application/xml", "disc-content-key",
                        world.disc_content_key, world.disc_content_key,
                        &world.rng);
    produced = container.value().size();
    benchmark::DoNotOptimize(produced);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(state.range(0)));
  state.counters["container_bytes"] = static_cast<double>(produced);
}
BENCHMARK(BM_DcfProtect)->Arg(1 << 10)->Arg(16 << 10)->Arg(256 << 10);

void BM_XmlUnprotect(benchmark::State& state) {
  // Player side: parse + signature verify (incl. Decryption Transform) +
  // decrypt.
  auto& world = SharedWorld();
  authoring::Author author = world.MakeAuthor();
  authoring::Author::ProtectOptions options;
  options.sign = true;
  options.encrypt_ids = {"quiz"};
  options.encryption = world.MakeEncryptionSpec();
  auto doc = author.BuildProtected(
      bench::ClusterWithPayload(static_cast<size_t>(state.range(0))), options,
      &world.rng);
  std::string wire = xml::Serialize(doc.value());

  pki::CertStore store;
  (void)store.AddTrustedRoot(world.root_cert);
  xmlenc::KeyRing ring;
  ring.AddKey("disc-content-key", world.disc_content_key);
  xmlenc::Decryptor decryptor(std::move(ring));

  for (auto _ : state) {
    auto parsed = xml::Parse(wire).value();
    xmldsig::VerifyOptions verify;
    verify.cert_store = &store;
    verify.now = testing_world::kNow;
    verify.decrypt_hook = decryptor.MakeHook();
    auto result = xmldsig::Verifier::VerifyFirstSignature(parsed, verify);
    if (!result.ok()) state.SkipWithError("verify failed");
    auto status = decryptor.DecryptAll(&parsed, nullptr, {});
    if (!status.ok()) state.SkipWithError("decrypt failed");
    benchmark::DoNotOptimize(parsed.root());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(state.range(0)));
}
BENCHMARK(BM_XmlUnprotect)->Arg(1 << 10)->Arg(16 << 10)->Arg(256 << 10);

void BM_DcfUnprotect(benchmark::State& state) {
  auto& world = SharedWorld();
  std::string raw =
      bench::ClusterWithPayload(static_cast<size_t>(state.range(0)))
          .ToXmlString();
  Bytes container =
      dcf::DcfProtect(ToBytes(raw), "application/xml", "disc-content-key",
                      world.disc_content_key, world.disc_content_key,
                      &world.rng)
          .value();
  for (auto _ : state) {
    auto plain = dcf::DcfUnprotect(container, world.disc_content_key,
                                   world.disc_content_key);
    if (!plain.ok()) state.SkipWithError("unprotect failed");
    benchmark::DoNotOptimize(plain.value().size());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(state.range(0)));
}
BENCHMARK(BM_DcfUnprotect)->Arg(1 << 10)->Arg(16 << 10)->Arg(256 << 10);

// The headline first-class metric of this experiment: player-side XML
// unprotect (parse + signature verify + decrypt) over binary DCF unprotect
// for the same payload, as one number per payload size. The paper's
// position ("XML takes a back seat" vs OMA DCF) maps to a 2.5x-5.1x
// slowdown band in this codebase's reproduction; the band rides along as
// counters so regression tooling can flag when the ratio drifts out of it.
// Both sides are probed back-to-back with identical cache warmth; the
// timed loop runs the XML side so the benchmark's own timing stays
// meaningful.
void BM_XmlVsDcfRatio(benchmark::State& state) {
  auto& world = SharedWorld();
  authoring::Author author = world.MakeAuthor();
  authoring::Author::ProtectOptions options;
  options.sign = true;
  options.encrypt_ids = {"quiz"};
  options.encryption = world.MakeEncryptionSpec();
  auto doc = author.BuildProtected(
      bench::ClusterWithPayload(static_cast<size_t>(state.range(0))), options,
      &world.rng);
  std::string wire = xml::Serialize(doc.value());
  std::string raw =
      bench::ClusterWithPayload(static_cast<size_t>(state.range(0)))
          .ToXmlString();
  Bytes container =
      dcf::DcfProtect(ToBytes(raw), "application/xml", "disc-content-key",
                      world.disc_content_key, world.disc_content_key,
                      &world.rng)
          .value();

  pki::CertStore store;
  (void)store.AddTrustedRoot(world.root_cert);
  xmlenc::KeyRing ring;
  ring.AddKey("disc-content-key", world.disc_content_key);
  xmlenc::Decryptor decryptor(std::move(ring));

  auto xml_unprotect = [&]() {
    auto parsed = xml::Parse(wire).value();
    xmldsig::VerifyOptions verify;
    verify.cert_store = &store;
    verify.now = testing_world::kNow;
    verify.decrypt_hook = decryptor.MakeHook();
    auto result = xmldsig::Verifier::VerifyFirstSignature(parsed, verify);
    if (!result.ok()) state.SkipWithError("verify failed");
    auto status = decryptor.DecryptAll(&parsed, nullptr, {});
    if (!status.ok()) state.SkipWithError("decrypt failed");
    benchmark::DoNotOptimize(parsed.root());
  };
  auto dcf_unprotect = [&]() {
    auto plain = dcf::DcfUnprotect(container, world.disc_content_key,
                                   world.disc_content_key);
    if (!plain.ok()) state.SkipWithError("unprotect failed");
    benchmark::DoNotOptimize(plain.value().size());
  };
  auto probe_us = [](const std::function<void()>& op) {
    // Minimum of a fixed probe count: robust to scheduler noise without
    // needing long runs.
    constexpr int kProbes = 8;
    double best = 0.0;
    for (int i = 0; i < kProbes; ++i) {
      auto start = std::chrono::steady_clock::now();
      op();
      double us = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count() /
                  1e3;
      if (i == 0 || us < best) best = us;
    }
    return best;
  };
  const double xml_us = probe_us(xml_unprotect);
  const double dcf_us = probe_us(dcf_unprotect);

  for (auto _ : state) {
    xml_unprotect();
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(state.range(0)));
  state.counters["xml_unprotect_us"] = xml_us;
  state.counters["dcf_unprotect_us"] = dcf_us;
  state.counters["xml_over_dcf"] = dcf_us > 0.0 ? xml_us / dcf_us : 0.0;
  state.counters["paper_band_lo"] = 2.5;
  state.counters["paper_band_hi"] = 5.1;
}
BENCHMARK(BM_XmlVsDcfRatio)->Arg(1 << 10)->Arg(16 << 10)->Arg(256 << 10);

// The fast-path headline (DESIGN.md §14): player-side signature
// verification straight off the wire bytes, DOM pipeline vs the
// single-pass streaming pipeline vs DCF, on an HMAC-signed element-dense
// cluster (Arg = script count) so the XML and DCF sides check the same
// primitive (HMAC-SHA1 + SHA digesting) and the measured gap is pure XML
// machinery — parse, clone, canonicalize — not asymmetric crypto. Rows:
//
//   dom_verify_us        wire -> verdict through the DOM pipeline:
//                        xml::Parse + VerifyFirstSignature (clone +
//                        enveloped removal + C14N tree walk)
//   streaming_verify_us  wire -> verdict through Verifier::VerifyStream:
//                        one fused scan+canonicalize pass, no DOM
//   dcf_unprotect_us     binary container baseline (AES + HMAC)
//   streaming_speedup    dom_verify_us / streaming_verify_us
//   *_over_dcf           each XML verify over the DCF baseline
//   *_allocs             heap allocations per wire->verdict on each path
//   alloc_reduction      dom_verify_allocs / streaming_verify_allocs
//   serialize_allocs     allocations for one xml::Serialize of the signed
//                        document (pins the serializer reserve() path)
void BM_VerifyRatio(benchmark::State& state) {
  auto& world = SharedWorld();
  xmldsig::KeyInfoSpec key_info;
  key_info.key_name = "disc-content-key";
  authoring::Author author(
      xmldsig::SigningKey::HmacSecret(world.disc_content_key), key_info);
  auto doc = author.BuildSigned(
      bench::ElementDenseCluster(static_cast<size_t>(state.range(0))),
      authoring::SignLevel::kCluster);
  if (!doc.ok()) {
    state.SkipWithError("sign failed");
    return;
  }
  std::string wire = xml::Serialize(doc.value());
  std::string raw =
      bench::ElementDenseCluster(static_cast<size_t>(state.range(0)))
          .ToXmlString();
  Bytes container =
      dcf::DcfProtect(ToBytes(raw), "application/xml", "disc-content-key",
                      world.disc_content_key, world.disc_content_key,
                      &world.rng)
          .value();

  auto make_options = [&]() {
    xmldsig::VerifyOptions verify;
    verify.hmac_secret = world.disc_content_key;
    return verify;
  };
  auto dom_verify = [&]() {
    auto parsed = xml::Parse(wire);
    if (!parsed.ok()) {
      state.SkipWithError("parse failed");
      return;
    }
    auto result =
        xmldsig::Verifier::VerifyFirstSignature(parsed.value(), make_options());
    if (!result.ok()) state.SkipWithError("dom verify failed");
    benchmark::DoNotOptimize(result.ok());
  };
  auto streaming_verify = [&]() {
    auto result = xmldsig::Verifier::VerifyStream(wire, make_options());
    if (!result.ok()) state.SkipWithError("streaming verify failed");
    benchmark::DoNotOptimize(result.ok());
  };
  auto dcf_unprotect = [&]() {
    auto plain = dcf::DcfUnprotect(container, world.disc_content_key,
                                   world.disc_content_key);
    if (!plain.ok()) state.SkipWithError("unprotect failed");
    benchmark::DoNotOptimize(plain.value().size());
  };
  auto probe_us = [](const std::function<void()>& op) {
    constexpr int kProbes = 8;
    double best = 0.0;
    for (int i = 0; i < kProbes; ++i) {
      auto start = std::chrono::steady_clock::now();
      op();
      double us = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count() /
                  1e3;
      if (i == 0 || us < best) best = us;
    }
    return best;
  };
  auto probe_allocs = [](const std::function<void()>& op) {
    op();  // warm up so lazy one-time allocations don't count
    bench::ResetAllocStats();
    op();
    return static_cast<double>(bench::AllocCount());
  };

  const size_t streamed_before = xml::StreamedCanonicalizationCount();
  const double dom_us = probe_us(dom_verify);
  const double stream_us = probe_us(streaming_verify);
  const double dcf_us = probe_us(dcf_unprotect);
  if (xml::StreamedCanonicalizationCount() == streamed_before) {
    state.SkipWithError("streaming fast path never engaged");
    return;
  }
  const double dom_allocs = probe_allocs(dom_verify);
  const double stream_allocs = probe_allocs(streaming_verify);
  xml::Document parsed_once = xml::Parse(wire).value();
  const double serialize_allocs = probe_allocs(
      [&]() { benchmark::DoNotOptimize(xml::Serialize(parsed_once).size()); });

  for (auto _ : state) {
    streaming_verify();
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(wire.size()));
  state.counters["dom_verify_us"] = dom_us;
  state.counters["streaming_verify_us"] = stream_us;
  state.counters["dcf_unprotect_us"] = dcf_us;
  state.counters["streaming_speedup"] =
      stream_us > 0.0 ? dom_us / stream_us : 0.0;
  state.counters["dom_over_dcf"] = dcf_us > 0.0 ? dom_us / dcf_us : 0.0;
  state.counters["streaming_over_dcf"] =
      dcf_us > 0.0 ? stream_us / dcf_us : 0.0;
  state.counters["dom_verify_allocs"] = dom_allocs;
  state.counters["streaming_verify_allocs"] = stream_allocs;
  state.counters["alloc_reduction"] =
      stream_allocs > 0.0 ? dom_allocs / stream_allocs : 0.0;
  state.counters["serialize_allocs"] = serialize_allocs;
}
BENCHMARK(BM_VerifyRatio)->Arg(200)->Arg(1000)->Arg(4000);

}  // namespace
}  // namespace discsec

DISCSEC_BENCH_MAIN("ratio");
