#include "bench/bench_json.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <vector>

namespace discsec {
namespace bench {

namespace {

/// Collects per-repetition runs while still printing the familiar console
/// table (the JSON artifact is additive, not a replacement).
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  bool ReportContext(const Context& context) override {
    return benchmark::ConsoleReporter::ReportContext(context);
  }
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) runs_.push_back(run);
    benchmark::ConsoleReporter::ReportRuns(reports);
  }
  const std::vector<Run>& runs() const { return runs_; }

 private:
  std::vector<Run> runs_;
};

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendJsonNumber(std::string* out, double value) {
  if (!std::isfinite(value)) {
    *out += "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  *out += buf;
}

/// Nearest-rank percentile over an ascending sample vector.
double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  if (rank == 0) rank = 1;
  if (rank > sorted.size()) rank = sorted.size();
  return sorted[rank - 1];
}

struct ResultRow {
  std::string name;
  std::string params;
  int64_t iterations = 0;
  std::vector<double> samples_us;  ///< mean iteration time per repetition
  std::map<std::string, double> counters;
};

}  // namespace

int RunAndExport(const std::string& bench_name) {
  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);

  // Group per-repetition iteration runs by full benchmark name; aggregate
  // rows (mean/median/stddev) would double-count, so they are skipped.
  std::vector<ResultRow> rows;
  std::map<std::string, size_t> row_index;
  for (const auto& run : reporter.runs()) {
    if (run.run_type != benchmark::BenchmarkReporter::Run::RT_Iteration) {
      continue;
    }
    if (run.error_occurred) continue;
    const std::string full = run.benchmark_name();
    auto [it, inserted] = row_index.emplace(full, rows.size());
    if (inserted) {
      ResultRow row;
      size_t slash = full.find('/');
      row.name = full.substr(0, slash);
      row.params = slash == std::string::npos ? "" : full.substr(slash + 1);
      rows.push_back(std::move(row));
    }
    ResultRow& row = rows[it->second];
    row.iterations += run.iterations;
    if (run.iterations > 0) {
      row.samples_us.push_back(run.real_accumulated_time /
                               static_cast<double>(run.iterations) * 1e6);
    }
    for (const auto& [key, counter] : run.counters) {
      row.counters[key] = counter.value;
    }
  }

  std::string out;
  out += "{\n  \"schema\": \"discsec-bench-v1\",\n  \"bench\": ";
  AppendJsonString(&out, bench_name);
  out += ",\n  \"results\": [";
  bool first = true;
  for (ResultRow& row : rows) {
    std::sort(row.samples_us.begin(), row.samples_us.end());
    double mean = 0.0;
    for (double s : row.samples_us) mean += s;
    if (!row.samples_us.empty()) {
      mean /= static_cast<double>(row.samples_us.size());
    }
    if (!first) out += ",";
    first = false;
    out += "\n    {\"name\": ";
    AppendJsonString(&out, row.name);
    out += ", \"params\": ";
    AppendJsonString(&out, row.params);
    out += ", \"iterations\": ";
    AppendJsonNumber(&out, static_cast<double>(row.iterations));
    out += ", \"samples\": ";
    AppendJsonNumber(&out, static_cast<double>(row.samples_us.size()));
    out += ", \"real_us\": {\"p50\": ";
    AppendJsonNumber(&out, Percentile(row.samples_us, 0.50));
    out += ", \"p99\": ";
    AppendJsonNumber(&out, Percentile(row.samples_us, 0.99));
    out += ", \"mean\": ";
    AppendJsonNumber(&out, mean);
    out += "}";
    auto allocs = row.counters.find("allocs_per_iter");
    if (allocs != row.counters.end()) {
      out += ", \"allocs\": ";
      AppendJsonNumber(&out, allocs->second);
    }
    out += ", \"counters\": {";
    bool first_counter = true;
    for (const auto& [key, value] : row.counters) {
      if (!first_counter) out += ", ";
      first_counter = false;
      AppendJsonString(&out, key);
      out += ": ";
      AppendJsonNumber(&out, value);
    }
    out += "}}";
  }
  out += "\n  ]\n}\n";

  const std::string path = "BENCH_" + bench_name + ".json";
  std::ofstream file(path, std::ios::trunc);
  if (!file) {
    std::fprintf(stderr, "bench_json: cannot write %s\n", path.c_str());
    return 1;
  }
  file << out;
  std::fprintf(stderr, "bench_json: wrote %s (%zu result rows)\n",
               path.c_str(), rows.size());
  return 0;
}

}  // namespace bench
}  // namespace discsec
