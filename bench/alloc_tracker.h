#ifndef DISCSEC_BENCH_ALLOC_TRACKER_H_
#define DISCSEC_BENCH_ALLOC_TRACKER_H_

#include <cstddef>

namespace discsec {
namespace bench {

// Heap instrumentation for the streaming-vs-buffered comparisons: linking
// alloc_tracker.cc into a bench binary replaces global operator new/delete
// with counting versions. Used to report peak live heap and allocation
// counts per benchmark (the BENCH_streaming.json metrics).

/// Zeroes the counters (peak is reset to the currently live bytes).
void ResetAllocStats();

/// High-water mark of live heap bytes since the last reset.
size_t AllocPeakBytes();

/// Number of allocations since the last reset.
size_t AllocCount();

}  // namespace bench
}  // namespace discsec

#endif  // DISCSEC_BENCH_ALLOC_TRACKER_H_
