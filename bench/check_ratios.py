#!/usr/bin/env python3
"""Perf-smoke gate for the streaming verify fast path (DESIGN.md §14).

Compares the ratio counters of a fresh BENCH_ratio.json run against the
checked-in baseline (bench/baselines/BENCH_ratio.baseline.json) and fails
on a >10% regression. Only RATIOS are compared — streaming_speedup,
alloc_reduction, dom_over_dcf, streaming_over_dcf — never absolute times:
both sides of each ratio run back-to-back in the same process on the same
machine, so the quotient is comparable across runners while raw
microseconds are not.

On top of the relative gate, the machine-independent acceptance floors
from the introducing PR are enforced absolutely:

    streaming_speedup >= 2.0   (streaming verify at least 2x the DOM path)
    alloc_reduction   >= 5.0   (heap allocations per verify down at least 5x)
    dom_over_dcf      <  2.5   (XML verify within the paper's DCF band)

Usage: check_ratios.py BENCH_ratio.json [--baseline FILE] [--slack 0.10]
"""

import argparse
import json
import sys

# counter -> which direction is better. A "higher" ratio regresses when the
# fresh value drops below baseline * (1 - slack); a "lower" ratio regresses
# when it climbs above baseline * (1 + slack).
RATIO_DIRECTIONS = {
    "streaming_speedup": "higher",
    "alloc_reduction": "higher",
    "dom_over_dcf": "lower",
    "streaming_over_dcf": "lower",
}

# counter -> (op, bound): absolute acceptance gates, applied to every fresh
# row that carries the counter regardless of what the baseline recorded.
# serialize_allocs pins the serializer's reserve()-once hot path (measured
# 1 alloc per Serialize; the bound leaves room for allocator jitter only).
ABSOLUTE_GATES = {
    "streaming_speedup": (">=", 2.0),
    "alloc_reduction": (">=", 5.0),
    "dom_over_dcf": ("<", 2.5),
    "serialize_allocs": ("<=", 4.0),
}


def load_rows(path):
    """Returns {(name, params): counters} for every result row."""
    with open(path) as f:
        data = json.load(f)
    rows = {}
    for row in data.get("results", []):
        rows[(row["name"], row.get("params", ""))] = row.get("counters", {})
    return rows


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh", help="BENCH_ratio.json from this run")
    parser.add_argument(
        "--baseline",
        default="bench/baselines/BENCH_ratio.baseline.json",
        help="checked-in baseline (default: %(default)s)",
    )
    parser.add_argument(
        "--slack",
        type=float,
        default=0.10,
        help="allowed relative regression (default: %(default)s)",
    )
    args = parser.parse_args()

    fresh = load_rows(args.fresh)
    baseline = load_rows(args.baseline)

    failures = []
    checked = 0
    for key, counters in sorted(fresh.items()):
        label = "{}/{}".format(*key)
        for counter, (op, bound) in sorted(ABSOLUTE_GATES.items()):
            if counter not in counters:
                continue
            value = counters[counter]
            if op == ">=":
                ok = value >= bound
            elif op == "<=":
                ok = value <= bound
            else:
                ok = value < bound
            checked += 1
            if not ok:
                failures.append(
                    f"{label}: {counter}={value:.3f} violates absolute gate "
                    f"{op} {bound}"
                )
        base_counters = baseline.get(key)
        if base_counters is None:
            continue
        for counter, direction in sorted(RATIO_DIRECTIONS.items()):
            if counter not in counters or counter not in base_counters:
                continue
            value = counters[counter]
            base = base_counters[counter]
            checked += 1
            if direction == "higher":
                limit = base * (1.0 - args.slack)
                if value < limit:
                    failures.append(
                        f"{label}: {counter} regressed {base:.3f} -> "
                        f"{value:.3f} (floor {limit:.3f})"
                    )
            else:
                limit = base * (1.0 + args.slack)
                if value > limit:
                    failures.append(
                        f"{label}: {counter} regressed {base:.3f} -> "
                        f"{value:.3f} (ceiling {limit:.3f})"
                    )

    if checked == 0:
        print("check_ratios: no ratio counters found — wrong input file?")
        return 1
    for failure in failures:
        print(f"check_ratios: FAIL {failure}")
    if failures:
        return 1
    print(f"check_ratios: OK ({checked} gates over {len(fresh)} rows)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
