// E13 — observability overhead (BENCH_obs.json): the tracing/metrics layer
// must be near-free when disabled. The end-to-end sweep runs the same
// security pipeline (parse -> verify -> decrypt -> policy -> markup ->
// script) with observability off / tracing / metrics / both; the
// microbenches price a single disabled span (which must also make zero heap
// allocations — the alloc tracker is linked into this binary) against an
// enabled one. Acceptance: obs_off within 2% of the pre-instrumentation
// baseline, i.e. the disabled-path work is a handful of null checks.

#include <benchmark/benchmark.h>

#include "bench/bench_json.h"

#include "bench/alloc_tracker.h"
#include "bench/bench_util.h"
#include "obs/bridge.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "player/engine.h"
#include "xml/arena.h"

namespace discsec {
namespace {

using bench::SharedWorld;

enum ObsMode : int {
  kObsOff = 0,
  kObsTrace = 1,
  kObsMetrics = 2,
  kObsBoth = 3,
};

std::string SignedClusterXml() {
  static const std::string* xml = [] {
    auto& world = SharedWorld();
    auto doc = world.MakeAuthor()
                   .BuildSigned(world.DemoCluster(),
                                authoring::SignLevel::kCluster)
                   .value();
    return new std::string(xml::Serialize(doc));
  }();
  return *xml;
}

void BM_LaunchCluster(benchmark::State& state) {
  auto& world = SharedWorld();
  std::string cluster_xml = SignedClusterXml();
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  player::PlayerConfig config = world.MakePlayerConfig();
  int mode = static_cast<int>(state.range(0));
  if (mode & kObsTrace) config.tracer = &tracer;
  if (mode & kObsMetrics) config.metrics = &metrics;
  player::InteractiveApplicationEngine engine(std::move(config));

  bench::ResetAllocStats();
  size_t iterations = 0;
  for (auto _ : state) {
    auto report = engine.LaunchClusterXml(cluster_xml, player::Origin::kDisc);
    if (!report.ok()) state.SkipWithError("launch failed");
    benchmark::DoNotOptimize(report->script_steps);
    // Keep the tracer's buffer from growing without bound (and from
    // turning the enabled run into a memory benchmark).
    tracer.Clear();
    ++iterations;
  }
  if (iterations > 0) {
    state.counters["allocs_per_iter"] = benchmark::Counter(
        static_cast<double>(bench::AllocCount()) /
        static_cast<double>(iterations));
  }
  static const char* kNames[] = {"obs_off", "tracing", "metrics", "both"};
  state.SetLabel(kNames[mode]);
}
BENCHMARK(BM_LaunchCluster)
    ->Arg(kObsOff)
    ->Arg(kObsTrace)
    ->Arg(kObsMetrics)
    ->Arg(kObsBoth)
    ->Unit(benchmark::kMicrosecond);

// ------------------------------------------------- arena observability

void BM_ParseAllocs(benchmark::State& state) {
  // The before/after face of the DOM arena (DESIGN.md §14): the same parse
  // with node storage on the general heap (Arg 0) and on the bump arena
  // (Arg 1). allocs_per_iter is the heap-allocation count the alloc
  // tracker sees per parse — the arena run collapses the per-node mallocs
  // into one 64 KiB block reservation per ~thousand nodes. The arena's own
  // counters flow through obs::AbsorbArenaStats into the same metrics
  // registry the player engine feeds, and ride along as counters here so
  // BENCH_obs.json records both sides of the bridge.
  std::string cluster_xml = SignedClusterXml();
  const bool use_arena = state.range(0) != 0;
  obs::MetricsRegistry metrics;
  bench::ResetAllocStats();
  size_t iterations = 0;
  for (auto _ : state) {
    xml::ParseOptions options;
    if (use_arena) options.arena = std::make_shared<xml::Arena>();
    auto doc = xml::Parse(cluster_xml, options);
    if (!doc.ok()) state.SkipWithError("parse failed");
    benchmark::DoNotOptimize(doc.value().root());
    ++iterations;
  }
  if (iterations > 0) {
    state.counters["allocs_per_iter"] = benchmark::Counter(
        static_cast<double>(bench::AllocCount()) /
        static_cast<double>(iterations));
  }
  obs::AbsorbArenaStats(xml::GlobalArenaStats(), &metrics);
  state.counters["arena_allocations"] = static_cast<double>(
      metrics.GetCounter("xml_arena.allocations")->value());
  state.counters["arena_bytes_reserved"] = static_cast<double>(
      metrics.GetCounter("xml_arena.bytes_reserved")->value());
  state.SetLabel(use_arena ? "arena" : "heap");
}
BENCHMARK(BM_ParseAllocs)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

// ------------------------------------------------------------ span cost

void BM_SpanDisabled(benchmark::State& state) {
  // The instrumented hot path with no tracer configured: a null check per
  // span and per attribute, no clock reads, no heap. allocs_per_iter must
  // be exactly zero.
  bench::ResetAllocStats();
  size_t iterations = 0;
  for (auto _ : state) {
    obs::ScopedSpan span(static_cast<obs::Tracer*>(nullptr),
                         "xmldsig.reference");
    span.SetAttr("uri", "#track-app");
    span.SetAttr("bytes", uint64_t{4096});
    benchmark::DoNotOptimize(span.enabled());
    ++iterations;
  }
  state.counters["allocs_per_iter"] = benchmark::Counter(
      iterations == 0 ? 0.0
                      : static_cast<double>(bench::AllocCount()) /
                            static_cast<double>(iterations));
}
BENCHMARK(BM_SpanDisabled);

void BM_SpanEnabled(benchmark::State& state) {
  obs::Tracer tracer;
  bench::ResetAllocStats();
  size_t iterations = 0;
  for (auto _ : state) {
    {
      obs::ScopedSpan span(&tracer, "xmldsig.reference");
      span.SetAttr("uri", "#track-app");
      span.SetAttr("bytes", uint64_t{4096});
    }
    if (tracer.size() >= 4096) tracer.Clear();
    ++iterations;
  }
  state.counters["allocs_per_iter"] = benchmark::Counter(
      iterations == 0 ? 0.0
                      : static_cast<double>(bench::AllocCount()) /
                            static_cast<double>(iterations));
}
BENCHMARK(BM_SpanEnabled);

void BM_ScopedLatencyDisabled(benchmark::State& state) {
  for (auto _ : state) {
    obs::ScopedLatency latency(nullptr);
    benchmark::DoNotOptimize(&latency);
  }
}
BENCHMARK(BM_ScopedLatencyDisabled);

void BM_CounterAdd(benchmark::State& state) {
  obs::MetricsRegistry metrics;
  obs::Counter* counter = metrics.GetCounter("bench.counter");
  for (auto _ : state) {
    counter->Add();
  }
  benchmark::DoNotOptimize(counter->value());
}
BENCHMARK(BM_CounterAdd);

void BM_HistogramObserve(benchmark::State& state) {
  obs::MetricsRegistry metrics;
  obs::Histogram* histogram = metrics.GetHistogram("bench.latency_us");
  uint64_t value = 1;
  for (auto _ : state) {
    histogram->Observe(value);
    value = (value * 13 + 7) & 0xffff;
  }
  benchmark::DoNotOptimize(histogram->count());
}
BENCHMARK(BM_HistogramObserve);

}  // namespace
}  // namespace discsec

DISCSEC_BENCH_MAIN("obs");
