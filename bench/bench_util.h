#ifndef DISCSEC_BENCH_BENCH_UTIL_H_
#define DISCSEC_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include "tests/test_world.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace discsec {
namespace bench {

/// Shared deterministic world (keys, certs, demo cluster) for benchmarks.
inline testing_world::World& SharedWorld() {
  static testing_world::World world;
  return world;
}

/// A cluster whose application payload (script source) is approximately
/// `payload_bytes` — the size knob for the E1/E2/E6 sweeps.
inline disc::InteractiveCluster ClusterWithPayload(size_t payload_bytes) {
  disc::InteractiveCluster cluster = SharedWorld().DemoCluster();
  std::string filler = "var data = \"";
  filler.reserve(payload_bytes + 64);
  Rng rng(payload_bytes);
  static const char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
  while (filler.size() < payload_bytes + 12) {
    filler.push_back(kAlphabet[rng.NextBelow(sizeof(kAlphabet) - 1)]);
  }
  filler += "\";";
  cluster.tracks[1].manifest.scripts.push_back({"payload", filler});
  return cluster;
}

/// A cluster with `script_count` small scripts — element-dense rather than
/// text-dense, the menu/quiz markup shape from the paper's interactive
/// clusters. This is the workload where DOM construction and tree walks
/// dominate (thousands of nodes, tiny text), i.e. where the streaming
/// verify fast path earns its keep.
inline disc::InteractiveCluster ElementDenseCluster(size_t script_count) {
  disc::InteractiveCluster cluster = SharedWorld().DemoCluster();
  auto& scripts = cluster.tracks[1].manifest.scripts;
  scripts.reserve(scripts.size() + script_count);
  for (size_t i = 0; i < script_count; ++i) {
    scripts.push_back({"s" + std::to_string(i),
                       "var v" + std::to_string(i) + " = on();"});
  }
  return cluster;
}

}  // namespace bench
}  // namespace discsec

#endif  // DISCSEC_BENCH_BENCH_UTIL_H_
