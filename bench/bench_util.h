#ifndef DISCSEC_BENCH_BENCH_UTIL_H_
#define DISCSEC_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include "tests/test_world.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace discsec {
namespace bench {

/// Shared deterministic world (keys, certs, demo cluster) for benchmarks.
inline testing_world::World& SharedWorld() {
  static testing_world::World world;
  return world;
}

/// A cluster whose application payload (script source) is approximately
/// `payload_bytes` — the size knob for the E1/E2/E6 sweeps.
inline disc::InteractiveCluster ClusterWithPayload(size_t payload_bytes) {
  disc::InteractiveCluster cluster = SharedWorld().DemoCluster();
  std::string filler = "var data = \"";
  filler.reserve(payload_bytes + 64);
  Rng rng(payload_bytes);
  static const char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
  while (filler.size() < payload_bytes + 12) {
    filler.push_back(kAlphabet[rng.NextBelow(sizeof(kAlphabet) - 1)]);
  }
  filler += "\";";
  cluster.tracks[1].manifest.scripts.push_back({"payload", filler});
  return cluster;
}

}  // namespace bench
}  // namespace discsec

#endif  // DISCSEC_BENCH_BENCH_UTIL_H_
