// E6 — Fig. 9: the full end-to-end pipeline.
//
// Author side: build cluster -> sign (enveloped, Decryption Transform) ->
// encrypt manifest -> publish. Player side: secure-channel download ->
// verify chain to trusted root -> decrypt -> policy -> markup -> script.
// Reported per stage and for the whole path, sweeping application size.

#include <benchmark/benchmark.h>

#include "bench/bench_json.h"

#include "bench/bench_util.h"

namespace discsec {
namespace {

using bench::SharedWorld;

struct Pipeline {
  net::ContentServer server;
  pki::CertStore trust;
  std::string path = "/apps/bench.xml";

  explicit Pipeline(size_t payload) {
    auto& world = SharedWorld();
    server.SetIdentity({world.server_cert, world.root_cert},
                       world.server_key.private_key);
    (void)trust.AddTrustedRoot(world.root_cert);
    authoring::Author author = world.MakeAuthor();
    authoring::Author::ProtectOptions options;
    options.sign = true;
    options.encrypt_ids = {"quiz"};
    options.encryption = world.MakeEncryptionSpec();
    auto doc = author.BuildProtected(bench::ClusterWithPayload(payload),
                                     options, &world.rng);
    (void)author.Publish(&server, path, doc.value());
  }
};

void BM_AuthorProtectAndPublish(benchmark::State& state) {
  auto& world = SharedWorld();
  disc::InteractiveCluster cluster =
      bench::ClusterWithPayload(static_cast<size_t>(state.range(0)));
  authoring::Author author = world.MakeAuthor();
  authoring::Author::ProtectOptions options;
  options.sign = true;
  options.encrypt_ids = {"quiz"};
  options.encryption = world.MakeEncryptionSpec();
  net::ContentServer server;
  for (auto _ : state) {
    auto doc = author.BuildProtected(cluster, options, &world.rng);
    if (!doc.ok()) state.SkipWithError("protect failed");
    if (!author.Publish(&server, "/apps/bench.xml", doc.value()).ok()) {
      state.SkipWithError("publish failed");
    }
  }
}
BENCHMARK(BM_AuthorProtectAndPublish)
    ->Arg(1 << 10)
    ->Arg(16 << 10)
    ->Arg(128 << 10)
    ->Unit(benchmark::kMillisecond);

void BM_PlayerDownloadVerifyLaunch(benchmark::State& state) {
  auto& world = SharedWorld();
  Pipeline pipeline(static_cast<size_t>(state.range(0)));
  player::PhaseTimings last_timings;
  for (auto _ : state) {
    player::InteractiveApplicationEngine engine(world.MakePlayerConfig());
    net::Downloader::Options download;
    download.use_secure_channel = true;
    download.trust = &pipeline.trust;
    download.now = testing_world::kNow;
    auto report = engine.LaunchFromServer(&pipeline.server, pipeline.path,
                                          download, &world.rng);
    if (!report.ok()) {
      state.SkipWithError(report.status().ToString().c_str());
      break;
    }
    last_timings = report->timings;
  }
  state.counters["fetch_us"] = static_cast<double>(last_timings.fetch_us);
  state.counters["verify_us"] = static_cast<double>(last_timings.verify_us);
  state.counters["decrypt_us"] = static_cast<double>(last_timings.decrypt_us);
  state.counters["policy_us"] = static_cast<double>(last_timings.policy_us);
  state.counters["markup_us"] = static_cast<double>(last_timings.markup_us);
  state.counters["script_us"] = static_cast<double>(last_timings.script_us);
}
BENCHMARK(BM_PlayerDownloadVerifyLaunch)
    ->Arg(1 << 10)
    ->Arg(16 << 10)
    ->Arg(128 << 10)
    ->Unit(benchmark::kMillisecond);

void BM_SecureVsPlainTransport(benchmark::State& state) {
  // Ablation: the secure channel's cost on the download path.
  auto& world = SharedWorld();
  Pipeline pipeline(16 << 10);
  bool secure = state.range(0) == 1;
  for (auto _ : state) {
    net::Downloader::Options download;
    download.use_secure_channel = secure;
    download.trust = &pipeline.trust;
    download.now = testing_world::kNow;
    net::Downloader downloader(&pipeline.server, download, &world.rng);
    auto content = downloader.Fetch(pipeline.path);
    if (!content.ok()) state.SkipWithError("fetch failed");
    benchmark::DoNotOptimize(content.value().size());
  }
  state.SetLabel(secure ? "secure_channel" : "plain");
}
BENCHMARK(BM_SecureVsPlainTransport)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace discsec

DISCSEC_BENCH_MAIN("end_to_end");
