// E9 — §7/§9 key management: XKMS Register/Locate/Validate round-trip
// latency and message sizes over the XML wire codec (the cost of "XML based
// message formats for key management" the paper adopts in place of
// specialized PKI protocols).

#include <benchmark/benchmark.h>

#include "bench/bench_json.h"

#include "bench/bench_util.h"
#include "xkms/client.h"
#include "xkms/service.h"

namespace discsec {
namespace xkms {
namespace {

using bench::SharedWorld;

XkmsService PopulatedService(int bindings) {
  auto& world = SharedWorld();
  XkmsService service;
  for (int i = 0; i < bindings; ++i) {
    KeyBinding binding;
    binding.name = "key-" + std::to_string(i);
    binding.key = world.studio_key.public_key;
    binding.key_usage = {"Signature"};
    (void)service.Register(binding);
  }
  return service;
}

void BM_LocateRoundTrip(benchmark::State& state) {
  XkmsService service = PopulatedService(static_cast<int>(state.range(0)));
  XkmsClient client = XkmsClient::Direct(&service);
  std::string target = "key-" + std::to_string(state.range(0) / 2);
  for (auto _ : state) {
    auto binding = client.Locate(target);
    if (!binding.ok()) state.SkipWithError("locate failed");
    benchmark::DoNotOptimize(binding.value().name);
  }
  state.counters["request_bytes"] =
      static_cast<double>(BuildLocateRequest(target).size());
}
BENCHMARK(BM_LocateRoundTrip)->Arg(10)->Arg(1000)->Unit(benchmark::kMicrosecond);

void BM_ValidateRoundTrip(benchmark::State& state) {
  auto& world = SharedWorld();
  XkmsService service = PopulatedService(100);
  XkmsClient client = XkmsClient::Direct(&service);
  for (auto _ : state) {
    auto status = client.Validate("key-50", world.studio_key.public_key);
    if (!status.ok()) state.SkipWithError("validate failed");
    benchmark::DoNotOptimize(status.value());
  }
  state.counters["request_bytes"] = static_cast<double>(
      BuildValidateRequest("key-50", world.studio_key.public_key).size());
}
BENCHMARK(BM_ValidateRoundTrip)->Unit(benchmark::kMicrosecond);

void BM_RegisterRoundTrip(benchmark::State& state) {
  auto& world = SharedWorld();
  XkmsService service;
  XkmsClient client = XkmsClient::Direct(&service);
  KeyBinding binding;
  binding.name = "studio";
  binding.key = world.studio_key.public_key;
  binding.key_usage = {"Signature"};
  for (auto _ : state) {
    if (!client.Register(binding).ok()) state.SkipWithError("register failed");
  }
  state.counters["request_bytes"] =
      static_cast<double>(BuildRegisterRequest(binding).size());
}
BENCHMARK(BM_RegisterRoundTrip)->Unit(benchmark::kMicrosecond);

void BM_RevokeThenValidate(benchmark::State& state) {
  // The revocation propagation path: revoke + the next validation seeing
  // Invalid.
  auto& world = SharedWorld();
  for (auto _ : state) {
    state.PauseTiming();
    XkmsService service = PopulatedService(10);
    XkmsClient client = XkmsClient::Direct(&service);
    state.ResumeTiming();
    if (!client.Revoke("key-5").ok()) state.SkipWithError("revoke failed");
    auto status = client.Validate("key-5", world.studio_key.public_key);
    if (!status.ok() || status.value() != KeyStatus::kInvalid) {
      state.SkipWithError("validate after revoke failed");
    }
  }
}
BENCHMARK(BM_RevokeThenValidate)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace xkms
}  // namespace discsec

DISCSEC_BENCH_MAIN("xkms");
