// E4 — Fig. 6: canonicalization and signature-mode comparison.
//
// (a) Canonical XML throughput versus document size and nesting depth —
//     c14n runs on every sign AND every verify, so this is the XML
//     pipeline's characteristic cost the binary DCF baseline avoids.
// (b) The three signature placements of Fig. 6 (enveloped, enveloping,
//     detached) over the same content.

#include <benchmark/benchmark.h>

#include "bench/bench_json.h"

#include "bench/alloc_tracker.h"
#include "bench/bench_util.h"
#include "crypto/digest.h"
#include "crypto/sha256.h"
#include "xml/c14n.h"
#include "xmldsig/signer.h"

namespace discsec {
namespace {

using bench::SharedWorld;

/// A document with `width` children per node and `depth` levels,
/// namespaces and attributes included to exercise the sorting paths.
std::string SyntheticDoc(int depth, int width) {
  std::string out = "<root xmlns:a=\"urn:a\" xmlns:b=\"urn:b\">";
  std::function<void(int)> emit = [&](int level) {
    if (level == 0) {
      out += "<leaf b:y=\"2\" a:x=\"1\" plain=\"0\">text &amp; more</leaf>";
      return;
    }
    for (int i = 0; i < width; ++i) {
      out += "<node idx=\"" + std::to_string(i) + "\" xmlns:c=\"urn:c\">";
      emit(level - 1);
      out += "</node>";
    }
  };
  emit(depth);
  out += "</root>";
  return out;
}

void BM_C14N_BySize(benchmark::State& state) {
  // Depth fixed, width grows: size scaling.
  std::string text = SyntheticDoc(2, static_cast<int>(state.range(0)));
  auto doc = xml::Parse(text).value();
  size_t out_size = 0;
  for (auto _ : state) {
    std::string canonical = xml::Canonicalize(doc);
    out_size = canonical.size();
    benchmark::DoNotOptimize(canonical);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(text.size()));
  state.counters["input_bytes"] = static_cast<double>(text.size());
  state.counters["canonical_bytes"] = static_cast<double>(out_size);
}
BENCHMARK(BM_C14N_BySize)->Arg(4)->Arg(16)->Arg(64)->Arg(128);

void BM_C14N_ByDepth(benchmark::State& state) {
  // Width fixed, depth grows: namespace-context propagation cost.
  std::string text = SyntheticDoc(static_cast<int>(state.range(0)), 2);
  auto doc = xml::Parse(text).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(xml::Canonicalize(doc));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_C14N_ByDepth)->Arg(2)->Arg(4)->Arg(8)->Arg(12);

void BM_C14N_WithComments(benchmark::State& state) {
  std::string text = SyntheticDoc(2, 64);
  auto doc = xml::Parse(text).value();
  xml::C14NOptions options;
  options.with_comments = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(xml::Canonicalize(doc, options));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_C14N_WithComments);

void BM_C14N_Subtree(benchmark::State& state) {
  // Subtree canonicalization with inherited namespace context — the form
  // every "#id" Reference uses.
  std::string text = SyntheticDoc(3, 8);
  auto doc = xml::Parse(text).value();
  xml::Element* leaf = nullptr;
  doc.root()->ForEachElement([&](xml::Element* e) {
    if (e->name() == "leaf") leaf = e;
  });
  for (auto _ : state) {
    benchmark::DoNotOptimize(xml::CanonicalizeElement(*leaf));
  }
}
BENCHMARK(BM_C14N_Subtree);

// ------------------------------------- buffered vs streaming digest path
//
// The canonicalize-to-digest comparison behind BENCH_streaming.json: the
// buffered path materializes the canonical string before hashing (the
// pre-ByteSink pipeline); the streaming path feeds a DigestSink directly.
// peak_alloc_bytes / allocs_per_iter come from the alloc_tracker new/delete
// replacement linked into this binary.

void BM_C14N_DigestBuffered(benchmark::State& state) {
  std::string text = SyntheticDoc(2, static_cast<int>(state.range(0)));
  auto doc = xml::Parse(text).value();
  crypto::Sha256 sha;
  bench::ResetAllocStats();
  for (auto _ : state) {
    std::string canonical = xml::Canonicalize(doc);
    Bytes value = crypto::Digest::Compute(&sha, canonical);
    benchmark::DoNotOptimize(value);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(text.size()));
  state.counters["peak_alloc_bytes"] =
      static_cast<double>(bench::AllocPeakBytes());
  state.counters["allocs_per_iter"] =
      static_cast<double>(bench::AllocCount()) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_C14N_DigestBuffered)->Arg(4)->Arg(16)->Arg(64)->Arg(128);

void BM_C14N_DigestStreaming(benchmark::State& state) {
  std::string text = SyntheticDoc(2, static_cast<int>(state.range(0)));
  auto doc = xml::Parse(text).value();
  crypto::Sha256 sha;
  bench::ResetAllocStats();
  for (auto _ : state) {
    sha.Reset();
    crypto::DigestSink sink(&sha);
    xml::Canonicalize(doc, xml::C14NOptions(), &sink);
    Bytes value = sha.Finalize();
    benchmark::DoNotOptimize(value);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(text.size()));
  state.counters["peak_alloc_bytes"] =
      static_cast<double>(bench::AllocPeakBytes());
  state.counters["allocs_per_iter"] =
      static_cast<double>(bench::AllocCount()) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_C14N_DigestStreaming)->Arg(4)->Arg(16)->Arg(64)->Arg(128);

// ------------------------------------------------- signature placements

void BM_SignatureMode_Enveloped(benchmark::State& state) {
  auto& world = SharedWorld();
  xmldsig::KeyInfoSpec ki;
  ki.include_key_value = true;
  xmldsig::Signer signer(
      xmldsig::SigningKey::Rsa(world.studio_key.private_key), ki);
  std::string text = SyntheticDoc(2, 16);
  for (auto _ : state) {
    auto doc = xml::Parse(text).value();
    auto sig = signer.SignEnveloped(&doc, doc.root());
    if (!sig.ok()) state.SkipWithError("sign failed");
    benchmark::DoNotOptimize(sig.value());
  }
}
BENCHMARK(BM_SignatureMode_Enveloped)->Unit(benchmark::kMicrosecond);

void BM_SignatureMode_Detached(benchmark::State& state) {
  auto& world = SharedWorld();
  xmldsig::KeyInfoSpec ki;
  ki.include_key_value = true;
  xmldsig::Signer signer(
      xmldsig::SigningKey::Rsa(world.studio_key.private_key), ki);
  std::string text = SyntheticDoc(2, 16);
  for (auto _ : state) {
    auto doc = xml::Parse(text).value();
    xml::Element* target = doc.root()->FirstChildElement();
    auto sig = signer.SignDetached(&doc, target, "part", doc.root());
    if (!sig.ok()) state.SkipWithError("sign failed");
    benchmark::DoNotOptimize(sig.value());
  }
}
BENCHMARK(BM_SignatureMode_Detached)->Unit(benchmark::kMicrosecond);

void BM_SignatureMode_Enveloping(benchmark::State& state) {
  auto& world = SharedWorld();
  xmldsig::KeyInfoSpec ki;
  ki.include_key_value = true;
  xmldsig::Signer signer(
      xmldsig::SigningKey::Rsa(world.studio_key.private_key), ki);
  auto content = xml::Parse(SyntheticDoc(2, 16)).value();
  for (auto _ : state) {
    auto sig = signer.SignEnveloping(*content.root());
    if (!sig.ok()) state.SkipWithError("sign failed");
    benchmark::DoNotOptimize(sig.value());
  }
}
BENCHMARK(BM_SignatureMode_Enveloping)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace discsec

DISCSEC_BENCH_MAIN("c14n");
