// E15 — §6/§7 rights management at fleet scale: IsPermitted decision
// latency against store size (10^3–10^5 installed licenses), cold versus
// warm DecisionCache, plus the direct (cache-less) evaluator as the
// baseline the cache must beat.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "xrml/decision_cache.h"
#include "xrml/license.h"
#include "xrml/rights_manager.h"

namespace discsec {
namespace xrml {
namespace {

constexpr int64_t kNow = 1120000000;

License MakeLicense(int index) {
  License license;
  license.license_id = "lic-" + std::to_string(index);
  license.issuer = "studio-" + std::to_string(index % 7);
  Grant g;
  g.key_holder = (index % 5 == 0) ? "*" : "player-" + std::to_string(index % 64);
  g.right = static_cast<Right>(index % 4);
  g.resource = "track-" + std::to_string(index);
  g.conditions.not_before = kNow - 1000;
  g.conditions.not_after = kNow + 1000000;
  license.grants.push_back(g);
  return license;
}

void InstallAll(RightsManager* rm, int n) {
  for (int i = 0; i < n; ++i) {
    if (!rm->InstallUnsigned(MakeLicense(i)).ok()) std::abort();
  }
}

ExerciseContext QueryContext(int i) {
  ExerciseContext ctx;
  ctx.principal = "player-" + std::to_string(i % 64);
  ctx.now = kNow;
  ctx.territory = "US";
  return ctx;
}

// Direct evaluator, no cache: the worst case is a miss (a resource near the
// end of the first-match scan), so query the last-installed license.
void BM_IsPermittedDirect(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  RightsManager rm(nullptr, kNow);
  InstallAll(&rm, n);
  ExerciseContext ctx = QueryContext(n - 1);
  std::string resource = "track-" + std::to_string(n - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rm.IsPermitted(Right::kPlay, resource, ctx));
  }
  state.counters["licenses"] = n;
}
BENCHMARK(BM_IsPermittedDirect)->Arg(1000)->Arg(10000)->Arg(100000);

// Cold cache: every iteration invalidates first, so each lookup misses and
// pays the full scan plus the cache bookkeeping — the cache's overhead
// ceiling.
void BM_IsPermittedCacheCold(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  RightsManager rm(nullptr, kNow);
  DecisionCache cache;
  rm.set_decision_cache(&cache);
  InstallAll(&rm, n);
  ExerciseContext ctx = QueryContext(n - 1);
  std::string resource = "track-" + std::to_string(n - 1);
  for (auto _ : state) {
    cache.Invalidate();
    benchmark::DoNotOptimize(rm.IsPermitted(Right::kPlay, resource, ctx));
  }
  DecisionCacheStats stats = cache.stats();
  state.counters["licenses"] = n;
  state.counters["hit_rate"] =
      stats.hits + stats.misses == 0
          ? 0.0
          : static_cast<double>(stats.hits) / (stats.hits + stats.misses);
}
BENCHMARK(BM_IsPermittedCacheCold)->Arg(1000)->Arg(10000)->Arg(100000);

// Warm cache: the steady-state PEP pattern — the same decision tuple asked
// over and over (every track of every disc) — collapses to one sharded
// hash lookup regardless of store size.
void BM_IsPermittedCacheWarm(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  RightsManager rm(nullptr, kNow);
  DecisionCache cache;
  rm.set_decision_cache(&cache);
  InstallAll(&rm, n);
  ExerciseContext ctx = QueryContext(n - 1);
  std::string resource = "track-" + std::to_string(n - 1);
  (void)rm.IsPermitted(Right::kPlay, resource, ctx);  // prime
  for (auto _ : state) {
    benchmark::DoNotOptimize(rm.IsPermitted(Right::kPlay, resource, ctx));
  }
  DecisionCacheStats stats = cache.stats();
  state.counters["licenses"] = n;
  state.counters["hit_rate"] =
      stats.hits + stats.misses == 0
          ? 0.0
          : static_cast<double>(stats.hits) / (stats.hits + stats.misses);
}
BENCHMARK(BM_IsPermittedCacheWarm)->Arg(1000)->Arg(10000)->Arg(100000);

// A rotating working set of distinct queries sized against the cache
// budget: the realistic multi-title player, where warm hits dominate but
// evictions and fresh misses still occur.
void BM_IsPermittedWorkingSet(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  RightsManager rm(nullptr, kNow);
  DecisionCache cache;
  rm.set_decision_cache(&cache);
  InstallAll(&rm, n);
  std::vector<std::string> resources;
  std::vector<ExerciseContext> contexts;
  for (int i = 0; i < 256; ++i) {
    int pick = (i * 37) % n;
    resources.push_back("track-" + std::to_string(pick));
    contexts.push_back(QueryContext(pick));
  }
  size_t cursor = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rm.IsPermitted(Right::kPlay, resources[cursor], contexts[cursor]));
    cursor = (cursor + 1) % resources.size();
  }
  DecisionCacheStats stats = cache.stats();
  state.counters["licenses"] = n;
  state.counters["hit_rate"] =
      stats.hits + stats.misses == 0
          ? 0.0
          : static_cast<double>(stats.hits) / (stats.hits + stats.misses);
}
BENCHMARK(BM_IsPermittedWorkingSet)->Arg(1000)->Arg(10000)->Arg(100000);

}  // namespace
}  // namespace xrml
}  // namespace discsec

DISCSEC_BENCH_MAIN("xrml")
