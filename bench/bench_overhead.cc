// E1 — §4 / ref.[37]: "XML based security incurs 2.5 to 5.1 times more
// overhead as compared to OMA DCF".
//
// Packages the same application payload two ways and reports the byte
// overhead of each container relative to the raw payload:
//   xml_total / dcf_total / raw payload bytes, plus overhead_ratio =
//   xml_overhead / dcf_overhead (the paper's 2.5-5.1x band for
//   message-sized payloads).

#include <benchmark/benchmark.h>

#include "bench/bench_json.h"

#include "bench/bench_util.h"
#include "dcf/dcf.h"
#include "xmldsig/verifier.h"

namespace discsec {
namespace {

using bench::SharedWorld;

/// XML pipeline: sign (enveloped, cert chain) + encrypt the manifest.
std::string BuildXmlProtected(size_t payload_bytes) {
  auto& world = SharedWorld();
  authoring::Author author = world.MakeAuthor();
  authoring::Author::ProtectOptions options;
  options.sign = true;
  options.encrypt_ids = {"quiz"};
  options.encryption = world.MakeEncryptionSpec();
  auto doc = author.BuildProtected(bench::ClusterWithPayload(payload_bytes),
                                   options, &world.rng);
  return xml::Serialize(doc.value());
}

/// DCF pipeline: the raw cluster markup in a binary protected container.
Bytes BuildDcfProtected(size_t payload_bytes, const Bytes& mac_key) {
  auto& world = SharedWorld();
  std::string raw =
      bench::ClusterWithPayload(payload_bytes).ToXmlString();
  return dcf::DcfProtect(ToBytes(raw), "application/xml", "disc-content-key",
                         world.disc_content_key, mac_key, &world.rng)
      .value();
}

void BM_ProtectionOverhead(benchmark::State& state) {
  size_t payload = static_cast<size_t>(state.range(0));
  auto& world = SharedWorld();
  Bytes mac_key = world.disc_content_key;  // shared integrity key

  size_t raw = bench::ClusterWithPayload(payload).ToXmlString().size();
  std::string xml_protected = BuildXmlProtected(payload);
  Bytes dcf_protected = BuildDcfProtected(payload, mac_key);

  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildXmlProtected(payload));
  }

  double xml_overhead = static_cast<double>(xml_protected.size()) - raw;
  double dcf_overhead = static_cast<double>(dcf_protected.size()) - raw;
  state.counters["raw_bytes"] = static_cast<double>(raw);
  state.counters["xml_bytes"] = static_cast<double>(xml_protected.size());
  state.counters["dcf_bytes"] = static_cast<double>(dcf_protected.size());
  state.counters["xml_overhead"] = xml_overhead;
  state.counters["dcf_overhead"] = dcf_overhead;
  state.counters["overhead_ratio"] =
      dcf_overhead > 0 ? xml_overhead / dcf_overhead : 0;
  // The paper's ref.[37] metric: total protected size, XML vs binary DCF.
  // Its 2.5-5.1x band holds in the small-message regime where framing
  // dominates; it amortizes toward the base64 floor (~1.33x) as payloads
  // grow.
  state.counters["container_ratio"] =
      static_cast<double>(xml_protected.size()) / dcf_protected.size();
  state.counters["xml_expansion"] =
      static_cast<double>(xml_protected.size()) / raw;
  state.counters["dcf_expansion"] =
      static_cast<double>(dcf_protected.size()) / raw;
}
BENCHMARK(BM_ProtectionOverhead)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1 << 10)
    ->Arg(4 << 10)
    ->Arg(16 << 10)
    ->Arg(64 << 10)
    ->Arg(256 << 10)
    ->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace discsec

DISCSEC_BENCH_MAIN("overhead");
