// E10 — crypto substrate throughput: contextualizes E1-E7 by showing how
// much of the XML pipeline's cost is primitives versus XML processing.

#include <benchmark/benchmark.h>

#include "bench/bench_json.h"

#include "common/random.h"
#include "crypto/aes.h"
#include "crypto/algorithms.h"
#include "crypto/bigint.h"
#include "crypto/hmac.h"
#include "crypto/rsa.h"
#include "crypto/sha1.h"
#include "crypto/sha256.h"

namespace discsec {
namespace crypto {
namespace {

void BM_Sha1(benchmark::State& state) {
  Rng rng(1);
  Bytes data = rng.NextBytes(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha1::Hash(data));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_Sha1)->Arg(64)->Arg(4096)->Arg(262144);

void BM_Sha256(benchmark::State& state) {
  Rng rng(1);
  Bytes data = rng.NextBytes(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Hash(data));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(4096)->Arg(262144);

void BM_HmacSha1(benchmark::State& state) {
  Rng rng(2);
  Bytes key = rng.NextBytes(20);
  Bytes data = rng.NextBytes(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Hmac::Sha1Mac(key, data));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_HmacSha1)->Arg(64)->Arg(4096)->Arg(262144);

void BM_AesCbcEncrypt(benchmark::State& state) {
  Rng rng(3);
  size_t key_size = static_cast<size_t>(state.range(0));
  Bytes key = rng.NextBytes(key_size);
  Bytes iv = rng.NextBytes(16);
  Bytes data = rng.NextBytes(static_cast<size_t>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(AesCbcEncrypt(key, iv, data));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_AesCbcEncrypt)
    ->Args({16, 4096})
    ->Args({32, 4096})
    ->Args({16, 262144});

void BM_AesCbcDecrypt(benchmark::State& state) {
  Rng rng(4);
  Bytes key = rng.NextBytes(16);
  Bytes iv = rng.NextBytes(16);
  Bytes data = rng.NextBytes(static_cast<size_t>(state.range(0)));
  Bytes ciphertext = AesCbcEncrypt(key, iv, data).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(AesCbcDecrypt(key, ciphertext));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_AesCbcDecrypt)->Arg(4096)->Arg(262144);

void BM_AesKeyWrap(benchmark::State& state) {
  Rng rng(5);
  Bytes kek = rng.NextBytes(16);
  Bytes key_data = rng.NextBytes(16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(AesKeyWrap(kek, key_data));
  }
}
BENCHMARK(BM_AesKeyWrap);

void BM_RsaSign(benchmark::State& state) {
  Rng rng(6);
  auto pair =
      RsaGenerateKeyPair(static_cast<size_t>(state.range(0)), &rng).value();
  Bytes digest = Sha1::Hash(rng.NextBytes(1000));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        RsaSignDigest(pair.private_key, kAlgSha1, digest));
  }
  state.counters["modulus_bits"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_RsaSign)->Arg(512)->Arg(1024)->Unit(benchmark::kMicrosecond);

void BM_RsaVerify(benchmark::State& state) {
  Rng rng(7);
  auto pair =
      RsaGenerateKeyPair(static_cast<size_t>(state.range(0)), &rng).value();
  Bytes digest = Sha1::Hash(rng.NextBytes(1000));
  Bytes signature = RsaSignDigest(pair.private_key, kAlgSha1, digest).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        RsaVerifyDigest(pair.public_key, kAlgSha1, digest, signature));
  }
  state.counters["modulus_bits"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_RsaVerify)->Arg(512)->Arg(1024)->Unit(benchmark::kMicrosecond);

void BM_RsaKeyGen(benchmark::State& state) {
  Rng rng(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        RsaGenerateKeyPair(static_cast<size_t>(state.range(0)), &rng));
  }
}
BENCHMARK(BM_RsaKeyGen)->Arg(512)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_BigIntModPow(benchmark::State& state) {
  Rng rng(9);
  size_t bits = static_cast<size_t>(state.range(0));
  BigInt modulus = BigInt::GeneratePrime(bits, &rng);
  BigInt base = BigInt::RandomBelow(modulus, &rng);
  BigInt exponent = BigInt::RandomWithBits(bits, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BigInt::ModPow(base, exponent, modulus));
  }
}
BENCHMARK(BM_BigIntModPow)
    ->Arg(256)
    ->Arg(512)
    ->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace crypto
}  // namespace discsec

DISCSEC_BENCH_MAIN("crypto");
