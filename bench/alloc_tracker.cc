#include "bench/alloc_tracker.h"

#include <atomic>
#include <cstdlib>
#include <malloc.h>
#include <new>

namespace {

// Relaxed atomics: the benches are single-threaded; atomicity just keeps
// the replacement functions well-defined if a library thread allocates.
std::atomic<size_t> g_live{0};
std::atomic<size_t> g_peak{0};
std::atomic<size_t> g_count{0};

void TrackAlloc(void* p) {
  if (p == nullptr) return;
  // glibc's malloc_usable_size gives the true block size, so live/peak
  // reflect what the heap actually holds.
  size_t size = malloc_usable_size(p);
  size_t live =
      g_live.fetch_add(size, std::memory_order_relaxed) + size;
  size_t peak = g_peak.load(std::memory_order_relaxed);
  while (live > peak &&
         !g_peak.compare_exchange_weak(peak, live,
                                       std::memory_order_relaxed)) {
  }
  g_count.fetch_add(1, std::memory_order_relaxed);
}

void TrackFree(void* p) {
  if (p == nullptr) return;
  g_live.fetch_sub(malloc_usable_size(p), std::memory_order_relaxed);
}

void* AllocOrThrow(size_t size) {
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  TrackAlloc(p);
  return p;
}

}  // namespace

namespace discsec {
namespace bench {

void ResetAllocStats() {
  size_t live = g_live.load(std::memory_order_relaxed);
  g_peak.store(live, std::memory_order_relaxed);
  g_count.store(0, std::memory_order_relaxed);
}

size_t AllocPeakBytes() { return g_peak.load(std::memory_order_relaxed); }

size_t AllocCount() { return g_count.load(std::memory_order_relaxed); }

}  // namespace bench
}  // namespace discsec

void* operator new(size_t size) { return AllocOrThrow(size); }
void* operator new[](size_t size) { return AllocOrThrow(size); }

void operator delete(void* p) noexcept {
  TrackFree(p);
  std::free(p);
}
void operator delete[](void* p) noexcept {
  TrackFree(p);
  std::free(p);
}
void operator delete(void* p, size_t) noexcept {
  TrackFree(p);
  std::free(p);
}
void operator delete[](void* p, size_t) noexcept {
  TrackFree(p);
  std::free(p);
}
