// E16 — xkmsd under fleet-scale load (DESIGN.md §13): an overload-safe
// XKMS responder facing 10^4–10^5 players with zipfian key popularity, a
// revocation-storm phase, and seeded chaos on both sides of the wire.
//
// Three experiments:
//
//   BM_XkmsdZipfianFleet   open-loop flood of N player Locates straight
//                          into the admission front door. Reports served
//                          throughput, served p50/p99, shed and coalesce
//                          rates. The front door is allowed (expected!) to
//                          shed under the flood — what it may not do is
//                          let the served tail blow out or lose a request.
//
//   BM_XkmsdRevocationStorm  closed-loop fleet first against a healthy
//                          responder (idle p99 baseline), then through a
//                          revocation storm with chaos armed at
//                          xkmsd.store / xkmsd.snapshot / xkmsd.queue and
//                          xkms.transport. Reports idle_p99_us,
//                          storm_p99_us, their ratio, and incorrect_valid
//                          — the count of revoked keys ever reported
//                          Valid, which must be zero whatever burns.
//
//   BM_LocateCacheHitRate  the fleet-side LocateCache in front of the
//                          responder: hit-rate curve vs fleet size under
//                          the same zipfian popularity (bigger fleets keep
//                          the shared edge cache warmer).
//
// All load is seeded (players, popularity, chaos) so runs replay exactly.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_json.h"
#include "common/fault.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "xkms/client.h"
#include "xkms/locate_cache.h"
#include "xkms/service.h"
#include "xkms/xkmsd.h"

namespace discsec {
namespace {

constexpr uint64_t kSeed = 20050915;
constexpr size_t kKeys = 64;
constexpr int kPoolThreads = 4;
constexpr int kClientThreads = 8;

int64_t NowSteadyUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Zipfian popularity over [0, n), exponent 1.0 — a few studio keys carry
/// most of the fleet's traffic.
class Zipf {
 public:
  explicit Zipf(size_t n, double s = 1.0) : cdf_(n) {
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) total += 1.0 / std::pow(i + 1, s);
    double acc = 0.0;
    for (size_t i = 0; i < n; ++i) {
      acc += 1.0 / std::pow(i + 1, s) / total;
      cdf_[i] = acc;
    }
    cdf_.back() = 1.0;
  }
  size_t Sample(Rng* rng) const {
    double u = static_cast<double>(rng->NextUint64() >> 11) * 0x1.0p-53;
    for (size_t i = 0; i < cdf_.size(); ++i) {
      if (u <= cdf_[i]) return i;
    }
    return cdf_.size() - 1;
  }

 private:
  std::vector<double> cdf_;
};

const crypto::RsaKeyPair& BenchKey() {
  static crypto::RsaKeyPair* pair = [] {
    Rng rng(kSeed);
    return new crypto::RsaKeyPair(
        crypto::RsaGenerateKeyPair(512, &rng).value());
  }();
  return *pair;
}

std::vector<std::string> SeedKeys(xkms::Xkmsd* xkmsd) {
  std::vector<std::string> names;
  for (size_t i = 0; i < kKeys; ++i) {
    xkms::KeyBinding binding;
    binding.name = "studio-key-" + std::to_string(i);
    binding.key = BenchKey().public_key;
    binding.key_usage = {"Signature"};
    (void)xkmsd->SeedBinding(binding);
    names.push_back(binding.name);
  }
  xkmsd->RefreshSnapshot();
  return names;
}

int64_t Percentile(std::vector<int64_t>* v, double p) {
  if (v->empty()) return 0;
  size_t rank = static_cast<size_t>(p * static_cast<double>(v->size() - 1));
  std::nth_element(v->begin(), v->begin() + static_cast<ptrdiff_t>(rank),
                   v->end());
  return (*v)[rank];
}

// --------------------------------------------------------------- open loop

void BM_XkmsdZipfianFleet(benchmark::State& state) {
  const size_t players = static_cast<size_t>(state.range(0));
  Zipf zipf(kKeys);

  uint64_t served = 0, shed = 0, coalesced = 0, lookups = 0;
  std::vector<int64_t> latencies;
  for (auto _ : state) {
    ThreadPool pool(kPoolThreads);
    xkms::XkmsdOptions options;
    options.pool = &pool;
    xkms::Xkmsd xkmsd(options);
    std::vector<std::string> names = SeedKeys(&xkmsd);

    // Pre-build the wire requests so the generator measures the responder,
    // not the client-side serializer.
    std::vector<const std::string*> plan(players);
    std::vector<std::string> requests(kKeys);
    for (size_t k = 0; k < kKeys; ++k) {
      requests[k] = xkms::BuildLocateRequest(names[k]);
    }
    Rng rng(kSeed + 1);
    for (size_t i = 0; i < players; ++i) {
      plan[i] = &requests[zipf.Sample(&rng)];
    }

    std::vector<int64_t> lat(players, -1);
    std::atomic<size_t> done_count{0};
    std::mutex done_mu;
    std::condition_variable done_cv;

    // Open loop: every player fires at once (well, as fast as the
    // generator threads can submit). Admission happens inline, service on
    // the pool — the flood is exactly what the front door exists for.
    std::vector<std::thread> generators;
    for (int g = 0; g < kClientThreads; ++g) {
      generators.emplace_back([&, g] {
        for (size_t i = static_cast<size_t>(g); i < players;
             i += kClientThreads) {
          const int64_t start = NowSteadyUs();
          xkmsd.Submit(*plan[i], {},
                       [&, i, start](Result<std::string> response) {
                         if (response.ok()) lat[i] = NowSteadyUs() - start;
                         if (done_count.fetch_add(1) + 1 == players) {
                           std::lock_guard<std::mutex> lock(done_mu);
                           done_cv.notify_all();
                         }
                       });
        }
      });
    }
    for (auto& thread : generators) thread.join();
    {
      std::unique_lock<std::mutex> lock(done_mu);
      done_cv.wait(lock, [&] { return done_count.load() == players; });
    }

    latencies.clear();
    for (int64_t us : lat) {
      if (us >= 0) latencies.push_back(us);
    }
    xkms::XkmsdStats stats = xkmsd.stats();
    served = stats.served;
    shed = stats.shed_queue_full + stats.shed_deadline + stats.shed_fault;
    coalesced = stats.coalesced_locates;
    lookups = stats.store_lookups;
  }

  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(served));
  state.counters["players"] = static_cast<double>(players);
  state.counters["served"] = static_cast<double>(served);
  state.counters["shed"] = static_cast<double>(shed);
  state.counters["shed_rate"] =
      static_cast<double>(shed) / static_cast<double>(players);
  state.counters["coalesced"] = static_cast<double>(coalesced);
  state.counters["coalesce_rate"] =
      served > 0 ? static_cast<double>(coalesced) / static_cast<double>(served)
                 : 0.0;
  state.counters["store_lookups"] = static_cast<double>(lookups);
  state.counters["served_p50_us"] =
      static_cast<double>(Percentile(&latencies, 0.50));
  state.counters["served_p99_us"] =
      static_cast<double>(Percentile(&latencies, 0.99));
}

// --------------------------------------------------------------- storm

void BM_XkmsdRevocationStorm(benchmark::State& state) {
  const size_t requests_per_phase = static_cast<size_t>(state.range(0));
  Zipf zipf(kKeys);

  double idle_p99 = 0, storm_p99 = 0;
  uint64_t incorrect_valid = 0, sheds = 0, degraded = 0, chaos_fires = 0;
  for (auto _ : state) {
    fault::FaultInjector injector(kSeed);
    ThreadPool pool(kPoolThreads);
    xkms::XkmsdOptions options;
    options.pool = &pool;
    options.fault = &injector;
    options.queue_limits[static_cast<size_t>(xkms::XkmsdPriority::kLocate)] =
        256;
    xkms::Xkmsd xkmsd(options);
    std::vector<std::string> names = SeedKeys(&xkmsd);

    // A closed-loop fleet phase: kClientThreads players hammer zipfian
    // Locates through the wire-level client, collecting served latencies.
    // `revoked_floor` marks the prefix of `names` already revoked: any
    // Valid answer for one of those is an incorrect verdict.
    std::atomic<size_t> revoked_floor{0};
    std::atomic<uint64_t> bad_valids{0};
    auto run_phase = [&](uint64_t salt) {
      std::vector<int64_t> lat;
      std::mutex lat_mu;
      std::vector<std::thread> threads;
      for (int t = 0; t < kClientThreads; ++t) {
        threads.emplace_back([&, t, salt] {
          // Client-side wire chaos rides the same injector: a fleet player
          // sees both its own flaky link (xkms.transport) and the
          // responder's internal faults.
          xkms::Transport server = xkms::MakeServerTransport(&xkmsd);
          xkms::XkmsClient client(
              [&injector, server](const std::string& request) {
                Status chaos = injector.Hit(fault::kXkmsTransport);
                if (!chaos.ok()) {
                  return Result<std::string>(
                      chaos.WithContext("XKMS transport"));
                }
                return server(request);
              });
          Rng rng(kSeed + salt + static_cast<uint64_t>(t));
          std::vector<int64_t> local;
          for (size_t i = static_cast<size_t>(t); i < requests_per_phase;
               i += static_cast<size_t>(kClientThreads)) {
            size_t key = zipf.Sample(&rng);
            bool was_revoked = key < revoked_floor.load();
            const int64_t start = NowSteadyUs();
            Result<xkms::KeyBinding> found = client.Locate(names[key]);
            if (found.ok()) {
              local.push_back(NowSteadyUs() - start);
              if (was_revoked &&
                  found->status == xkms::KeyStatus::kValid) {
                bad_valids.fetch_add(1);
              }
            }
          }
          std::lock_guard<std::mutex> lock(lat_mu);
          lat.insert(lat.end(), local.begin(), local.end());
        });
      }
      for (auto& thread : threads) thread.join();
      return lat;
    };

    // Phase 1: idle baseline (healthy store, no revocations).
    std::vector<int64_t> idle_lat = run_phase(100);
    idle_p99 = static_cast<double>(Percentile(&idle_lat, 0.99));

    // Phase 2: the storm. Chaos on both sides of the wire plus a
    // revocation wave through the hot half of the keyspace.
    auto arm = [&injector](std::string_view point, double probability) {
      fault::FaultSpec spec;
      spec.point = std::string(point);
      spec.kind = fault::Kind::kError;
      spec.probability = probability;
      injector.Arm(spec);
    };
    arm(fault::kXkmsdStore, 0.10);
    arm(fault::kXkmsdQueue, 0.02);
    arm(fault::kXkmsdSnapshot, 0.05);  // sometimes even the fallback burns
    arm(fault::kXkmsTransport, 0.05);  // and the player's own link flakes

    std::thread revoker([&] {
      xkms::XkmsClient client(xkms::MakeServerTransport(&xkmsd));
      for (size_t i = 0; i < kKeys / 2; ++i) {
        Status status;
        do {
          status = client.Revoke(names[i]);
        } while (!status.ok());
        revoked_floor.store(i + 1);
      }
    });
    std::vector<int64_t> storm_lat = run_phase(200);
    revoker.join();
    storm_p99 = static_cast<double>(Percentile(&storm_lat, 0.99));

    chaos_fires = injector.fires(fault::kXkmsdStore) +
                  injector.fires(fault::kXkmsdQueue) +
                  injector.fires(fault::kXkmsdSnapshot);
    xkms::XkmsdStats stats = xkmsd.stats();
    incorrect_valid = bad_valids.load();
    sheds = stats.shed_queue_full + stats.shed_fault;
    degraded = stats.degraded_locates;
  }

  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(requests_per_phase) * 2);
  state.counters["requests_per_phase"] =
      static_cast<double>(requests_per_phase);
  state.counters["idle_p99_us"] = idle_p99;
  state.counters["storm_p99_us"] = storm_p99;
  state.counters["p99_ratio"] = idle_p99 > 0 ? storm_p99 / idle_p99 : 0.0;
  state.counters["incorrect_valid"] = static_cast<double>(incorrect_valid);
  state.counters["sheds"] = static_cast<double>(sheds);
  state.counters["degraded_locates"] = static_cast<double>(degraded);
  state.counters["chaos_fires"] = static_cast<double>(chaos_fires);
}

// --------------------------------------------------------------- edge cache

void BM_LocateCacheHitRate(benchmark::State& state) {
  const size_t fleet = static_cast<size_t>(state.range(0));
  Zipf zipf(kKeys);

  double hit_rate = 0;
  uint64_t transport_calls = 0;
  for (auto _ : state) {
    ThreadPool pool(kPoolThreads);
    xkms::XkmsdOptions options;
    options.pool = &pool;
    xkms::Xkmsd xkmsd(options);
    std::vector<std::string> names = SeedKeys(&xkmsd);

    // One shared edge cache in front of the responder — the fleet-side
    // half of the architecture. Each player issues two zipfian Locates.
    xkms::XkmsClient client(xkms::MakeServerTransport(&xkmsd));
    xkms::LocateCache cache(&client);
    Rng rng(kSeed + 7);
    for (size_t p = 0; p < fleet; ++p) {
      for (int r = 0; r < 2; ++r) {
        benchmark::DoNotOptimize(cache.Locate(names[zipf.Sample(&rng)]));
      }
    }
    xkms::LocateCacheStats stats = cache.stats();
    hit_rate = static_cast<double>(stats.hits) /
               static_cast<double>(stats.hits + stats.misses);
    transport_calls = stats.transport_calls;
  }

  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fleet) * 2);
  state.counters["fleet"] = static_cast<double>(fleet);
  state.counters["hit_rate"] = hit_rate;
  state.counters["transport_calls"] = static_cast<double>(transport_calls);
}

BENCHMARK(BM_XkmsdZipfianFleet)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->UseRealTime();
BENCHMARK(BM_XkmsdRevocationStorm)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->UseRealTime();
BENCHMARK(BM_LocateCacheHitRate)
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(50000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1)
    ->UseRealTime();

}  // namespace
}  // namespace discsec

DISCSEC_BENCH_MAIN("xkmsd");
